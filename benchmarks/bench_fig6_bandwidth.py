"""Figure 6: W1 vs bandwidth b for fixed epsilons, with b*(eps) marked.

The paper's claim: the mutual-information choice b* lands at or adjacent to
the empirical optimum of each curve.
"""

import numpy as np
import pytest

from conftest import BENCH_N, BENCH_REPEATS, BENCH_SEED, save_series

from repro.core.bandwidth import optimal_bandwidth
from repro.experiments.figures import fig6_bandwidth

_B_GRID = (0.02, 0.08, 0.15, 0.22, 0.3, 0.38)
_EPSILONS = (1.0, 2.0, 3.0, 4.0)


@pytest.fixture(scope="module")
def fig6_rows():
    return fig6_bandwidth(
        epsilons=_EPSILONS,
        b_values=_B_GRID,
        n=BENCH_N,
        d=256,
        repeats=max(BENCH_REPEATS, 3),
        seed=BENCH_SEED,
    )


def test_fig6_bandwidth_formula(benchmark):
    """Time the closed-form b* (trivially fast; the figure's anchor)."""
    values = benchmark(lambda: [optimal_bandwidth(e) for e in _EPSILONS])
    np.testing.assert_allclose(values, [0.256, 0.129, 0.064, 0.030], atol=5e-4)


def test_fig6_series(benchmark, results_dir, fig6_rows):
    benchmark.pedantic(lambda: fig6_rows, rounds=1, iterations=1)
    save_series(rows=fig6_rows, name="fig6", results_dir=results_dir,
                title="Figure 6: W1 vs bandwidth, b* marked (dataset: beta)")
    # Shape claim: at every epsilon, b*'s W1 is within 2x of the grid best
    # (the curve is flat near the optimum; see paper Figure 6).
    for eps in _EPSILONS:
        label = f"sw-ems@eps={eps:g}"
        curve = {r.epsilon: r.mean for r in fig6_rows if r.method == label}
        star = [r for r in fig6_rows if r.method == label and r.extra.get("is_b_star")]
        assert star, f"missing b* row for eps={eps}"
        best = min(curve.values())
        assert star[0].mean <= 2.0 * best, (eps, star[0].mean, best)
