"""Performance benchmark for the structured channel operators.

Times the EM/EMS hot loop against the dense-matrix baseline and writes a
machine-readable ``BENCH_solver.json`` so the perf trajectory is recorded
from run to run (the CI perf-smoke step uploads it as an artifact):

1. **Per-iteration cost** — pinned-iteration EM and EMS at large ``d``
   through the dense matrix vs the structured operator
   (``UniformPlusToeplitzChannel`` for continuous SW,
   ``UniformPlusBandedChannel`` for discrete SW). Target: >= 10x per
   iteration at ``d = 4096``.
2. **Cold and warm-start solves** — full paper-tolerance reconstructions
   from the uniform prior and from a previous posterior (the
   ``CollectionServer`` incremental path), dense vs operator, with
   identical per-column iteration counts asserted.
3. **Correctness** — operator estimates match the dense path, and the
   dense fallback (raw ndarray vs ``DenseChannel``) is bitwise-identical.
4. **OLH support counting** — per-report cost of the in-place chunked
   ``support_counts`` across candidate ``_AGGREGATE_CHUNK`` sizes, so the
   default is tuned by data.

Run:  PYTHONPATH=src python benchmarks/bench_perf_solver.py [--quick]
          [--out benchmarks/BENCH_solver.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.api.config import EMConfig
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.engine.backend import effective_cpu_count
from repro.engine.cache import cached_transition_matrix
from repro.engine.operators import DenseChannel
from repro.engine.solver import batched_expectation_maximization
from repro.freq_oracle import olh as olh_module
from repro.freq_oracle.olh import OLH


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sw_case(d: int, batch: int, seed: int = 0):
    """Continuous SW channel (dense + operator) and multinomial counts."""
    sw = SquareWave(1.0)
    dense = np.asarray(cached_transition_matrix(sw, d, d))
    operator = sw.channel_operator(d, d)
    rng = np.random.default_rng(seed)
    truth = rng.dirichlet(np.full(d, 2.0), size=batch).T
    counts = np.stack(
        [
            rng.multinomial(200_000, dense @ truth[:, j]).astype(float)
            for j in range(batch)
        ],
        axis=1,
    )
    return sw, dense, operator, counts


def bench_per_iteration(
    d: int, batch: int, iters: int, repeats: int, *, smoothing: bool
) -> dict:
    """Pinned-iteration EM/EMS: dense matmuls vs structured operator."""
    _, dense, operator, counts = _sw_case(d, batch)
    kernel = binomial_kernel(2) if smoothing else None
    kwargs = dict(tol=-1.0, max_iter=iters, smoothing_kernel=kernel)
    dense_s = _best_of(
        lambda: batched_expectation_maximization(
            dense, counts, validate_matrix=False, **kwargs
        ),
        repeats,
    )
    operator_s = _best_of(
        lambda: batched_expectation_maximization(
            operator, counts, validate_matrix=False, **kwargs
        ),
        repeats,
    )
    ref = batched_expectation_maximization(
        dense, counts, validate_matrix=False, **kwargs
    )
    got = batched_expectation_maximization(
        operator, counts, validate_matrix=False, **kwargs
    )
    return {
        "d": d,
        "d_out": d,
        "batch": batch,
        "iterations": iters,
        "dense_s": dense_s,
        "operator_s": operator_s,
        "dense_per_iter_s": dense_s / iters,
        "operator_per_iter_s": operator_s / iters,
        "speedup": dense_s / operator_s,
        "max_abs_diff": float(np.abs(got.estimates - ref.estimates).max()),
    }


def bench_discrete_per_iteration(d: int, iters: int, repeats: int) -> dict:
    """Pinned-iteration plain EM on the discrete SW band channel."""
    mech = DiscreteSquareWave(1.0, d)
    dense = np.asarray(mech.transition_matrix())
    operator = mech.channel_operator()
    rng = np.random.default_rng(1)
    truth = rng.dirichlet(np.full(d, 2.0))
    counts = rng.multinomial(200_000, dense @ truth).astype(float)[:, None]
    kwargs = dict(tol=-1.0, max_iter=iters, validate_matrix=False)
    dense_s = _best_of(
        lambda: batched_expectation_maximization(dense, counts, **kwargs), repeats
    )
    operator_s = _best_of(
        lambda: batched_expectation_maximization(operator, counts, **kwargs),
        repeats,
    )
    return {
        "d": d,
        "d_out": mech.d_out,
        "b": mech.b,
        "iterations": iters,
        "dense_s": dense_s,
        "operator_s": operator_s,
        "speedup": dense_s / operator_s,
    }


def bench_cold_vs_warm(
    d: int, repeats: int, *, smoothing: bool, max_iter: int = 600
) -> dict:
    """Paper-tolerance solves, uniform prior vs near-posterior start.

    ``max_iter`` caps the cold plain-EM run (paper tolerance needs
    thousands of iterations at large ``d``, which would turn the *dense
    baseline* timing into minutes); both paths share the cap, so the
    per-column iteration equality check stays meaningful.
    """
    sw, dense, operator, counts = _sw_case(d, batch=1, seed=2)
    config = EMConfig(postprocess="ems" if smoothing else "em")
    tol = config.resolve_tolerance(sw.epsilon)
    kwargs = dict(tol=tol, max_iter=max_iter, smoothing_kernel=config.kernel())

    cold_ref = batched_expectation_maximization(
        dense, counts, validate_matrix=False, **kwargs
    )
    cold_got = batched_expectation_maximization(
        operator, counts, validate_matrix=False, **kwargs
    )
    # Converged posterior for the warm start (solved once via the cheap
    # operator path at the uncapped paper setting, like a server round).
    posterior = batched_expectation_maximization(
        operator,
        counts,
        tol=tol,
        max_iter=config.max_iter,
        smoothing_kernel=config.kernel(),
        validate_matrix=False,
    ).estimates[:, 0]
    # Simulate the CollectionServer mid-round delta: +0.5% new reports.
    rng = np.random.default_rng(3)
    delta = rng.multinomial(1_000, dense @ posterior).astype(float)[:, None]
    new_counts = counts + delta
    x0 = 0.999999 * posterior + 1e-6 / d

    warm_ref = batched_expectation_maximization(
        dense, new_counts, x0=x0, validate_matrix=False, **kwargs
    )
    warm_got = batched_expectation_maximization(
        operator, new_counts, x0=x0, validate_matrix=False, **kwargs
    )
    cold_dense_s = _best_of(
        lambda: batched_expectation_maximization(
            dense, counts, validate_matrix=False, **kwargs
        ),
        repeats,
    )
    cold_operator_s = _best_of(
        lambda: batched_expectation_maximization(
            operator, counts, validate_matrix=False, **kwargs
        ),
        repeats,
    )
    warm_dense_s = _best_of(
        lambda: batched_expectation_maximization(
            dense, new_counts, x0=x0, validate_matrix=False, **kwargs
        ),
        repeats,
    )
    warm_operator_s = _best_of(
        lambda: batched_expectation_maximization(
            operator, new_counts, x0=x0, validate_matrix=False, **kwargs
        ),
        repeats,
    )
    cold_iters = int(cold_got.iterations[0])
    warm_iters = int(warm_got.iterations[0])
    return {
        "d": d,
        "cold_iterations": cold_iters,
        "warm_iterations": warm_iters,
        "iterations_match_dense": bool(
            cold_iters == int(cold_ref.iterations[0])
            and warm_iters == int(warm_ref.iterations[0])
        ),
        "cold_dense_s": cold_dense_s,
        "cold_operator_s": cold_operator_s,
        "cold_speedup": cold_dense_s / cold_operator_s,
        "cold_per_iter_speedup": (cold_dense_s / max(cold_iters, 1))
        / (cold_operator_s / max(cold_iters, 1)),
        "warm_dense_s": warm_dense_s,
        "warm_operator_s": warm_operator_s,
        "warm_speedup": warm_dense_s / warm_operator_s,
        "warm_vs_cold_operator": cold_operator_s / warm_operator_s,
        "max_abs_diff": float(
            np.abs(warm_got.estimates - warm_ref.estimates).max()
        ),
    }


def check_dense_bitwise(d: int) -> bool:
    """Raw-ndarray vs DenseChannel plain-EM output must be bitwise equal."""
    _, dense, _, counts = _sw_case(d, batch=2, seed=4)
    ref = batched_expectation_maximization(dense, counts, tol=1e-3)
    got = batched_expectation_maximization(DenseChannel(dense), counts, tol=1e-3)
    return bool(
        np.array_equal(got.estimates, ref.estimates)
        and np.array_equal(got.iterations, ref.iterations)
        and np.array_equal(got.log_likelihood, ref.log_likelihood)
    )


def bench_olh_support_counts(
    n: int, d: int, repeats: int, chunks: tuple[int, ...]
) -> dict:
    """Per-report support-count cost across _AGGREGATE_CHUNK candidates."""
    oracle = OLH(1.0, d)
    values = np.random.default_rng(5).integers(0, d, size=n)
    reports = oracle.privatize(values, rng=np.random.default_rng(6))
    results = {}
    original = olh_module._AGGREGATE_CHUNK
    try:
        for chunk in chunks:
            olh_module._AGGREGATE_CHUNK = chunk
            seconds = _best_of(lambda: oracle.support_counts(reports), repeats)
            results[str(chunk)] = {
                "seconds": seconds,
                "ns_per_report": seconds / n * 1e9,
            }
    finally:
        olh_module._AGGREGATE_CHUNK = original
    best = min(results, key=lambda k: results[k]["seconds"])
    return {
        "n": n,
        "d": d,
        "default_chunk": original,
        "by_chunk": results,
        "fastest_chunk": int(best),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for CI smoke runs",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_solver.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    timing_reps = 2 if args.quick else 3
    d = 512 if args.quick else 4096
    iters = 10 if args.quick else 25
    report = {
        "benchmark": "solver",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cores": effective_cpu_count(),
        "per_iteration_em": bench_per_iteration(
            d, batch=1, iters=iters, repeats=timing_reps, smoothing=False
        ),
        "per_iteration_ems": bench_per_iteration(
            d, batch=1, iters=iters, repeats=timing_reps, smoothing=True
        ),
        "per_iteration_em_batched": bench_per_iteration(
            d // 4, batch=16, iters=iters, repeats=timing_reps, smoothing=False
        ),
        "per_iteration_discrete_em": bench_discrete_per_iteration(
            d, iters=iters, repeats=timing_reps
        ),
        "cold_vs_warm_em": bench_cold_vs_warm(
            d, repeats=timing_reps, smoothing=False
        ),
        "cold_vs_warm_ems": bench_cold_vs_warm(
            d, repeats=timing_reps, smoothing=True
        ),
        "olh_support_counts": bench_olh_support_counts(
            n=20_000 if args.quick else 200_000,
            d=256 if args.quick else 1024,
            repeats=timing_reps,
            chunks=(1024, 4096, 16384),
        ),
    }
    report["dense_bitwise_identical"] = check_dense_bitwise(128)
    equivalence_ok = (
        report["per_iteration_em"]["max_abs_diff"] < 1e-8
        and report["per_iteration_ems"]["max_abs_diff"] < 1e-8
        and report["cold_vs_warm_em"]["iterations_match_dense"]
        and report["cold_vs_warm_ems"]["iterations_match_dense"]
    )
    report["targets"] = {
        "per_iteration_speedup_min": 10.0,
        "at_d": 4096,
        "em_speedup_ok": bool(
            args.quick or report["per_iteration_em"]["speedup"] >= 10.0
        ),
        "ems_speedup_ok": bool(
            args.quick or report["per_iteration_ems"]["speedup"] >= 10.0
        ),
        "equivalence_ok": bool(equivalence_ok),
        "dense_bitwise_ok": bool(report["dense_bitwise_identical"]),
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    em = report["per_iteration_em"]
    ems = report["per_iteration_ems"]
    disc = report["per_iteration_discrete_em"]
    cold = report["cold_vs_warm_em"]
    print(
        f"EM  per-iter : {em['speedup']:>8.1f}x at d={em['d']} "
        f"({em['dense_per_iter_s'] * 1e3:.2f} ms -> "
        f"{em['operator_per_iter_s'] * 1e3:.3f} ms)"
    )
    print(
        f"EMS per-iter : {ems['speedup']:>8.1f}x at d={ems['d']} "
        f"({ems['dense_per_iter_s'] * 1e3:.2f} ms -> "
        f"{ems['operator_per_iter_s'] * 1e3:.3f} ms)"
    )
    print(f"discrete EM  : {disc['speedup']:>8.1f}x at d={disc['d']}")
    print(
        f"cold solve   : {cold['cold_speedup']:>8.1f}x "
        f"({cold['cold_iterations']} iters), warm "
        f"{report['cold_vs_warm_em']['warm_speedup']:.1f}x "
        f"({cold['warm_iterations']} iters)"
    )
    print(
        f"olh chunks   : fastest _AGGREGATE_CHUNK="
        f"{report['olh_support_counts']['fastest_chunk']}"
    )
    print(
        f"dense bitwise: {report['dense_bitwise_identical']}, "
        f"equivalence: {equivalence_ok}"
    )
    print(f"wrote {out}")

    # Exit status gates only the deterministic correctness bits; wall-clock
    # targets are recorded for the trajectory but would flake on noisy CI.
    ok = report["targets"]["equivalence_ok"] and report["targets"]["dense_bitwise_ok"]
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
