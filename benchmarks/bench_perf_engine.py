"""Performance benchmark for the shared compute engine (``repro.engine``).

Times the three engine claims against their pre-engine baselines and writes
a machine-readable ``BENCH_engine.json`` so the perf trajectory is recorded
from run to run (the CI perf-smoke step uploads it as an artifact):

1. **Matrix cache** — cold exact Square Wave transition-matrix construction
   vs a warm cache fetch (target: >= 5x).
2. **Batched EM/EMS** — ``B`` reconstruction problems sharing one matrix,
   solved as one engine batch vs ``B`` sequential single-problem calls at a
   pinned iteration count (target: >= 2x for B >= 16).
3. **Parallel sweep** — ``run_sweep(n_jobs=2)`` vs the serial path on the
   same config, asserting the results are bit-identical.

Run:  PYTHONPATH=src python benchmarks/bench_perf_engine.py [--quick]
          [--jobs 2] [--out benchmarks/BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.em import expectation_maximization
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import SquareWave
from repro.datasets.base import Dataset
from repro.engine.backend import effective_cpu_count
from repro.engine.cache import cached_transition_matrix, clear_caches
from repro.engine.solver import batched_expectation_maximization
from repro.experiments.runner import SweepConfig, run_sweep


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_matrix_cache(d: int, repeats: int) -> dict:
    """Cold exact-trapezoid construction vs warm cache fetch."""
    sw = SquareWave(1.0)

    def cold():
        clear_caches()
        cached_transition_matrix(sw, d, d)

    cold_s = _best_of(cold, repeats)
    cached_transition_matrix(sw, d, d)  # prime
    fetches = 100
    warm_s = _best_of(
        lambda: [cached_transition_matrix(sw, d, d) for _ in range(fetches)],
        repeats,
    ) / fetches
    return {
        "d": d,
        "d_out": d,
        "cold_build_s": cold_s,
        "warm_fetch_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def bench_batched_em(
    d: int, batch: int, iters: int, repeats: int, *, smoothing: bool
) -> dict:
    """One engine batch vs B sequential solves at a pinned iteration count."""
    rng = np.random.default_rng(0)
    matrix = np.asarray(SquareWave(1.0).transition_matrix(d, d))
    counts = np.stack(
        [
            rng.multinomial(50_000, matrix @ rng.dirichlet(np.ones(d))).astype(float)
            for _ in range(batch)
        ],
        axis=1,
    )
    kernel = binomial_kernel(2) if smoothing else None
    # tol = -1 never triggers, so both paths run exactly `iters` iterations.
    kwargs = dict(tol=-1.0, max_iter=iters, smoothing_kernel=kernel)

    sequential_s = _best_of(
        lambda: [
            expectation_maximization(matrix, counts[:, j], **kwargs)
            for j in range(batch)
        ],
        repeats,
    )
    batched_s = _best_of(
        lambda: batched_expectation_maximization(matrix, counts, **kwargs),
        repeats,
    )
    # Sanity: both paths agree column by column.
    batched = batched_expectation_maximization(matrix, counts, **kwargs)
    for j in range(batch):
        seq = expectation_maximization(matrix, counts[:, j], **kwargs)
        np.testing.assert_allclose(
            batched.estimates[:, j], seq.estimate, atol=1e-10
        )
    return {
        "d": d,
        "d_out": d,
        "batch": batch,
        "iterations": iters,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s,
    }


def bench_parallel_sweep(n_users: int, d: int, repeats: int, jobs: int) -> dict:
    """Serial vs n_jobs sweep on one config; results must be bit-identical.

    Skips (with the reason recorded) when the *effective* core count —
    what the scheduler actually grants this process, not what the machine
    has — is 1: a multiprocess sweep cannot beat serial there, and the
    ~1.0x it would report is scheduler noise, not a perf signal.
    """
    cores = effective_cpu_count()
    if cores < 2:
        return {
            "skipped": True,
            "reason": (
                f"only {cores} effective core available "
                "(len(os.sched_getaffinity(0))); a multiprocess sweep "
                "cannot demonstrate a speedup on this runner"
            ),
            "effective_cores": cores,
            "n_jobs": jobs,
        }
    values = np.random.default_rng(0).beta(5, 2, n_users)
    dataset = Dataset(name="beta", values=values, default_bins=d)
    config = SweepConfig(
        dataset="beta",
        methods=("sw-ems", "sw-em"),
        epsilons=(0.5, 1.0),
        metrics=("w1", "ks"),
        repeats=repeats,
        d=d,
        seed=0,
    )
    start = time.perf_counter()
    serial = run_sweep(config, dataset=dataset)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sweep(config, dataset=dataset, n_jobs=jobs)
    parallel_s = time.perf_counter() - start
    return {
        "n_users": n_users,
        "trials": len(config.methods) * len(config.epsilons) * config.repeats,
        "n_jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "parallel_matches_serial": serial == parallel,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for CI smoke runs",
    )
    parser.add_argument("--jobs", type=int, default=2, help="sweep worker count")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_engine.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    timing_reps = 3 if args.quick else 5
    report = {
        "benchmark": "engine",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        # The parallel-sweep speedup is bounded by the *effective* core
        # count (scheduler affinity), which containers and pinned CI
        # runners set far below the machine's cpu_count; both are recorded.
        "cpu_count": os.cpu_count(),
        "effective_cores": effective_cpu_count(),
        "matrix_cache": bench_matrix_cache(
            d=256 if args.quick else 1024, repeats=timing_reps
        ),
        "batched_em": bench_batched_em(
            d=128 if args.quick else 256,
            batch=16 if args.quick else 32,
            iters=25 if args.quick else 50,
            repeats=timing_reps,
            smoothing=False,
        ),
        "batched_ems": bench_batched_em(
            d=128 if args.quick else 256,
            batch=16 if args.quick else 32,
            iters=25 if args.quick else 50,
            repeats=timing_reps,
            smoothing=True,
        ),
        "parallel_sweep": bench_parallel_sweep(
            n_users=5_000 if args.quick else 200_000,
            d=64 if args.quick else 256,
            repeats=2 if args.quick else 4,
            jobs=args.jobs,
        ),
    }
    report["targets"] = {
        "matrix_cache_speedup_min": 5.0,
        "batched_em_speedup_min": 2.0,
        "matrix_cache_ok": report["matrix_cache"]["speedup"] >= 5.0,
        "batched_em_ok": report["batched_em"]["speedup"] >= 2.0,
        # A skipped sweep (1 effective core) is not a failure — the reason
        # is recorded in the parallel_sweep block.
        "parallel_sweep_ok": (
            True
            if report["parallel_sweep"].get("skipped")
            else report["parallel_sweep"]["parallel_matches_serial"]
        ),
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"matrix cache : {report['matrix_cache']['speedup']:>10.1f}x "
          f"(cold {report['matrix_cache']['cold_build_s'] * 1e3:.2f} ms -> "
          f"warm {report['matrix_cache']['warm_fetch_s'] * 1e6:.2f} us)")
    print(f"batched EM   : {report['batched_em']['speedup']:>10.1f}x "
          f"(B={report['batched_em']['batch']}, "
          f"{report['batched_em']['iterations']} iters)")
    print(f"batched EMS  : {report['batched_ems']['speedup']:>10.1f}x")
    sweep = report["parallel_sweep"]
    if sweep.get("skipped"):
        print(f"parallel sweep: skipped ({sweep['reason']})")
    else:
        print(f"parallel sweep: {sweep['speedup']:>9.1f}x "
              f"(n_jobs={sweep['n_jobs']}, bit-identical="
              f"{sweep['parallel_matches_serial']})")
    print(f"wrote {out}")

    # Exit status gates only the deterministic correctness bit (parallel ==
    # serial). The wall-clock speedup targets are recorded in the JSON for
    # the trajectory but deliberately do not fail the run: on noisy shared
    # CI runners a timing gate would flake on unrelated changes.
    return 0 if report["targets"]["parallel_sweep_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
