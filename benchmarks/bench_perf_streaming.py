"""Performance benchmark for the streaming collection engine.

Exercises ``repro.streaming`` the way a longitudinal deployment would and
writes a machine-readable ``BENCH_streaming.json`` (uploaded as a CI
artifact):

1. **Window maintenance** — a sliding window of ``W`` rounds (50k reports
   each in full mode) advanced one round at a time. Records the O(d)
   advance cost against the O(W * n) re-ingest a deployment without state
   arithmetic would pay (re-running ``partial_fit`` over every surviving
   round's reports, measured on sampled ticks), plus the O(W * d)
   payload re-merge as a secondary baseline. Every advance checks the
   exactness contract: the maintained aggregate is **bit-identical** to
   rebuilding from the ring. The tracemalloc peak of the maintenance
   phase must stay O(W * d + batch) — a fixed allowance plus ring-buffer
   and one-round working set — never O(total reports).
2. **Warm vs cold scheduling** — the same drifting stream ticked through
   two collectors, one warm-starting EM from the previous posterior and
   one solving cold; the warm pass must spend strictly fewer EM
   iterations in total. Per-tick latency is recorded for the trajectory.
3. **Fusion** — a multi-attribute tick solved through one fused
   ``run_many`` batch vs per-attribute dispatch.
4. **Stream budget audit** — the multi-round accounting identity
   (``per_window = rounds * per_round`` under every-round participation)
   checked exactly.

Exit status gates only the deterministic contracts (bit-identity, warm <
cold iterations, bounded memory, audit identity — plus the >=20x
advance-vs-reingest speedup in full mode, where W=64 makes the asymptotic
gap overwhelming); wall-clock numbers are recorded but not gated in
``--quick`` CI smoke.

Run:  PYTHONPATH=src python benchmarks/bench_perf_streaming.py [--quick]
          [--out benchmarks/BENCH_streaming.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.api import make_estimator
from repro.engine.backend import effective_cpu_count
from repro.privacy import audit_stream_budget
from repro.streaming import SlidingWindowState, StreamingCollector
from repro.streaming.telemetry import drifting_stream
from repro.streaming.window import clone_template
from repro.utils.rng import as_generator

#: Fixed working-set allowance for the maintenance phase: estimator
#: states, the JSON payload ring, interpreter noise. The variable part
#: scales with W * d (ring payloads) and one round's report batch — never
#: with the total number of reports seen by the stream.
MEMORY_FIXED_ALLOWANCE_BYTES = 4_000_000
MEMORY_PER_RING_SLOT_FACTOR = 64  # bytes per (window x d) cell, generous
SPEEDUP_TARGET = 20.0


def bench_window_maintenance(
    d: int, window: int, n_rounds: int, reports_per_round: int
) -> dict:
    """Advance vs re-ingest over a full stream of rounds."""
    template = make_estimator("sw-ems", 1.0, d)
    gen = as_generator(7)
    win = SlidingWindowState(template, window=window)
    scratch = clone_template(template)

    advance_s = 0.0
    remerge_s = 0.0
    bit_identical = True
    report_batch_bytes = reports_per_round * 8

    # Phase A: the maintained stream. Memory-tracked: peak must be the
    # ring (W * d payloads) plus one round's report batch, never the
    # n_rounds * reports_per_round total.
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(n_rounds):
        scratch.reset()
        scratch.partial_fit(gen.random(reports_per_round), rng=gen)
        started = time.perf_counter()
        win.push(scratch)
        advance_s += time.perf_counter() - started

        started = time.perf_counter()
        rebuilt = win.rebuild()
        remerge_s += time.perf_counter() - started
        if not (
            (win.current._counts == rebuilt._counts).all()
            and win.current.n_reports == rebuilt.n_reports
        ):
            bit_identical = False
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Phase B: what one tick costs a deployment WITHOUT state arithmetic —
    # re-ingesting all W surviving rounds' reports through partial_fit.
    # Sampled (it is the O(W * n) slow path being benchmarked against);
    # report batches are regenerated outside the timed region.
    reingest_samples = 3
    reingest_s = 0.0
    gen_b = as_generator(11)
    for _ in range(reingest_samples):
        batches = [gen_b.random(reports_per_round) for _ in range(window)]
        fresh = clone_template(template)
        started = time.perf_counter()
        for batch in batches:
            fresh.partial_fit(batch, rng=gen_b)
        reingest_s += time.perf_counter() - started
    reingest_per_tick = reingest_s / reingest_samples
    advance_per_tick = advance_s / n_rounds

    memory_budget = (
        MEMORY_FIXED_ALLOWANCE_BYTES
        + MEMORY_PER_RING_SLOT_FACTOR * window * d
        + 4 * report_batch_bytes
    )
    speedup = (
        reingest_per_tick / advance_per_tick
        if advance_per_tick > 0
        else float("inf")
    )
    remerge_per_tick = remerge_s / n_rounds
    return {
        "d": d,
        "window": window,
        "n_rounds": n_rounds,
        "reports_per_round": reports_per_round,
        "total_reports": n_rounds * reports_per_round,
        "advance_s_per_tick": round(advance_per_tick, 8),
        "reingest_s_per_tick": round(reingest_per_tick, 6),
        "reingest_samples": reingest_samples,
        "remerge_s_per_tick": round(remerge_per_tick, 8),
        "speedup_advance_vs_reingest": round(speedup, 1),
        "speedup_advance_vs_remerge": round(
            remerge_per_tick / advance_per_tick, 2
        ),
        "bit_identical_every_tick": bit_identical,
        "peak_tracked_bytes": peak,
        "memory_budget_bytes": memory_budget,
        "memory_bounded": bool(peak < memory_budget),
    }


def bench_warm_vs_cold(
    d: int, window: int, n_ticks: int, reports_per_round: int
) -> dict:
    """Total EM iterations across a drifting stream, warm vs cold."""
    out: dict = {
        "d": d,
        "window": window,
        "n_ticks": n_ticks,
        "reports_per_round": reports_per_round,
    }
    totals: dict[str, int] = {}
    for mode, warm in (("warm", True), ("cold", False)):
        collector = StreamingCollector(
            {"value": make_estimator("sw-ems", 1.0, d)},
            window=window,
            warm_start=warm,
        )
        iterations = 0
        tick_seconds: list[float] = []
        for values in drifting_stream(n_ticks, reports_per_round, rng=3):
            rounds = {
                "value": collector.make_round("value", values, rng=as_generator(5))
            }
            started = time.perf_counter()
            result = collector.tick(rounds)
            tick_seconds.append(time.perf_counter() - started)
            iterations += result.total_iterations
        totals[mode] = iterations
        arr = np.asarray(tick_seconds)
        out[mode] = {
            "total_em_iterations": iterations,
            "tick_s_mean": round(float(arr.mean()), 6),
            "tick_s_max": round(float(arr.max()), 6),
        }
    out["iteration_ratio_warm_over_cold"] = round(
        totals["warm"] / totals["cold"], 4
    )
    out["warm_fewer_iterations"] = bool(totals["warm"] < totals["cold"])
    return out


def bench_fusion(d: int, n_attrs: int, reports_per_round: int) -> dict:
    """One fused run_many dispatch vs per-attribute solo solves."""
    gen = as_generator(17)
    batches = [gen.random(reports_per_round) for _ in range(n_attrs)]

    fused_collector = StreamingCollector(
        {f"a{i}": make_estimator("sw-ems", 1.0, d) for i in range(n_attrs)},
        window=4,
    )
    rounds = {
        f"a{i}": fused_collector.make_round(f"a{i}", batches[i], rng=as_generator(i))
        for i in range(n_attrs)
    }
    started = time.perf_counter()
    fused_result = fused_collector.tick(rounds)
    fused_s = time.perf_counter() - started

    solo_s = 0.0
    for i in range(n_attrs):
        solo = StreamingCollector(
            {f"a{i}": make_estimator("sw-ems", 1.0, d)}, window=4
        )
        solo_rounds = {
            f"a{i}": solo.make_round(f"a{i}", batches[i], rng=as_generator(i))
        }
        started = time.perf_counter()
        solo.tick(solo_rounds)
        solo_s += time.perf_counter() - started

    return {
        "d": d,
        "n_attrs": n_attrs,
        "fused_groups": fused_result.fused_groups,
        "fused_tick_s": round(fused_s, 6),
        "solo_ticks_s": round(solo_s, 6),
        "all_fused": bool(
            all(t.fused for t in fused_result.attributes.values())
        ),
    }


def bench_stream_audit() -> dict:
    """The multi-round accounting identity, checked exactly."""
    allocation = {"income": 0.5, "hours": 0.5, "trips": 1.0}
    rounds = 64
    every = audit_stream_budget(allocation, 8.0, rounds=rounds)
    once = audit_stream_budget(
        allocation, 8.0, rounds=rounds, participation="once"
    )
    identity = (
        every.per_window_epsilon == rounds * every.per_round_epsilon
        and once.per_window_epsilon == once.per_round_epsilon
    )
    return {
        "allocation": allocation,
        "rounds": rounds,
        "per_round_epsilon": every.per_round_epsilon,
        "every_round_window_epsilon": every.per_window_epsilon,
        "once_window_epsilon": once.per_window_epsilon,
        "identity_holds": bool(identity),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke (W=8 rounds of 2k reports)",
    )
    parser.add_argument(
        "--out", default="benchmarks/BENCH_streaming.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    if args.quick:
        d, window, n_rounds, reports = 64, 8, 12, 2_000
        warm_ticks, warm_reports = 8, 2_000
        fusion_attrs, fusion_reports = 4, 2_000
    else:
        d, window, n_rounds, reports = 256, 64, 96, 50_000
        warm_ticks, warm_reports = 24, 50_000
        fusion_attrs, fusion_reports = 8, 50_000

    report: dict = {
        "benchmark": "streaming",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "effective_cores": effective_cpu_count(),
    }
    report["window_maintenance"] = bench_window_maintenance(
        d, window, n_rounds, reports
    )
    report["warm_vs_cold"] = bench_warm_vs_cold(
        d, window, warm_ticks, warm_reports
    )
    report["fusion"] = bench_fusion(d, fusion_attrs, fusion_reports)
    report["stream_audit"] = bench_stream_audit()

    maintenance = report["window_maintenance"]
    speedup_ok = (
        maintenance["speedup_advance_vs_reingest"] >= SPEEDUP_TARGET
        if not args.quick
        else True  # wall-clock gate only at full W=64 scale
    )
    report["targets"] = {
        "bit_identical_every_tick_ok": maintenance["bit_identical_every_tick"],
        "speedup_target": SPEEDUP_TARGET,
        "speedup_ok": speedup_ok,
        "memory_fixed_allowance_bytes": MEMORY_FIXED_ALLOWANCE_BYTES,
        "memory_bounded_ok": maintenance["memory_bounded"],
        "warm_fewer_iterations_ok": report["warm_vs_cold"][
            "warm_fewer_iterations"
        ],
        "fusion_single_dispatch_ok": report["fusion"]["fused_groups"] == 1
        and report["fusion"]["all_fused"],
        "stream_audit_identity_ok": report["stream_audit"]["identity_holds"],
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"window W={maintenance['window']} d={maintenance['d']}: advance "
        f"{maintenance['advance_s_per_tick'] * 1e3:.3f}ms/tick vs re-ingest "
        f"{maintenance['reingest_s_per_tick'] * 1e3:.3f}ms/tick "
        f"({maintenance['speedup_advance_vs_reingest']:.1f}x), "
        f"bit-identical={maintenance['bit_identical_every_tick']}"
    )
    warm = report["warm_vs_cold"]
    print(
        f"warm vs cold over {warm['n_ticks']} drifting ticks: "
        f"{warm['warm']['total_em_iterations']} vs "
        f"{warm['cold']['total_em_iterations']} EM iterations "
        f"(ratio {warm['iteration_ratio_warm_over_cold']:.2f})"
    )
    fusion = report["fusion"]
    print(
        f"fusion: {fusion['n_attrs']} attrs in {fusion['fused_groups']} "
        f"dispatch ({fusion['fused_tick_s'] * 1e3:.1f}ms fused vs "
        f"{fusion['solo_ticks_s'] * 1e3:.1f}ms solo)"
    )
    print(f"wrote {out}")

    targets = report["targets"]
    ok = all(
        targets[key]
        for key in (
            "bit_identical_every_tick_ok",
            "speedup_ok",
            "memory_bounded_ok",
            "warm_fewer_iterations_ok",
            "fusion_single_dispatch_ok",
            "stream_audit_identity_ok",
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
