"""Ablation: population splitting vs budget splitting in HH (paper §4.2).

The paper states that under LDP one should divide the *population* among
tree levels (whole budget per report) rather than divide the *budget*
(every user reports every level at eps/h). Both are implemented; this bench
records the gap.
"""

import numpy as np
import pytest

from conftest import BENCH_N, BENCH_SEED, save_series

from repro.experiments.runner import ResultRow
from repro.hierarchy.hh import HierarchicalHistogram
from repro.metrics.distances import wasserstein_distance
from repro.postprocess.norm_sub import norm_sub

_EPSILONS = (0.5, 1.0, 2.5)
_D = 256


@pytest.fixture(scope="module")
def split_rows(beta_dataset_bench):
    truth = beta_dataset_bench.histogram(_D)
    rows = []
    for split in ("population", "budget"):
        for eps in _EPSILONS:
            errors = []
            for seed in range(3):
                hh = HierarchicalHistogram(eps, d=_D, branching=4, split=split)
                leaves = hh.fit(
                    beta_dataset_bench.values, rng=np.random.default_rng(seed)
                )
                errors.append(wasserstein_distance(truth, norm_sub(leaves)))
            rows.append(
                ResultRow("beta", f"hh-{split}", eps, "w1",
                          float(np.mean(errors)), float(np.std(errors)), 3)
            )
    return rows


@pytest.mark.parametrize("split", ("population", "budget"))
def test_split_fit(benchmark, beta_dataset_bench, split):
    rng = np.random.default_rng(0)
    hh = HierarchicalHistogram(1.0, d=_D, branching=4, split=split)
    leaves = benchmark.pedantic(
        lambda: hh.fit(beta_dataset_bench.values, rng=rng), rounds=2, iterations=1
    )
    assert leaves.sum() == pytest.approx(1.0, abs=1e-6)


def test_hierarchy_split_series(benchmark, results_dir, split_rows):
    benchmark.pedantic(lambda: split_rows, rounds=1, iterations=1)
    save_series(rows=split_rows, name="ablation_hierarchy_split",
                results_dir=results_dir,
                title="Ablation: HH population vs budget splitting (beta)")
    # Paper claim: population splitting wins at every epsilon under LDP.
    for eps in _EPSILONS:
        w1 = {r.method: r.mean for r in split_rows if r.epsilon == eps}
        assert w1["hh-population"] < w1["hh-budget"], (eps, w1)
