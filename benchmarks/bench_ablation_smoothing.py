"""Ablation: smoothing strength in EMS (not a paper figure).

DESIGN.md calls out the binomial (1,2,1)/4 kernel as a design choice; this
bench sweeps the kernel order (0 = plain EM step, 2 = paper, 4/6 = stronger)
to show the paper's choice sits at a good quality/runtime point.
"""

import numpy as np
import pytest

from conftest import BENCH_N, BENCH_SEED, save_series

from repro.core.pipeline import SWEstimator
from repro.experiments.runner import ResultRow
from repro.metrics.distances import wasserstein_distance

_ORDERS = (0, 2, 4, 6)


@pytest.fixture(scope="module")
def ablation_rows(beta_dataset_bench):
    truth = beta_dataset_bench.histogram(256)
    rows = []
    for order in _ORDERS:
        errors, iterations = [], []
        for seed in range(3):
            est = SWEstimator(1.0, 256, smoothing_order=order)
            out = est.fit(beta_dataset_bench.values, rng=np.random.default_rng(seed))
            errors.append(wasserstein_distance(truth, out))
            iterations.append(est.result_.iterations)
        rows.append(
            ResultRow(
                dataset="beta",
                method=f"ems-order-{order}",
                epsilon=1.0,
                metric="w1",
                mean=float(np.mean(errors)),
                std=float(np.std(errors)),
                repeats=3,
                extra={"mean_iterations": float(np.mean(iterations))},
            )
        )
    return rows


@pytest.mark.parametrize("order", _ORDERS)
def test_smoothing_order_fit(benchmark, beta_dataset_bench, order):
    rng = np.random.default_rng(0)
    est = SWEstimator(1.0, 256, smoothing_order=order)
    out = benchmark.pedantic(
        lambda: est.fit(beta_dataset_bench.values, rng=rng), rounds=2, iterations=1
    )
    assert out.sum() == pytest.approx(1.0)


def test_smoothing_ablation_series(benchmark, results_dir, ablation_rows):
    benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    save_series(rows=ablation_rows, name="ablation_smoothing", results_dir=results_dir,
                title="Ablation: EMS smoothing kernel order (eps=1, beta)")
    means = {r.method: r.mean for r in ablation_rows}
    # The paper's kernel (order 2) beats no smoothing at this noise level.
    assert means["ems-order-2"] < means["ems-order-0"], means
