"""Performance benchmark for the pluggable compute backends.

Measures the ``repro.engine.backend`` seam on the four workloads it was
built for, and writes a machine-readable ``BENCH_backend.json`` (uploaded
as a CI perf-smoke artifact):

1. **Batched EM** — dense-channel solves at a pinned iteration count,
   NumPy baseline vs ``threaded:{1,2,4,8}``.
2. **Batched EMS** — the same solve with binomial smoothing.
3. **OLH support counts** — the chunked Carter-Wegman aggregation sharded
   across worker user-spans.
4. **Frame decode** — a multi-block RPF2 frame with per-block
   materialization fanned across workers.

Every workload records the threaded-vs-numpy ``max_abs_diff`` (the
equivalence contract: <= 1e-12, and in fact 0.0 — sharding is bit-exact)
and a ``bit_identical_across_workers`` determinism flag *regardless* of
the machine; the wall-clock scaling curves are skipped with a recorded
reason when the process's effective core count
(``len(os.sched_getaffinity(0))``) is 1, because no thread pool can beat
serial there and a ~1.0x curve would be noise, not signal. The numba
backend is included in the equivalence pass when the optional dependency
is importable, and recorded as unavailable otherwise.

Run:  PYTHONPATH=src python benchmarks/bench_perf_backend.py [--quick]
          [--out benchmarks/BENCH_backend.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import SquareWave
from repro.engine.backend import (
    BackendUnavailableError,
    NumpyBackend,
    ThreadedBackend,
    effective_cpu_count,
    make_backend,
    use_backend,
)
from repro.engine.solver import batched_expectation_maximization
from repro.freq_oracle.olh import OLH
from repro.protocol.frames import decode_frame_grouped, encode_frame_blocks

#: Worker counts the scaling curves sweep (the ISSUE's 1/2/4/8 ladder).
WORKER_COUNTS = (1, 2, 4, 8)

#: Equivalence contract every backend must meet against NumPy.
EQUIVALENCE_ATOL = 1e-12


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _numba_backend():
    """The numba backend, or ``None`` when the dependency is missing."""
    try:
        return make_backend("numba")
    except BackendUnavailableError:
        return None


def _bench_workload(name: str, run, repeats: int, *, scale: bool) -> dict:
    """Equivalence always; timing curves only when ``scale``.

    ``run(backend)`` must return an ndarray and be a pure function of the
    backend (same inputs every call).
    """
    baseline = run(NumpyBackend())
    numpy_s = _best_of(lambda: run(NumpyBackend()), repeats)

    threaded_results = {
        w: run(ThreadedBackend(w)) for w in WORKER_COUNTS
    }
    equivalence = {
        f"threaded:{w}": {
            "max_abs_diff": float(np.max(np.abs(result - baseline))),
            "bit_identical_to_numpy": bool(np.array_equal(result, baseline)),
        }
        for w, result in threaded_results.items()
    }
    first = threaded_results[WORKER_COUNTS[0]]
    report: dict = {
        "workload": name,
        "numpy_s": numpy_s,
        "equivalence": equivalence,
        # The determinism contract: shard boundaries depend on the data
        # shape, not the worker count, so every pool size agrees bit-for-bit.
        "bit_identical_across_workers": all(
            np.array_equal(result, first) for result in threaded_results.values()
        ),
    }

    numba = _numba_backend()
    if numba is not None:
        result = run(numba)
        report["equivalence"]["numba"] = {
            "max_abs_diff": float(np.max(np.abs(result - baseline))),
            "bit_identical_to_numpy": bool(np.array_equal(result, baseline)),
        }

    cores = effective_cpu_count()
    if not scale:
        report["scaling"] = {
            "skipped": True,
            "reason": (
                f"only {cores} effective core available "
                "(len(os.sched_getaffinity(0))); thread-pool scaling curves "
                "need a multi-core runner — equivalence recorded above"
            ),
        }
        return report

    report["scaling"] = [
        {
            "workers": w,
            "time_s": (t := _best_of(lambda: run(ThreadedBackend(w)), repeats)),
            "speedup_vs_numpy": numpy_s / t,
            "max_abs_diff": report["equivalence"][f"threaded:{w}"]["max_abs_diff"],
        }
        for w in WORKER_COUNTS
    ]
    return report


def bench_em(d: int, batch: int, iters: int, repeats: int, *, smoothing: bool,
             scale: bool) -> dict:
    """Dense-channel batched EM/EMS at a pinned iteration count."""
    rng = np.random.default_rng(0)
    matrix = np.asarray(SquareWave(1.0).transition_matrix(d, d))
    counts = np.stack(
        [
            rng.multinomial(50_000, matrix @ rng.dirichlet(np.ones(d))).astype(float)
            for _ in range(batch)
        ],
        axis=1,
    )
    kernel = binomial_kernel(2) if smoothing else None

    def run(backend):
        return batched_expectation_maximization(
            matrix, counts, tol=-1.0, max_iter=iters,
            smoothing_kernel=kernel, backend=backend,
        ).estimates

    name = "ems" if smoothing else "em"
    report = _bench_workload(name, run, repeats, scale=scale)
    report.update({"d": d, "batch": batch, "iterations": iters})
    return report


def bench_olh(n: int, d: int, repeats: int, *, scale: bool) -> dict:
    """Chunked Carter-Wegman support counts over n users."""
    rng = np.random.default_rng(1)
    oracle = OLH(epsilon=1.0, d=d)
    reports = oracle.privatize(rng.integers(0, d, size=n), rng=rng)

    def run(backend):
        with use_backend(backend):
            return oracle.support_counts(reports)

    report = _bench_workload("olh_support_counts", run, repeats, scale=scale)
    report.update({"n": n, "d": d, "g": oracle.g})
    return report


def bench_frame_decode(n_per_block: int, blocks: int, repeats: int, *,
                       scale: bool) -> dict:
    """Multi-block frame decode: per-block materialization across workers."""
    rng = np.random.default_rng(2)
    frame = encode_frame_blocks(
        "bench-round",
        [
            (f"attr{i}", "float", rng.random(n_per_block))
            for i in range(blocks)
        ],
    )

    def run(backend):
        with use_backend(backend):
            _, groups = decode_frame_grouped(frame)
        return np.concatenate([groups[attr].reports for attr in sorted(groups)])

    report = _bench_workload("frame_decode", run, repeats, scale=scale)
    report.update(
        {"blocks": blocks, "n_per_block": n_per_block, "bytes": len(frame)}
    )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for CI smoke runs",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_backend.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    timing_reps = 2 if args.quick else 5
    cores = effective_cpu_count()
    scale = cores >= 2
    numba = _numba_backend()
    report = {
        "benchmark": "backend",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cores": cores,
        "worker_counts": list(WORKER_COUNTS),
        "numba": (
            numba.describe()
            if numba is not None
            else {"available": False, "reason": "numba not importable"}
        ),
        "em": bench_em(
            d=128 if args.quick else 512,
            batch=16 if args.quick else 64,
            iters=10 if args.quick else 25,
            repeats=timing_reps,
            smoothing=False,
            scale=scale,
        ),
        "ems": bench_em(
            d=128 if args.quick else 512,
            batch=16 if args.quick else 64,
            iters=10 if args.quick else 25,
            repeats=timing_reps,
            smoothing=True,
            scale=scale,
        ),
        "olh": bench_olh(
            n=20_000 if args.quick else 200_000,
            d=64 if args.quick else 256,
            repeats=timing_reps,
            scale=scale,
        ),
        "frame_decode": bench_frame_decode(
            n_per_block=100_000 if args.quick else 1_000_000,
            blocks=4 if args.quick else 8,
            repeats=timing_reps,
            scale=scale,
        ),
    }

    workloads = [report[key] for key in ("em", "ems", "olh", "frame_decode")]
    equivalence_ok = all(
        entry["max_abs_diff"] <= EQUIVALENCE_ATOL
        for workload in workloads
        for entry in workload["equivalence"].values()
    )
    deterministic = all(
        workload["bit_identical_across_workers"] for workload in workloads
    )

    def best_speedup(workload: dict) -> float | None:
        if isinstance(workload["scaling"], dict):  # skipped
            return None
        return max(point["speedup_vs_numpy"] for point in workload["scaling"])

    report["targets"] = {
        "equivalence_atol": EQUIVALENCE_ATOL,
        "equivalence_ok": equivalence_ok,
        "bit_identical_across_workers_ok": deterministic,
        "em_ems_speedup_min_at_4_workers": 2.0,
        # Timing target only applies when the scaling curves actually ran.
        "scaling_measured": scale,
        "em_ems_speedup_ok": (
            None
            if not scale
            else all(
                any(
                    point["workers"] == 4
                    and point["speedup_vs_numpy"] >= 2.0
                    for point in report[key]["scaling"]
                )
                for key in ("em", "ems")
            )
        ),
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for key in ("em", "ems", "olh", "frame_decode"):
        workload = report[key]
        worst = max(
            entry["max_abs_diff"] for entry in workload["equivalence"].values()
        )
        if isinstance(workload["scaling"], dict):
            print(f"{key:>12}: scaling skipped ({cores} core); "
                  f"max_abs_diff={worst:.1e}, "
                  f"deterministic={workload['bit_identical_across_workers']}")
        else:
            curve = ", ".join(
                f"{p['workers']}w={p['speedup_vs_numpy']:.2f}x"
                for p in workload["scaling"]
            )
            print(f"{key:>12}: {curve}; max_abs_diff={worst:.1e}")
    print(f"wrote {out}")

    # Exit status gates only the deterministic contracts (equivalence and
    # worker-count invariance); wall-clock targets are recorded for the
    # trajectory but would flake on noisy shared runners.
    return 0 if (equivalence_ok and deterministic) else 1


if __name__ == "__main__":
    raise SystemExit(main())
