"""Ablation: constraint-restoring post-processors for CFO estimates.

The paper adopts Norm-Sub from [35]; this bench compares it against the
other variants in that family (Norm, Norm-Mul, Norm-Cut) as the
post-processing step of CFO-with-binning, on a smooth and a spiky dataset.
Expected shape: Norm-Sub and Norm-Cut close on smooth data, Norm-Cut
preferable for spikes, plain Norm worst on W1 (keeps negatives).
"""

import numpy as np
import pytest

from conftest import BENCH_N, BENCH_SEED, save_series

from repro.binning.cfo_binning import spread_uniformly
from repro.datasets.registry import load_dataset
from repro.experiments.runner import ResultRow
from repro.freq_oracle.adaptive import choose_oracle
from repro.metrics.distances import ks_distance, wasserstein_distance
from repro.postprocess import norm_cut, norm_full, norm_mul, norm_sub
from repro.utils.histograms import bucketize

_VARIANTS = {
    "norm-sub": norm_sub,
    "norm-full": norm_full,
    "norm-mul": norm_mul,
    "norm-cut": norm_cut,
}
_BINS, _D, _EPSILON = 32, 256, 1.0


def _estimate(values, variant_fn, rng):
    oracle = choose_oracle(_EPSILON, _BINS)
    raw = oracle.estimate_from_values(bucketize(values, _BINS), rng=rng)
    return spread_uniformly(variant_fn(raw), _D)


@pytest.fixture(scope="module")
def variant_rows():
    rows = []
    for dataset_name in ("beta", "income"):
        ds = load_dataset(dataset_name, n=BENCH_N, rng=BENCH_SEED)
        truth = ds.histogram(_D)
        for name, fn in _VARIANTS.items():
            w1s, kss = [], []
            for seed in range(5):
                est = _estimate(ds.values, fn, np.random.default_rng(seed))
                w1s.append(wasserstein_distance(truth, est))
                kss.append(ks_distance(truth, est))
            rows.append(
                ResultRow(dataset_name, name, _EPSILON, "w1",
                          float(np.mean(w1s)), float(np.std(w1s)), 5)
            )
            rows.append(
                ResultRow(dataset_name, name, _EPSILON, "ks",
                          float(np.mean(kss)), float(np.std(kss)), 5)
            )
    return rows


@pytest.mark.parametrize("variant", tuple(_VARIANTS))
def test_postprocess_variant(benchmark, beta_dataset_bench, variant):
    rng = np.random.default_rng(0)
    est = benchmark(
        lambda: _estimate(beta_dataset_bench.values, _VARIANTS[variant], rng)
    )
    assert np.isfinite(est).all()


def test_postprocess_ablation_series(benchmark, results_dir, variant_rows):
    benchmark.pedantic(lambda: variant_rows, rounds=1, iterations=1)
    save_series(rows=variant_rows, name="ablation_postprocess",
                results_dir=results_dir,
                title="Ablation: CFO post-processing variants (eps=1)")
    w1_beta = {
        r.method: r.mean
        for r in variant_rows
        if r.metric == "w1" and r.dataset == "beta"
    }
    # The paper's choice is at least as good as the simpler alternatives on
    # smooth data.
    assert w1_beta["norm-sub"] <= w1_beta["norm-full"] * 1.05, w1_beta
    assert w1_beta["norm-sub"] <= w1_beta["norm-mul"] * 1.5, w1_beta
