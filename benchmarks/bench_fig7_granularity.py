"""Figure 7: effect of bucketization granularity on SW+EMS accuracy.

The paper compares d in {256, 512, 1024, 2048} and finds the optimum is
dataset-dependent and near sqrt(N). At bench scale (n = 20k by default) the
sqrt(N) guideline predicts coarse granularities win, which is exactly what
the saved series shows — the full-scale shape is recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from conftest import BENCH_N, BENCH_REPEATS, BENCH_SEED, save_series

from repro.core.pipeline import SWEstimator
from repro.experiments.figures import fig7_granularity

_GRANULARITIES = (256, 512, 1024, 2048)
_EPSILONS = (0.5, 1.0, 2.5)


@pytest.fixture(scope="module")
def fig7_rows():
    return fig7_granularity(
        datasets=("beta", "taxi"),
        epsilons=_EPSILONS,
        granularities=_GRANULARITIES,
        n=BENCH_N,
        repeats=BENCH_REPEATS,
        seed=BENCH_SEED,
    )


@pytest.mark.parametrize("d", _GRANULARITIES)
def test_fig7_fit_scaling(benchmark, beta_dataset_bench, d):
    """Time one SW+EMS fit per granularity (matrix build dominates at 2048)."""
    rng = np.random.default_rng(0)

    def run():
        return SWEstimator(1.0, d).fit(beta_dataset_bench.values, rng=rng)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out.size == d


def test_fig7_series(benchmark, results_dir, fig7_rows):
    benchmark.pedantic(lambda: fig7_rows, rounds=1, iterations=1)
    save_series(rows=fig7_rows, name="fig7", results_dir=results_dir,
                title="Figure 7: W1 vs epsilon across granularities")
    # Every cell is finite and positive; granularity ordering is
    # epsilon- and dataset-dependent (the paper's point), so no ordering
    # is asserted here — see EXPERIMENTS.md for the recorded full-scale run.
    assert all(np.isfinite(r.mean) and r.mean > 0 for r in fig7_rows)
    assert {r.method for r in fig7_rows} == {
        f"sw-ems-d{d}" for d in _GRANULARITIES
    }
