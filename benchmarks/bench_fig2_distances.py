"""Figure 2: Wasserstein and KS distance vs epsilon for all methods.

Regenerates both metric panels for every dataset at reduced scale and
benchmarks a single fit of each competing method (the unit of work behind
each figure point).
"""

import numpy as np
import pytest

from conftest import (
    BENCH_D,
    BENCH_EPSILONS,
    BENCH_N,
    BENCH_REPEATS,
    BENCH_SEED,
    save_series,
)

from repro.experiments.figures import fig2_distribution_distances
from repro.experiments.methods import make_method

_METHODS = ("sw-ems", "sw-em", "hh-admm", "cfo-16", "cfo-32", "cfo-64")


@pytest.fixture(scope="module")
def fig2_rows():
    return fig2_distribution_distances(
        epsilons=BENCH_EPSILONS, n=BENCH_N, repeats=BENCH_REPEATS, seed=BENCH_SEED
    )


@pytest.mark.parametrize("method", _METHODS)
def test_fig2_method_fit(benchmark, beta_dataset_bench, method):
    """Time one full collection + reconstruction round per method."""
    estimator = make_method(method, 1.0, BENCH_D)
    rng = np.random.default_rng(0)
    out = benchmark.pedantic(
        lambda: estimator.fit(beta_dataset_bench.values, rng=rng),
        rounds=3,
        iterations=1,
    )
    assert out.sum() == pytest.approx(1.0, abs=1e-6)


def test_fig2_series(benchmark, results_dir, fig2_rows):
    """Persist the regenerated panels and check the paper's shape claims."""
    benchmark.pedantic(lambda: fig2_rows, rounds=1, iterations=1)
    save_series(rows=fig2_rows, name="fig2", results_dir=results_dir,
                title="Figure 2: distribution distances (W1 top, KS bottom)")
    # Headline shape: averaged over datasets and epsilons, SW-EMS has the
    # lowest W1 of all methods (paper Section 6.2).
    by_method = {}
    for row in fig2_rows:
        if row.metric == "w1":
            by_method.setdefault(row.method, []).append(row.mean)
    means = {m: np.mean(v) for m, v in by_method.items()}
    assert min(means, key=means.get) == "sw-ems", means
    # EMS beats plain EM.
    assert means["sw-ems"] < means["sw-em"]
