"""Ablation: randomize-before-bucketize vs bucketize-before-randomize.

The paper (Section 5.4) states the two variants behave very similarly but
omits the comparison for space. Both variants are implemented here, so this
bench records it.
"""

import numpy as np
import pytest

from conftest import BENCH_SEED, save_series

from repro.core.pipeline import DiscreteSWEstimator, SWEstimator
from repro.experiments.runner import ResultRow
from repro.metrics.distances import ks_distance, wasserstein_distance

_VARIANTS = {
    "randomize-before-bucketize": lambda eps: SWEstimator(eps, 256),
    "bucketize-before-randomize": lambda eps: DiscreteSWEstimator(eps, 256),
}
_EPSILONS = (0.5, 1.0, 2.5)


@pytest.fixture(scope="module")
def variant_rows(beta_dataset_bench):
    truth = beta_dataset_bench.histogram(256)
    rows = []
    for name, factory in _VARIANTS.items():
        for eps in _EPSILONS:
            w1s, kss = [], []
            for seed in range(3):
                out = factory(eps).fit(
                    beta_dataset_bench.values, rng=np.random.default_rng(seed)
                )
                w1s.append(wasserstein_distance(truth, out))
                kss.append(ks_distance(truth, out))
            rows.append(
                ResultRow("beta", name, eps, "w1", float(np.mean(w1s)),
                          float(np.std(w1s)), 3)
            )
            rows.append(
                ResultRow("beta", name, eps, "ks", float(np.mean(kss)),
                          float(np.std(kss)), 3)
            )
    return rows


@pytest.mark.parametrize("variant", tuple(_VARIANTS))
def test_variant_fit(benchmark, beta_dataset_bench, variant):
    rng = np.random.default_rng(0)
    est = _VARIANTS[variant](1.0)
    out = benchmark.pedantic(
        lambda: est.fit(beta_dataset_bench.values, rng=rng), rounds=2, iterations=1
    )
    assert out.sum() == pytest.approx(1.0)


def test_discretization_ablation_series(benchmark, results_dir, variant_rows):
    benchmark.pedantic(lambda: variant_rows, rounds=1, iterations=1)
    save_series(rows=variant_rows, name="ablation_discretization",
                results_dir=results_dir,
                title="Ablation: R-B vs B-R Square Wave (beta)")
    # Paper Section 5.4: 'we found that they are very similar'.
    for eps in _EPSILONS:
        w1 = {
            r.method: r.mean
            for r in variant_rows
            if r.metric == "w1" and r.epsilon == eps
        }
        rb = w1["randomize-before-bucketize"]
        br = w1["bucketize-before-randomize"]
        assert abs(rb - br) < 0.6 * max(rb, br), (eps, rb, br)
