"""Figure 4: mean, variance, and quantile MAE.

Adds the dedicated mean estimators (SR, PM) that spend their whole budget on
one scalar, and checks SW+EMS stays comparable on the mean while also
providing the full distribution (the paper's Section 6.3 observation).
"""

import numpy as np
import pytest

from conftest import (
    BENCH_EPSILONS,
    BENCH_N,
    BENCH_REPEATS,
    BENCH_SEED,
    save_series,
)

from repro.experiments.figures import fig4_statistics
from repro.mean.variance import estimate_mean_unit, estimate_variance_unit


@pytest.fixture(scope="module")
def fig4_rows():
    return fig4_statistics(
        epsilons=BENCH_EPSILONS, n=BENCH_N, repeats=BENCH_REPEATS, seed=BENCH_SEED
    )


@pytest.mark.parametrize("mechanism", ("sr", "pm"))
def test_fig4_mean_protocol(benchmark, beta_dataset_bench, mechanism):
    """Time one full mean-estimation round."""
    rng = np.random.default_rng(0)
    est = benchmark(
        lambda: estimate_mean_unit(beta_dataset_bench.values, 1.0, mechanism, rng=rng)
    )
    assert 0.0 <= est <= 1.0


@pytest.mark.parametrize("mechanism", ("sr", "pm"))
def test_fig4_variance_protocol(benchmark, beta_dataset_bench, mechanism):
    """Time the two-phase variance protocol."""
    rng = np.random.default_rng(0)
    mean_est, var_est = benchmark(
        lambda: estimate_variance_unit(beta_dataset_bench.values, 1.0, mechanism, rng=rng)
    )
    assert 0.0 <= var_est <= 0.25  # unit-domain variance bound


def test_fig4_series(benchmark, results_dir, fig4_rows):
    benchmark.pedantic(lambda: fig4_rows, rounds=1, iterations=1)
    save_series(rows=fig4_rows, name="fig4", results_dir=results_dir,
                title="Figure 4: mean / variance / quantile MAE")
    # Shape claim: SW-EMS mean error is within a small factor of the best
    # dedicated mean estimator, despite estimating the whole distribution.
    mean_rows = {}
    for row in fig4_rows:
        if row.metric == "mean":
            mean_rows.setdefault(row.method, []).append(row.mean)
    means = {m: np.mean(v) for m, v in mean_rows.items()}
    best_dedicated = min(means["sr"], means["pm"])
    assert means["sw-ems"] < 5.0 * best_dedicated, means
    # Quantiles: SW-EMS is the best distribution method on smooth data.
    quant = {}
    for row in fig4_rows:
        if row.metric == "quantile" and row.dataset != "income":
            quant.setdefault(row.method, []).append(row.mean)
    qmeans = {m: np.mean(v) for m, v in quant.items()}
    assert qmeans["sw-ems"] == min(qmeans.values()), qmeans
