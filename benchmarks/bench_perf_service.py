"""Performance benchmark for the sharded collection service.

Drives ``repro.service`` the way a deployment would and writes a
machine-readable ``BENCH_service.json`` (uploaded as a CI artifact):

1. **Sharded ingest** — a >=1M-report synthetic feed (``--quick``: 60k)
   streamed through 1-shard and 4-shard collectors, recording sustained
   reports/sec, the tracemalloc peak of the whole ingest tier, and the
   acceptance contract: the 4-shard merged estimate is **bit-identical**
   to the single-shard ingest of the same frames.
2. **Backpressure exactness** — the same feed against a tiny
   (``queue_depth=2``) collector with retry-on-429 semantics; every
   report must land exactly once despite throttling.
3. **HTTP end-to-end** — ``loadgen.run_load`` against a real socket
   service: upload latency p50/p95/p99 and reports/sec, then one
   ``/estimate`` round-trip.

Exit status gates only the deterministic contracts (bit-identity,
exact accepted counts, bounded ingest memory); wall-clock numbers are
recorded for the trajectory but would flake on noisy shared runners.

Run:  PYTHONPATH=src python benchmarks/bench_perf_service.py [--quick]
          [--out benchmarks/BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.engine.backend import effective_cpu_count
from repro.service import (
    ServiceConfig,
    ShardedCollector,
    run_load,
    start_local_service,
)
from repro.service.loadgen import synthesize_frames
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Quantiles,
)

#: The "never materialize the feed" contract: peak tracked ingest memory
#: must stay under a fixed working-set allowance (estimator state, batch
#: synthesis buffers, queue slots) plus half the raw feed volume. Peak
#: scales with queue_depth x batch, not with the feed, so the fraction
#: only gets easier to meet as the feed grows.
MEMORY_FIXED_ALLOWANCE_BYTES = 4_000_000
MEMORY_BUDGET_FRACTION = 0.5


def bench_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=64),
            AttributeSpec("income", low=0.0, high=1e5, d=64),
        ),
        tasks=(
            Distribution("age"),
            Mean("income"),
            Quantiles("income", quantiles=(0.5, 0.9)),
        ),
    )


def _drain_submit(collector: ShardedCollector, frame: bytes, round_id: str) -> int:
    """Submit with retry-on-backpressure; returns throttle count."""
    throttled = 0
    while True:
        try:
            collector.submit_feed(frame, round_id)
            return throttled
        except Exception as exc:
            if "queue" not in str(exc):
                raise
            throttled += 1
            collector.flush()


def bench_sharded_ingest(plan: AnalysisPlan, n_users: int, batch: int) -> dict:
    """1-shard vs 4-shard streaming ingest of one synthetic feed."""
    results: dict = {"n_users": n_users, "batch_size": batch}
    estimates: dict[int, dict] = {}
    for n_shards in (1, 4):
        collector = ShardedCollector(
            ServiceConfig(plan=plan, n_shards=n_shards, queue_depth=8)
        )
        feed_bytes = 0
        throttled = 0
        tracemalloc.start()
        tracemalloc.reset_peak()
        started = time.perf_counter()
        for frame, _n in synthesize_frames(
            plan, "bench", n_users, batch_size=batch, rng=7
        ):
            feed_bytes += len(frame)
            throttled += _drain_submit(collector, frame, "bench")
        collector.flush()
        ingest_s = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        solve_started = time.perf_counter()
        estimate = collector.estimate("bench")
        solve_s = time.perf_counter() - solve_started
        stats = collector.stats()
        collector.close()
        estimates[n_shards] = estimate
        results[f"shards_{n_shards}"] = {
            "ingest_s": round(ingest_s, 4),
            "reports_per_second": round(n_users / ingest_s, 1),
            "solve_s": round(solve_s, 4),
            "feed_bytes": feed_bytes,
            "peak_tracked_bytes": peak,
            "peak_over_feed": round(peak / feed_bytes, 4),
            "throttled_submissions": throttled,
            "per_shard_reports": [
                s["reports_ingested"] for s in stats["shards"]
            ],
        }
    single, multi = estimates[1], estimates[4]
    results["bit_identical_1_vs_4_shards"] = bool(
        single["estimates"] == multi["estimates"]
        and single["n_reports"] == multi["n_reports"]
        and single["report"] == multi["report"]
    )
    results["errors"] = {**single["errors"], **multi["errors"]}
    results["memory_bounded"] = all(
        results[f"shards_{n}"]["peak_tracked_bytes"]
        < MEMORY_FIXED_ALLOWANCE_BYTES
        + MEMORY_BUDGET_FRACTION * results[f"shards_{n}"]["feed_bytes"]
        for n in (1, 4)
    )
    return results


def bench_backpressure(plan: AnalysisPlan, n_users: int, batch: int) -> dict:
    """Tiny queues + retries: throttling must never lose or double-count."""
    collector = ShardedCollector(
        ServiceConfig(plan=plan, n_shards=2, queue_depth=2)
    )
    throttled = 0
    for frame, _n in synthesize_frames(
        plan, "bp", n_users, batch_size=batch, rng=11
    ):
        throttled += _drain_submit(collector, frame, "bp")
    collector.flush()
    ingested = sum(
        s["reports_ingested"] for s in collector.stats()["shards"]
    )
    errors = sum(s["ingest_errors"] for s in collector.stats()["shards"])
    collector.close()
    return {
        "n_users": n_users,
        "queue_depth": 2,
        "throttled_submissions": throttled,
        "reports_ingested": ingested,
        "ingest_errors": errors,
        "exact": bool(ingested == n_users and errors == 0),
    }


def bench_http(plan: AnalysisPlan, n_users: int, batch: int, concurrency: int) -> dict:
    """Real-socket load run + one estimate round-trip."""
    with start_local_service(
        ServiceConfig(plan=plan, n_shards=4, queue_depth=32)
    ) as handle:
        report = run_load(
            handle.host, handle.port, plan, "load", n_users,
            batch_size=batch, concurrency=concurrency, rng=13,
        )
        solve_started = time.perf_counter()
        estimate = handle.collector.estimate("load")
        solve_s = time.perf_counter() - solve_started
        return {
            **report.to_dict(),
            "concurrency": concurrency,
            "estimate_s": round(solve_s, 4),
            "estimate_errors": estimate["errors"],
            "all_accepted": bool(
                report.n_reports_accepted == n_users and report.n_errors == 0
            ),
        }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke (60k reports instead of 1M)",
    )
    parser.add_argument(
        "--out", default="benchmarks/BENCH_service.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    if args.quick:
        ingest_users, ingest_batch = 60_000, 10_000
        bp_users, bp_batch = 10_000, 1_000
        http_users, http_batch = 20_000, 2_000
    else:
        ingest_users, ingest_batch = 1_000_000, 50_000
        bp_users, bp_batch = 100_000, 5_000
        http_users, http_batch = 200_000, 10_000

    plan = bench_plan()
    report: dict = {
        "benchmark": "service",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "effective_cores": effective_cpu_count(),
    }
    report["sharded_ingest"] = bench_sharded_ingest(
        plan, ingest_users, ingest_batch
    )
    report["backpressure"] = bench_backpressure(plan, bp_users, bp_batch)
    report["http"] = bench_http(plan, http_users, http_batch, concurrency=8)

    report["targets"] = {
        "bit_identical_1_vs_4_shards_ok": report["sharded_ingest"][
            "bit_identical_1_vs_4_shards"
        ],
        "memory_fixed_allowance_bytes": MEMORY_FIXED_ALLOWANCE_BYTES,
        "memory_budget_fraction": MEMORY_BUDGET_FRACTION,
        "memory_bounded_ok": report["sharded_ingest"]["memory_bounded"],
        "backpressure_exact_ok": report["backpressure"]["exact"],
        "http_all_accepted_ok": report["http"]["all_accepted"],
        "http_estimate_clean_ok": report["http"]["estimate_errors"] == {},
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    ingest = report["sharded_ingest"]
    for shards in (1, 4):
        row = ingest[f"shards_{shards}"]
        print(
            f"ingest {shards} shard(s): {row['reports_per_second']:,.0f} "
            f"reports/s, peak/feed={row['peak_over_feed']:.2f}, "
            f"solve={row['solve_s']:.3f}s"
        )
    print(
        f"bit-identical 1-vs-4 shards: {ingest['bit_identical_1_vs_4_shards']}"
    )
    bp = report["backpressure"]
    print(
        f"backpressure: {bp['throttled_submissions']} throttles, "
        f"{bp['reports_ingested']:,} ingested, exact={bp['exact']}"
    )
    http = report["http"]
    print(
        f"http: {http['reports_per_second']:,.0f} reports/s, "
        f"p50={http['latency_ms']['p50']:.2f}ms "
        f"p95={http['latency_ms']['p95']:.2f}ms "
        f"p99={http['latency_ms']['p99']:.2f}ms, "
        f"throttled={http['n_throttled']}"
    )
    print(f"wrote {out}")

    targets = report["targets"]
    ok = all(
        targets[key]
        for key in (
            "bit_identical_1_vs_4_shards_ok",
            "memory_bounded_ok",
            "backpressure_exact_ok",
            "http_all_accepted_ok",
            "http_estimate_clean_ok",
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
