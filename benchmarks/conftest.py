"""Shared configuration for the figure-regeneration benchmarks.

Every ``bench_figN_*`` module regenerates the data behind one figure of the
paper at a reduced scale (so the whole suite finishes on a laptop) and
benchmarks the representative operations. Scale knobs:

* ``REPRO_BENCH_N`` — users per dataset (default 20000)
* ``REPRO_BENCH_REPEATS`` — trials per grid cell (default 2)

Paper-scale runs of the same code paths are driven by
``python -m repro.experiments <figure> --paper-n --repeats 100``; see
EXPERIMENTS.md for recorded results.

Rendered series tables are written to ``results/benchmarks/`` so a bench run
leaves the regenerated "figures" on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Reduced-scale defaults, overridable from the environment.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

#: Bench granularity: the paper's beta-dataset granularity; benches use it
#: for all datasets because at reduced n finer grids are statistically
#: meaningless.
BENCH_D = 256

#: Privacy grid for bench sweeps (ends + middle of the paper's grid).
BENCH_EPSILONS = (0.5, 1.0, 2.5)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results" / "benchmarks"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_series(rows, name: str, results_dir: Path, title: str) -> str:
    """Persist a rendered series table + CSV; return the rendered text."""
    from repro.experiments.reporting import format_series_table, rows_to_csv

    text = format_series_table(rows, title=title)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    rows_to_csv(rows, results_dir / f"{name}.csv")
    return text


@pytest.fixture(scope="session")
def beta_dataset_bench():
    from repro.datasets.registry import load_dataset

    return load_dataset("beta", n=BENCH_N, rng=BENCH_SEED)
