"""Performance benchmark for the protocol-v2 serving stack.

Times the two serving claims against their baselines and writes a
machine-readable ``BENCH_protocol.json`` so the perf trajectory is recorded
from run to run (the CI perf-smoke step uploads it as an artifact):

1. **Columnar frames vs JSON lines** — encode + decode of n SW reports
   through the binary frame codec vs the v1 JSON-lines codec
   (target: >= 25x round trip at n = 1e6). The vectorized v1 encoder is
   also compared against the legacy per-dataclass encoder it replaced.
2. **Incremental estimation** — a mid-round ``CollectionServer.estimate()``
   after a small ingest delta (warm-started from the cached posterior) vs a
   cold EMS solve from the uniform prior on identical counts (target:
   measurably cheaper, i.e. >= 2x and fewer EM iterations).

Run:  PYTHONPATH=src python benchmarks/bench_perf_protocol.py [--quick]
          [--out benchmarks/BENCH_protocol.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.square_wave import SquareWave
from repro.engine.backend import effective_cpu_count
from repro.protocol.frames import decode_frame, encode_frame
from repro.protocol.messages import SWReport, decode_batch, encode_batch
from repro.protocol.server import CollectionServer


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _legacy_encode_batch(round_id: str, values: np.ndarray) -> str:
    """The pre-vectorization v1 encoder: one dataclass + dumps per report."""
    return "\n".join(
        SWReport(round_id, float(v)).to_json() for v in values
    )


def bench_wire_codecs(n: int, repeats: int) -> dict:
    """Frame vs JSON-lines encode/decode throughput on n SW reports."""
    reports = SquareWave(1.0).privatize(
        np.random.default_rng(0).random(n), rng=np.random.default_rng(1)
    )

    jsonl_encode_s = _best_of(lambda: encode_batch("r", reports), repeats)
    payload = encode_batch("r", reports)
    jsonl_decode_s = _best_of(
        lambda: decode_batch(payload, expected_round="r"), repeats
    )
    legacy_encode_s = _best_of(
        lambda: _legacy_encode_batch("r", reports), repeats
    )
    assert _legacy_encode_batch("r", reports) == payload  # byte-identical

    frame_encode_s = _best_of(
        lambda: encode_frame("r", reports, "float"), repeats
    )
    frame = encode_frame("r", reports, "float")
    frame_decode_s = _best_of(
        lambda: decode_frame(frame, expected_round="r"), repeats
    )
    decoded = decode_frame(frame, expected_round="r").reports
    np.testing.assert_array_equal(decoded, reports)  # lossless

    jsonl_s = jsonl_encode_s + jsonl_decode_s
    frame_s = frame_encode_s + frame_decode_s
    return {
        "n_reports": n,
        "jsonl_encode_s": jsonl_encode_s,
        "jsonl_decode_s": jsonl_decode_s,
        "frame_encode_s": frame_encode_s,
        "frame_decode_s": frame_decode_s,
        "jsonl_bytes": len(payload),
        "frame_bytes": len(frame),
        "encode_speedup": jsonl_encode_s / frame_encode_s,
        "decode_speedup": jsonl_decode_s / frame_decode_s,
        "roundtrip_speedup": jsonl_s / frame_s,
        "size_ratio": len(payload) / len(frame),
        "v1_encode_vectorization_speedup": legacy_encode_s / jsonl_encode_s,
    }


def bench_incremental_estimate(
    n_initial: int, n_delta: int, d: int, repeats: int
) -> dict:
    """Warm mid-round estimate after a small delta vs a cold solve."""
    gen = np.random.default_rng(2)
    values = gen.beta(5.0, 2.0, n_initial + n_delta)

    server = CollectionServer("r", "sw-ems", 1.0, d)
    server.ingest_reports(server.privatize(values[:n_initial], rng=gen))
    start = time.perf_counter()
    server.estimate()
    cold_first_s = time.perf_counter() - start
    cold_iterations = server.estimator.result_.iterations

    server.ingest_reports(server.privatize(values[n_initial:], rng=gen))
    start = time.perf_counter()
    server.estimate()
    warm_s = time.perf_counter() - start
    warm_iterations = server.estimator.result_.iterations

    # Cold baseline on the *same* final counts (what every mid-round
    # estimate cost before the posterior cache existed).
    cold = CollectionServer("r", "sw-ems", 1.0, d, incremental=False)
    cold._estimator._counts = server._estimator._counts.copy()
    cold_s = _best_of(cold.estimate, repeats)

    # And the free case: nothing new arrived, the solve is skipped.
    skip_s = _best_of(server.estimate, repeats)

    return {
        "d": d,
        "n_initial": n_initial,
        "n_delta": n_delta,
        "cold_first_estimate_s": cold_first_s,
        "cold_iterations": cold_iterations,
        "cold_solve_s": cold_s,
        "warm_delta_estimate_s": warm_s,
        "warm_iterations": warm_iterations,
        "unchanged_estimate_s": skip_s,
        "warm_speedup": cold_s / warm_s,
        "skip_speedup": cold_s / skip_s,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for CI smoke runs",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_protocol.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    timing_reps = 2 if args.quick else 3
    report = {
        "benchmark": "protocol",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cores": effective_cpu_count(),
        "wire_codecs": bench_wire_codecs(
            n=100_000 if args.quick else 1_000_000, repeats=timing_reps
        ),
        "incremental_estimate": bench_incremental_estimate(
            n_initial=50_000 if args.quick else 500_000,
            n_delta=1_000,
            d=256 if args.quick else 1024,
            repeats=timing_reps,
        ),
    }
    wire = report["wire_codecs"]
    inc = report["incremental_estimate"]
    report["targets"] = {
        "frame_roundtrip_speedup_min": 25.0,
        "incremental_speedup_min": 2.0,
        "frame_roundtrip_ok": wire["roundtrip_speedup"] >= 25.0,
        "incremental_ok": inc["warm_speedup"] >= 2.0
        and inc["warm_iterations"] < inc["cold_iterations"],
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"frame encode : {wire['encode_speedup']:>10.1f}x vs JSON lines "
          f"({wire['jsonl_encode_s'] * 1e3:.0f} ms -> "
          f"{wire['frame_encode_s'] * 1e3:.2f} ms at n={wire['n_reports']:,})")
    print(f"frame decode : {wire['decode_speedup']:>10.1f}x "
          f"({wire['jsonl_decode_s'] * 1e3:.0f} ms -> "
          f"{wire['frame_decode_s'] * 1e3:.2f} ms)")
    print(f"frame roundtrip: {wire['roundtrip_speedup']:>8.1f}x, "
          f"{wire['size_ratio']:.1f}x smaller on the wire")
    print(f"v1 encoder   : {wire['v1_encode_vectorization_speedup']:>10.1f}x "
          "vs per-dataclass legacy path (byte-identical)")
    print(f"warm estimate: {inc['warm_speedup']:>10.1f}x vs cold solve "
          f"({inc['cold_iterations']} -> {inc['warm_iterations']} EM iterations "
          f"after +{inc['n_delta']:,} of {inc['n_initial']:,} reports)")
    print(f"no-op estimate: {inc['skip_speedup']:>9.1f}x (solve skipped)")
    print(f"wrote {out}")

    # Exit status gates only the deterministic bits (lossless codecs are
    # asserted inline; iteration counts are hardware-independent). The
    # wall-clock speedup targets are recorded for the trajectory but do not
    # fail the run: timing gates flake on noisy shared CI runners.
    return 0 if inc["warm_iterations"] < inc["cold_iterations"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
