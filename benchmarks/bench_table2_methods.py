"""Table 2: the method x metric applicability matrix.

Renders the matrix from the registry (which *is* the reproduction of the
table) and smoke-runs every supported (method, metric) pair once to prove
each checkmark is backed by working code.
"""

import numpy as np
import pytest

from conftest import BENCH_D, save_series

from repro.experiments.figures import table2_method_metric_matrix
from repro.experiments.methods import DISTRIBUTION_METRICS, METHOD_REGISTRY
from repro.experiments.runner import ResultRow, SweepConfig, run_sweep
from repro.datasets.base import Dataset


@pytest.fixture(scope="module")
def tiny_dataset():
    values = np.random.default_rng(0).beta(5, 2, 5_000)
    return Dataset(name="beta", values=values, default_bins=BENCH_D)


def test_table2_matrix(benchmark, results_dir):
    matrix = benchmark(table2_method_metric_matrix)
    rows = [
        ResultRow(
            dataset="table2",
            method=method,
            epsilon=0.0,
            metric=metric,
            mean=1.0 if ok else 0.0,
            std=0.0,
            repeats=1,
        )
        for method, metric, ok in matrix
    ]
    save_series(rows=rows, name="table2", results_dir=results_dir,
                title="Table 2: 1 = metric evaluated for method, 0 = not")
    assert len(matrix) == len(METHOD_REGISTRY) * len(DISTRIBUTION_METRICS)


def test_table2_every_checkmark_runs(benchmark, tiny_dataset):
    """One sweep covering every supported (method, metric) pair."""

    def run_all():
        config = SweepConfig(
            dataset="beta",
            methods=tuple(METHOD_REGISTRY),
            epsilons=(1.0,),
            metrics=DISTRIBUTION_METRICS,
            repeats=1,
            d=BENCH_D,
            seed=0,
        )
        return run_sweep(config, dataset=tiny_dataset)

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    produced = {(r.method, r.metric) for r in rows}
    expected = {
        (name, metric)
        for name, spec in METHOD_REGISTRY.items()
        for metric in DISTRIBUTION_METRICS
        if spec.supports(metric)
    }
    assert produced == expected
    assert all(np.isfinite(r.mean) for r in rows)
