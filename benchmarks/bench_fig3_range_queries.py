"""Figure 3: random range-query MAE (alpha = 0.1 and 0.4).

Adds the hierarchy baselines (HH, HaarHRR) that are evaluated on range
queries only, per the paper's Table 2.
"""

import numpy as np
import pytest

from conftest import (
    BENCH_D,
    BENCH_EPSILONS,
    BENCH_N,
    BENCH_REPEATS,
    BENCH_SEED,
    save_series,
)

from repro.experiments.figures import fig3_range_queries
from repro.experiments.methods import make_method


@pytest.fixture(scope="module")
def fig3_rows():
    return fig3_range_queries(
        epsilons=BENCH_EPSILONS, n=BENCH_N, repeats=BENCH_REPEATS, seed=BENCH_SEED
    )


@pytest.mark.parametrize("method", ("hh", "haar-hrr"))
def test_fig3_hierarchy_fit(benchmark, beta_dataset_bench, method):
    """Time the hierarchy estimators' collection + reconstruction."""
    estimator = make_method(method, 1.0, BENCH_D)
    rng = np.random.default_rng(0)
    out = benchmark.pedantic(
        lambda: estimator.fit(beta_dataset_bench.values, rng=rng),
        rounds=3,
        iterations=1,
    )
    # Unbiased but possibly-negative estimates; totals stay near 1.
    assert out.sum() == pytest.approx(1.0, abs=0.05)


def test_fig3_series(benchmark, results_dir, fig3_rows):
    benchmark.pedantic(lambda: fig3_rows, rounds=1, iterations=1)
    save_series(rows=fig3_rows, name="fig3", results_dir=results_dir,
                title="Figure 3: range query MAE (alpha=0.1 and alpha=0.4)")
    # Shape claim: SW-EMS beats the raw hierarchy baselines on average
    # (paper: 'SW with EMS outperforms HH and HaarHRR').
    by_method = {}
    for row in fig3_rows:
        by_method.setdefault(row.method, []).append(row.mean)
    means = {m: np.mean(v) for m, v in by_method.items()}
    assert means["sw-ems"] < means["hh"]
    assert means["sw-ems"] < means["haar-hrr"]
