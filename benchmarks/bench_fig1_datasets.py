"""Figure 1: normalized frequencies of the four evaluation datasets.

Benchmarks dataset generation + histogram construction, and saves the
summary statistics that characterize each dataset's shape (mean, variance,
peak mass, spikiness).
"""

import pytest

from conftest import BENCH_N, BENCH_SEED, save_series

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.figures import fig1_dataset_summary


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_fig1_generate_dataset(benchmark, name):
    """Time dataset synthesis + default-granularity histogram."""

    def build():
        ds = load_dataset(name, n=BENCH_N, rng=BENCH_SEED)
        return ds.histogram()

    hist = benchmark(build)
    assert hist.sum() == pytest.approx(1.0)


def test_fig1_series(benchmark, results_dir):
    """Regenerate the Figure 1 dataset summaries and persist them."""
    rows = benchmark.pedantic(
        lambda: fig1_dataset_summary(n=BENCH_N, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    text = save_series(rows, "fig1", results_dir, "Figure 1: dataset summaries")
    assert "income" in text
    # The income substitute must be the spikiest dataset (paper Fig 1c).
    spikiness = {r.dataset: r.mean for r in rows if r.metric == "spikiness"}
    assert max(spikiness, key=spikiness.get) == "income"
