"""Figure 5: comparison of General Wave shapes at eps = 1.

The paper's claim (Theorem 5.3 + Figure 5): the square wave dominates every
trapezoid/triangle shape in Wasserstein distance, at every bandwidth.
"""

import numpy as np
import pytest

from conftest import BENCH_N, BENCH_REPEATS, BENCH_SEED, save_series

from repro.core.general_wave import WAVE_SHAPES, GeneralWave
from repro.core.pipeline import WaveEstimator
from repro.experiments.figures import fig5_wave_shapes

_B_GRID = (0.1, 0.2, 0.3)


@pytest.fixture(scope="module")
def fig5_rows():
    from repro.core.waves import ALL_WAVE_SHAPES

    # More repeats than the other benches: the shape separations are a few
    # tens of percent and need averaging at reduced n. The grid includes the
    # two smooth shapes this library adds beyond the paper's trapezoids.
    return fig5_wave_shapes(
        datasets=("beta",),
        b_values=_B_GRID,
        shapes=ALL_WAVE_SHAPES,
        n=BENCH_N,
        d=256,
        repeats=max(BENCH_REPEATS, 8),
        seed=BENCH_SEED,
    )


@pytest.mark.parametrize("shape", tuple(WAVE_SHAPES))
def test_fig5_shape_fit(benchmark, beta_dataset_bench, shape):
    """Time one EMS reconstruction per wave shape (matrix build + EM)."""
    rng = np.random.default_rng(0)

    def run():
        estimator = WaveEstimator(
            GeneralWave(1.0, b=0.2, ratio=WAVE_SHAPES[shape]), 256
        )
        return estimator.fit(beta_dataset_bench.values, rng=rng)

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    assert out.sum() == pytest.approx(1.0)


def test_fig5_series(benchmark, results_dir, fig5_rows):
    benchmark.pedantic(lambda: fig5_rows, rounds=1, iterations=1)
    save_series(rows=fig5_rows, name="fig5", results_dir=results_dir,
                title="Figure 5: wave shapes, W1 vs bandwidth (eps=1)")
    # Shape claim, robust at reduced n: square must beat the shapes farthest
    # from it (triangle, trapezoid-0.2) on the grid-averaged W1 and stay
    # within a small factor of whichever shape happened to sample best.
    # (The full-scale ordering is recorded in EXPERIMENTS.md.)
    by_shape = {}
    for row in fig5_rows:
        by_shape.setdefault(row.method, []).append(row.mean)
    means = {s: np.mean(v) for s, v in by_shape.items()}
    assert means["square"] < means["triangle"], means
    assert means["square"] < means["trapezoid-0.2"], means
    assert means["square"] <= 1.2 * min(means.values()), means
