"""Fault-tolerance benchmark: journal overhead, recovery time, replay exactness.

Measures what durability costs and proves what it buys, writing a
machine-readable ``BENCH_resilience.json`` (uploaded as a CI artifact):

1. **Journal overhead** — one synthetic feed ingested three ways: no
   journal, journaled (``fsync=checkpoint``), and journaled with
   ``fsync=always``. Records reports/sec and journal bytes per report;
   the acceptance contract is that journaling changes *nothing* about
   the answer: journaled estimates are **bit-identical** to the
   unjournaled run's.
2. **Cold recovery** — restart a fresh collector over the journal dir
   and time checkpoint-restore + tail replay. Gate: the recovered
   estimates are bit-identical to the pre-restart ones, and every
   keyed upload replay-acks (exactly-once across the restart).
3. **Crash storm** — a seeded :class:`~repro.service.faults.FaultPlan`
   crashes ingest at every journal/commit boundary
   (``prob`` per site, deterministic from the seed); the simulated
   client retries through restarts under stable idempotency keys.
   Gate: the survivors' estimates are bit-identical to a fault-free
   run and the accepted-upload count is exact.

Exit status gates only the deterministic contracts (bit-identity,
exactly-once counts); wall-clock numbers are recorded for the
trajectory but would flake on noisy shared runners.

Run:  PYTHONPATH=src python benchmarks/bench_perf_resilience.py [--quick]
          [--out benchmarks/BENCH_resilience.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.engine.backend import effective_cpu_count
from repro.service import (
    Fault,
    FaultPlan,
    InjectedFault,
    ServiceConfig,
    ShardedCollector,
)
from repro.service.loadgen import synthesize_frames
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, Mean

CRASH_SITES = (
    "journal.append.before",
    "journal.append.after",
    "journal.truncate",
    "meta.commit.before",
    "meta.commit.after",
)


def bench_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=64),
            AttributeSpec("income", low=0.0, high=1e5, d=64),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


def keyed_uploads(plan: AnalysisPlan, n_users: int, batch: int) -> list:
    frames = synthesize_frames(plan, "bench", n_users, batch_size=batch, rng=7)
    return [
        (f"bench-{index}", frame)
        for index, (frame, _n) in enumerate(frames)
    ]


def estimates_json(collector: ShardedCollector) -> str:
    collector.flush()
    estimate = collector.estimate("bench")
    return json.dumps(
        {"estimates": estimate["estimates"], "n": estimate["n_reports"]},
        sort_keys=True,
    )


def bench_journal_overhead(
    plan: AnalysisPlan, uploads: list, workdir: Path
) -> dict:
    """Ingest throughput without a journal vs with, at both fsync levels."""
    results: dict = {"n_uploads": len(uploads)}
    fingerprints: dict[str, str] = {}
    for mode, kwargs in (
        ("no_journal", {}),
        ("journal_checkpoint", {"journal_dir": workdir / "wal-ckpt"}),
        (
            "journal_fsync_always",
            {"journal_dir": workdir / "wal-sync", "journal_fsync": "always"},
        ),
    ):
        config = ServiceConfig(plan=plan, n_shards=4, **kwargs)
        with ShardedCollector(config) as collector:
            started = time.perf_counter()
            n_users = 0
            for key, frame in uploads:
                n_users += collector.submit(frame, "bench", key=key).accepted
            collector.flush()
            ingest_s = time.perf_counter() - started
            stats = collector.stats()
            journal_bytes = (
                sum(stats["journal"]["bytes"]) if stats["journal"] else 0
            )
            fingerprints[mode] = estimates_json(collector)
            results[mode] = {
                "ingest_s": round(ingest_s, 4),
                "reports_per_second": round(n_users / ingest_s, 1),
                "journal_bytes": journal_bytes,
                "journal_bytes_per_report": (
                    round(journal_bytes / n_users, 2) if n_users else 0.0
                ),
            }
    base = results["no_journal"]["ingest_s"]
    for mode in ("journal_checkpoint", "journal_fsync_always"):
        results[mode]["overhead_vs_no_journal"] = round(
            results[mode]["ingest_s"] / base, 3
        )
    results["journal_bit_identical"] = bool(
        fingerprints["no_journal"]
        == fingerprints["journal_checkpoint"]
        == fingerprints["journal_fsync_always"]
    )
    return results


def bench_recovery(
    plan: AnalysisPlan, uploads: list, workdir: Path, checkpoint_every: int
) -> dict:
    """Cold-restart recovery time from checkpoint + journal tail."""
    config = ServiceConfig(
        plan=plan,
        n_shards=4,
        journal_dir=workdir / "wal-recovery",
        checkpoint_every=checkpoint_every,
    )
    with ShardedCollector(config) as collector:
        for key, frame in uploads:
            collector.submit(frame, "bench", key=key)
        before = estimates_json(collector)
    started = time.perf_counter()
    recovered = ShardedCollector(config)
    recovery_s = time.perf_counter() - started
    try:
        after = estimates_json(recovered)
        stats = recovered.stats()
        replays = sum(
            recovered.submit(frame, "bench", key=key).replayed
            for key, frame in uploads
        )
        return {
            "recovery_s": round(recovery_s, 4),
            "recovered_records": stats["journal"]["recovered_records"],
            "uploads_recovered": stats["uploads_accepted"],
            "checkpoint_every": checkpoint_every,
            "replay_bit_identical": bool(after == before),
            "all_retries_replay_acked": bool(replays == len(uploads)),
        }
    finally:
        recovered.close()


def bench_crash_storm(
    plan: AnalysisPlan, uploads: list, workdir: Path, seed: int
) -> dict:
    """Seeded crashes at every commit boundary; exactly-once through retries."""
    baseline_config = ServiceConfig(
        plan=plan, n_shards=4, journal_dir=workdir / "wal-baseline"
    )
    with ShardedCollector(baseline_config) as collector:
        for key, frame in uploads:
            collector.submit(frame, "bench", key=key)
        baseline = estimates_json(collector)
    faults = FaultPlan(
        [Fault(site, prob=0.08, times=None) for site in CRASH_SITES],
        seed=seed,
    )
    config = ServiceConfig(
        plan=plan,
        n_shards=4,
        journal_dir=workdir / "wal-storm",
        faults=faults,
    )
    collector = ShardedCollector(config)
    crashes = replays = 0
    recovery_total_s = 0.0
    started = time.perf_counter()
    try:
        for key, frame in uploads:
            while True:
                try:
                    receipt = collector.submit(frame, "bench", key=key)
                except InjectedFault:
                    crashes += 1
                    collector.close()
                    restart = time.perf_counter()
                    collector = ShardedCollector(config)
                    recovery_total_s += time.perf_counter() - restart
                    continue
                replays += receipt.replayed
                break
        elapsed = time.perf_counter() - started
        exact = bool(
            estimates_json(collector) == baseline
            and collector.stats()["uploads_accepted"] == len(uploads)
        )
        return {
            "seed": seed,
            "crashes": crashes,
            "replay_acks": replays,
            "restarts_s_total": round(recovery_total_s, 4),
            "elapsed_s": round(elapsed, 4),
            "crash_exactly_once": exact,
        }
    finally:
        collector.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke (40k reports instead of 400k)",
    )
    parser.add_argument(
        "--out", default="benchmarks/BENCH_resilience.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    if args.quick:
        n_users, batch, checkpoint_every = 40_000, 4_000, 4
    else:
        n_users, batch, checkpoint_every = 400_000, 10_000, 16

    plan = bench_plan()
    uploads = keyed_uploads(plan, n_users, batch)
    report: dict = {
        "benchmark": "resilience",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "effective_cores": effective_cpu_count(),
        "n_users": n_users,
    }
    workdir = Path(tempfile.mkdtemp(prefix="bench-resilience-"))
    try:
        report["journal_overhead"] = bench_journal_overhead(
            plan, uploads, workdir
        )
        report["recovery"] = bench_recovery(
            plan, uploads, workdir, checkpoint_every
        )
        report["crash_storm"] = bench_crash_storm(plan, uploads, workdir, 2026)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report["targets"] = {
        "journal_bit_identical_ok": report["journal_overhead"][
            "journal_bit_identical"
        ],
        "replay_bit_identical_ok": report["recovery"]["replay_bit_identical"],
        "replay_acks_exact_ok": report["recovery"]["all_retries_replay_acked"],
        "crash_exactly_once_ok": report["crash_storm"]["crash_exactly_once"],
        "crash_storm_stormed_ok": report["crash_storm"]["crashes"] > 0,
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    overhead = report["journal_overhead"]
    for mode in ("no_journal", "journal_checkpoint", "journal_fsync_always"):
        row = overhead[mode]
        extra = (
            f", overhead x{row['overhead_vs_no_journal']}"
            if "overhead_vs_no_journal" in row
            else ""
        )
        print(
            f"{mode}: {row['reports_per_second']:,.0f} reports/s, "
            f"{row['journal_bytes_per_report']:.1f} journal B/report{extra}"
        )
    recovery = report["recovery"]
    print(
        f"recovery: {recovery['recovery_s']:.3f}s, "
        f"{recovery['recovered_records']} records replayed, "
        f"bit-identical={recovery['replay_bit_identical']}"
    )
    storm = report["crash_storm"]
    print(
        f"crash storm: {storm['crashes']} crashes, "
        f"{storm['replay_acks']} replay acks, "
        f"exactly-once={storm['crash_exactly_once']}"
    )
    print(f"wrote {out}")

    return 0 if all(report["targets"].values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
