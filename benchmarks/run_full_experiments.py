"""Standalone driver for the EXPERIMENTS.md evaluation runs.

Runs one combined sweep per dataset covering every method and metric (the
union of Figures 2-4), then the Figure 5/6/7 parameter studies, writing
text tables and CSVs to ``results/full/``. Scale is controlled below —
defaults reproduce the shapes of the paper's figures in about an hour on a
laptop; the paper's own protocol (full n, 100 repeats) is a matter of
turning the knobs up.

Run:  python benchmarks/run_full_experiments.py [--n 200000] [--repeats 3]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.figures import (
    fig1_dataset_summary,
    fig5_wave_shapes,
    fig6_bandwidth,
    fig7_granularity,
)
from repro.experiments.methods import DISTRIBUTION_METRICS, METHOD_REGISTRY
from repro.experiments.reporting import format_series_table, rows_to_csv
from repro.experiments.runner import SweepConfig, run_sweep

EPSILONS = (0.5, 1.0, 1.5, 2.0, 2.5)


def save(rows, name: str, out: Path, title: str) -> None:
    text = format_series_table(rows, title=title)
    (out / f"{name}.txt").write_text(text + "\n")
    rows_to_csv(rows, out / f"{name}.csv")
    print(text)
    print(flush=True)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep trials (-1 = all cores); "
        "results are bit-identical to --jobs 1",
    )
    parser.add_argument("--out", default="results/full")
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    started = time.perf_counter()

    save(
        fig1_dataset_summary(n=args.n, seed=args.seed),
        "fig1",
        out,
        "Figure 1: dataset summaries",
    )

    # Combined Figures 2-4 sweep: all methods x all metrics, one pass.
    for dataset_name in DATASET_NAMES:
        t0 = time.perf_counter()
        dataset = load_dataset(dataset_name, n=args.n, rng=args.seed)
        config = SweepConfig(
            dataset=dataset_name,
            methods=tuple(METHOD_REGISTRY),
            epsilons=EPSILONS,
            metrics=DISTRIBUTION_METRICS,
            repeats=args.repeats,
            n=args.n,
            seed=args.seed,
        )
        rows = run_sweep(config, dataset=dataset, n_jobs=args.jobs)
        save(
            rows,
            f"fig234_{dataset_name}",
            out,
            f"Figures 2-4 panels for dataset '{dataset_name}' "
            f"(n={args.n}, repeats={args.repeats})",
        )
        print(f"[{dataset_name}] finished in {time.perf_counter() - t0:.0f}s", flush=True)

    save(
        fig5_wave_shapes(
            datasets=("beta", "taxi"),
            n=args.n,
            d=256,
            repeats=args.repeats,
            seed=args.seed,
        ),
        "fig5",
        out,
        "Figure 5: GW wave shapes, W1 vs b (eps=1)",
    )
    save(
        fig6_bandwidth(
            dataset="beta", n=args.n, d=256, repeats=args.repeats, seed=args.seed
        ),
        "fig6",
        out,
        "Figure 6: W1 vs b with b* marked (beta)",
    )
    save(
        fig7_granularity(
            datasets=DATASET_NAMES, n=args.n, repeats=args.repeats, seed=args.seed
        ),
        "fig7",
        out,
        "Figure 7: W1 across granularities",
    )

    print(f"\nAll experiment runs finished in {(time.perf_counter() - started) / 60:.1f} min")


if __name__ == "__main__":
    main()
