"""Aggregate the checked-in ``BENCH_*.json`` artifacts into one summary.

Every perf benchmark (``bench_perf_*.py``) writes a ``BENCH_<name>.json``
report with a shared shape: a header (``benchmark``, ``quick``,
``python``, ``numpy``, ``machine``, ``effective_cores``), per-section
measurement dicts, and a ``targets`` dict whose ``*_ok`` boolean entries
are the deterministic gates (``None`` means not measured in that mode).

This collector turns the set of artifacts into:

* ``BENCH_SUMMARY.md`` — a markdown table of gate status and headline
  speedup/ratio numbers per benchmark, for humans and the CI job summary;
* ``BENCH_SUMMARY.json`` — the same rollup machine-readable, so a perf
  trajectory can be tracked across commits.

Exit status is 0 iff every measured gate in every artifact holds, so CI
can run it right after the ``--quick`` smoke benchmarks.

Run:  python benchmarks/collect_bench.py [--dir benchmarks]
          [--out-md benchmarks/BENCH_SUMMARY.md]
          [--out-json benchmarks/BENCH_SUMMARY.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

HEADER_KEYS = ("python", "numpy", "machine", "effective_cores")


def _headline_metrics(report: dict, prefix: str = "") -> list[tuple[str, float]]:
    """Numeric speedup/ratio leaves, dotted-path-labelled, in order."""
    out: list[tuple[str, float]] = []
    for key, value in report.items():
        if key == "targets":
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.extend(_headline_metrics(value, prefix=f"{path}."))
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            # token match: "iterations" must not count as a "ratio"
            and {"speedup", "ratio"} & set(key.split("_"))
        ):
            out.append((path, float(value)))
    return out


def summarize_report(path: Path) -> dict:
    report = json.loads(path.read_text())
    targets = report.get("targets", {})
    gates = {
        key: value
        for key, value in targets.items()
        if key.endswith("_ok") and (value is None or isinstance(value, bool))
    }
    failed = sorted(key for key, value in gates.items() if value is False)
    unmeasured = sorted(key for key, value in gates.items() if value is None)
    passed = sum(1 for value in gates.values() if value is True)
    return {
        "file": path.name,
        "benchmark": report.get("benchmark", path.stem),
        "quick": bool(report.get("quick", False)),
        "header": {key: report.get(key) for key in HEADER_KEYS},
        "gates_passed": passed,
        "gates_total": len(gates),
        "gates_failed": failed,
        "gates_unmeasured": unmeasured,
        "headline": [
            {"metric": name, "value": value}
            for name, value in _headline_metrics(report)
        ],
        "ok": not failed,
    }


def _short_label(metric: str) -> str:
    """Leaf key, with its section kept when the leaf alone is ambiguous."""
    parts = metric.split(".")
    if parts[-1] in {"speedup", "ratio"} and len(parts) > 1:
        return ".".join(parts[-2:])
    return parts[-1]


def render_markdown(summaries: list[dict]) -> str:
    lines = [
        "# Benchmark summary",
        "",
        "Aggregated from the `BENCH_*.json` artifacts by "
        "`benchmarks/collect_bench.py`. Gates are the `*_ok` entries each "
        "benchmark's `targets` dict measured; `quick` rows come from the "
        "CI smoke sizes, full rows from the checked-in full runs.",
        "",
        "| benchmark | mode | gates | failed | headline |",
        "|---|---|---|---|---|",
    ]
    for s in summaries:
        mode = "quick" if s["quick"] else "full"
        gates = f"{s['gates_passed']}/{s['gates_total']}"
        if s["gates_unmeasured"]:
            gates += f" ({len(s['gates_unmeasured'])} n/a)"
        failed = ", ".join(s["gates_failed"]) or "—"
        headline = (
            "; ".join(
                f"{_short_label(h['metric'])}="
                f"{h['value']:g}{'x' if 'speedup' in h['metric'] else ''}"
                for h in s["headline"][:3]
            )
            or "—"
        )
        lines.append(
            f"| {s['benchmark']} | {mode} | {gates} | {failed} | {headline} |"
        )
    envs = {tuple(s["header"].items()) for s in summaries}
    if len(envs) == 1 and summaries:
        header = summaries[0]["header"]
        lines += [
            "",
            f"Environment: python {header['python']}, numpy "
            f"{header['numpy']}, {header['machine']}, "
            f"{header['effective_cores']} effective cores.",
        ]
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", default="benchmarks", help="directory holding BENCH_*.json"
    )
    parser.add_argument("--out-md", default="benchmarks/BENCH_SUMMARY.md")
    parser.add_argument("--out-json", default="benchmarks/BENCH_SUMMARY.json")
    args = parser.parse_args()

    bench_dir = Path(args.dir)
    artifacts = sorted(bench_dir.glob("BENCH_*.json"))
    artifacts = [
        p for p in artifacts if p.name not in {"BENCH_SUMMARY.json"}
    ]
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {bench_dir}")
        return 1

    summaries = [summarize_report(path) for path in artifacts]
    rollup = {
        "artifacts": len(summaries),
        "all_ok": all(s["ok"] for s in summaries),
        "gates_passed": sum(s["gates_passed"] for s in summaries),
        "gates_total": sum(s["gates_total"] for s in summaries),
        "benchmarks": summaries,
    }

    out_json = Path(args.out_json)
    out_json.parent.mkdir(parents=True, exist_ok=True)
    out_json.write_text(json.dumps(rollup, indent=2) + "\n")
    out_md = Path(args.out_md)
    out_md.write_text(render_markdown(summaries))

    for s in summaries:
        status = "ok" if s["ok"] else f"FAILED: {', '.join(s['gates_failed'])}"
        print(
            f"{s['benchmark']:>10}  {s['gates_passed']}/{s['gates_total']} "
            f"gates  {status}"
        )
    print(f"wrote {out_md} and {out_json}")
    return 0 if rollup["all_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
