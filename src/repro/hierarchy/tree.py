"""Beta-ary tree layout over a discrete ordered domain (paper Section 4.2).

The domain ``{0..d-1}`` forms the leaves of a complete ``branching``-ary tree
(``d`` must be an exact power of the branching factor). Levels are indexed
*root-first*: level 0 is the root (1 node), level ``k`` has ``branching^k``
nodes, level ``height`` is the leaves. The paper's bottom-up "layer ell"
numbering maps to ``level = height - ell + 1``.

Node estimates for the whole tree are stored as one concatenated vector,
root first — the layout HH-ADMM's ``x`` uses — with per-level slices
available through :meth:`TreeLayout.level_slice`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

__all__ = ["TreeLayout", "range_decomposition"]


@dataclass(frozen=True)
class TreeLayout:
    """Index arithmetic for a complete beta-ary tree over ``d`` leaves."""

    d: int
    branching: int

    def __post_init__(self) -> None:
        if self.branching < 2:
            raise ValueError(f"branching must be >= 2, got {self.branching}")
        if self.d < self.branching:
            raise ValueError(f"d must be >= branching, got d={self.d}")
        size, height = 1, 0
        while size < self.d:
            size *= self.branching
            height += 1
        if size != self.d:
            raise ValueError(
                f"d={self.d} is not a power of branching={self.branching}"
            )
        object.__setattr__(self, "_height", height)

    @property
    def height(self) -> int:
        """Number of edges from root to leaves (= number of non-root levels)."""
        return self._height

    @property
    def level_sizes(self) -> tuple[int, ...]:
        """Node counts per level, root first: ``(1, beta, ..., d)``."""
        return tuple(self.branching**k for k in range(self.height + 1))

    @property
    def total_nodes(self) -> int:
        return sum(self.level_sizes)

    @property
    def reporting_levels(self) -> tuple[int, ...]:
        """Levels users may report (all but the trivially-known root)."""
        return tuple(range(1, self.height + 1))

    def level_offset(self, level: int) -> int:
        """Start of ``level``'s slice in the concatenated node vector."""
        if not 0 <= level <= self.height:
            raise ValueError(f"level must be in [0, {self.height}], got {level}")
        return sum(self.level_sizes[:level])

    def level_slice(self, level: int) -> slice:
        start = self.level_offset(level)
        return slice(start, start + self.level_sizes[level])

    def ancestor(self, leaf: np.ndarray, level: int) -> np.ndarray:
        """Index of each leaf's ancestor node at ``level`` (vectorized)."""
        if not 0 <= level <= self.height:
            raise ValueError(f"level must be in [0, {self.height}], got {level}")
        shift = self.branching ** (self.height - level)
        return np.asarray(leaf, dtype=np.int64) // shift

    def children(self, level: int, index: int) -> list[tuple[int, int]]:
        """Child node coordinates of node ``(level, index)``."""
        if level >= self.height:
            raise ValueError("leaves have no children")
        base = index * self.branching
        return [(level + 1, base + t) for t in range(self.branching)]

    def leaf_span(self, level: int, index: int) -> tuple[int, int]:
        """Half-open leaf range ``[lo, hi)`` covered by node ``(level, index)``."""
        width = self.branching ** (self.height - level)
        return index * width, (index + 1) * width

    def constraint_matrix(self) -> sparse.csr_matrix:
        """Sparse ``A`` with one row per internal node: node minus its children.

        ``A @ x = 0`` states every internal estimate equals the sum of its
        children — the hierarchical consistency constraint of HH and
        HH-ADMM.
        """
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        row = 0
        for level in range(self.height):
            offset = self.level_offset(level)
            child_offset = self.level_offset(level + 1)
            for index in range(self.level_sizes[level]):
                rows.append(row)
                cols.append(offset + index)
                vals.append(1.0)
                base = child_offset + index * self.branching
                for t in range(self.branching):
                    rows.append(row)
                    cols.append(base + t)
                    vals.append(-1.0)
                row += 1
        return sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, self.total_nodes)
        )


def range_decomposition(
    tree: TreeLayout, lo: int, hi: int
) -> list[tuple[int, int]]:
    """Cover the leaf range ``[lo, hi)`` with maximal aligned tree nodes.

    Returns ``(level, index)`` pairs whose leaf spans partition the range;
    at most ``2 * (branching - 1) * height`` nodes are needed. This is how
    hierarchical methods answer range queries with error logarithmic in the
    range length.
    """
    if not 0 <= lo <= hi <= tree.d:
        raise ValueError(f"need 0 <= lo <= hi <= {tree.d}, got [{lo}, {hi})")
    out: list[tuple[int, int]] = []
    position = lo
    while position < hi:
        # Grow the block while it stays aligned and inside the range.
        width, level = 1, tree.height
        while level > 0:
            next_width = width * tree.branching
            if position % next_width == 0 and position + next_width <= hi:
                width, level = next_width, level - 1
            else:
                break
        out.append((level, position // width))
        position += width
    return out
