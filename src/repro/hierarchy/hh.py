"""Hierarchical Histogram under LDP (paper Section 4.2).

Population splitting: each user is assigned a uniform random tree level and
reports their value's ancestor at that level through the lower-variance CFO
for that level's domain size (GRR for small levels, OLH for large ones),
spending the *whole* privacy budget — the right trade-off in the local
setting where noise dominates sampling error.

Aggregation estimates every node's frequency, then applies constrained
inference (weighted least squares subject to parent = sum-of-children and
root = 1) to exploit the redundancy across levels. The consistent leaf level
is the histogram estimate; range queries decompose into O(branching * log d)
nodes.
"""

from __future__ import annotations

import numpy as np

from repro.freq_oracle.adaptive import choose_oracle
from repro.hierarchy.constrained import consistency_projection
from repro.hierarchy.tree import TreeLayout, range_decomposition
from repro.utils.histograms import bucketize
from repro.utils.rng import as_generator
from repro.utils.validation import check_epsilon

__all__ = [
    "HierarchicalHistogram",
    "collect_tree_estimates",
    "collect_tree_estimates_budget_split",
]

#: Weight assigned to nodes estimated from zero users (effectively ignored
#: by the weighted projection, which then infers them from relatives).
_NEGLIGIBLE_WEIGHT = 1e-12


def collect_tree_estimates(
    tree: TreeLayout,
    epsilon: float,
    leaves: np.ndarray,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the population-splitting collection round for a whole tree.

    Parameters
    ----------
    tree:
        Tree layout over the bucketized domain.
    epsilon:
        Per-report privacy budget (whole budget: population is split, the
        budget is not).
    leaves:
        Integer leaf index per user.

    Returns
    -------
    (node_estimates, node_weights):
        Concatenated per-node frequency estimates (root pinned to 1.0) and
        inverse-variance weights suitable for
        :func:`~repro.hierarchy.constrained.consistency_projection`.
    """
    epsilon = check_epsilon(epsilon)
    gen = as_generator(rng)
    leaves = np.asarray(leaves, dtype=np.int64)
    if leaves.ndim != 1 or leaves.size == 0:
        raise ValueError("leaves must be a non-empty 1-d array")
    if leaves.min() < 0 or leaves.max() >= tree.d:
        raise ValueError(f"leaf indices must be in [0, {tree.d - 1}]")

    levels = tree.reporting_levels
    assignment = gen.integers(0, len(levels), size=leaves.size)
    estimates = np.zeros(tree.total_nodes, dtype=np.float64)
    weights = np.full(tree.total_nodes, _NEGLIGIBLE_WEIGHT)
    estimates[0] = 1.0  # the root frequency is known exactly under LDP
    weights[0] = 1.0

    for slot, level in enumerate(levels):
        group = leaves[assignment == slot]
        level_slice = tree.level_slice(level)
        if group.size == 0:
            continue
        oracle = choose_oracle(epsilon, tree.level_sizes[level])
        ancestors = tree.ancestor(group, level)
        estimates[level_slice] = oracle.estimate_from_values(ancestors, rng=gen)
        weights[level_slice] = group.size / oracle.estimate_variance
    return estimates, weights


def collect_tree_estimates_budget_split(
    tree: TreeLayout,
    epsilon: float,
    leaves: np.ndarray,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Budget-splitting alternative: every user reports at *every* level.

    Each report spends ``epsilon / height`` (sequential composition), the
    centralized-DP habit that Section 4.2 argues against under LDP: the
    per-level noise grows like ``e^{eps/h}`` in the denominator, which
    overwhelms the gain of using the whole population per level. Implemented
    for the population-vs-budget ablation bench.
    """
    epsilon = check_epsilon(epsilon)
    gen = as_generator(rng)
    leaves = np.asarray(leaves, dtype=np.int64)
    if leaves.ndim != 1 or leaves.size == 0:
        raise ValueError("leaves must be a non-empty 1-d array")
    if leaves.min() < 0 or leaves.max() >= tree.d:
        raise ValueError(f"leaf indices must be in [0, {tree.d - 1}]")

    levels = tree.reporting_levels
    per_level_epsilon = epsilon / len(levels)
    estimates = np.zeros(tree.total_nodes, dtype=np.float64)
    weights = np.full(tree.total_nodes, _NEGLIGIBLE_WEIGHT)
    estimates[0] = 1.0
    weights[0] = 1.0
    for level in levels:
        oracle = choose_oracle(per_level_epsilon, tree.level_sizes[level])
        ancestors = tree.ancestor(leaves, level)
        level_slice = tree.level_slice(level)
        estimates[level_slice] = oracle.estimate_from_values(ancestors, rng=gen)
        weights[level_slice] = leaves.size / oracle.estimate_variance
    return estimates, weights


class HierarchicalHistogram:
    """HH estimator: CFO reports per level + constrained inference.

    Parameters
    ----------
    epsilon:
        Privacy budget per user.
    d:
        Leaf granularity; must be a power of ``branching``.
    branching:
        Tree fan-out; the paper uses 4 in the LDP setting.
    split:
        ``"population"`` (paper's choice: users divided among levels, whole
        budget per report) or ``"budget"`` (every user reports every level
        with ``epsilon / height`` each; implemented for the ablation).

    Notes
    -----
    Leaf estimates are consistent but may be *negative* — the paper
    evaluates HH only on range queries for exactly this reason. Use
    :class:`~repro.hierarchy.admm.HHADMM` for a valid distribution.
    """

    name = "hh"

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        branching: int = 4,
        split: str = "population",
    ) -> None:
        if split not in ("population", "budget"):
            raise ValueError(f"split must be 'population' or 'budget', got {split!r}")
        self.epsilon = check_epsilon(epsilon)
        self.tree = TreeLayout(d, branching)
        self.d = d
        self.split = split
        self.node_estimates_: np.ndarray | None = None

    def fit(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Collect reports for unit-domain ``values`` and estimate leaves."""
        leaves = bucketize(values, self.d)
        collector = (
            collect_tree_estimates
            if self.split == "population"
            else collect_tree_estimates_budget_split
        )
        raw, weights = collector(self.tree, self.epsilon, leaves, rng=rng)
        self.node_estimates_ = consistency_projection(self.tree, raw, weights)
        return self.node_estimates_[self.tree.level_slice(self.tree.height)]

    def node_estimate(self, level: int, index: int) -> float:
        """Consistent frequency estimate of one tree node."""
        if self.node_estimates_ is None:
            raise RuntimeError("call fit() before querying estimates")
        return float(self.node_estimates_[self.tree.level_offset(level) + index])

    def range_query(self, low: float, high: float) -> float:
        """Estimated mass in ``[low, high)`` of the unit domain.

        Whole buckets are answered through the node decomposition (after
        constrained inference this equals the leaf sum, but stays O(log d));
        partial edge buckets contribute proportionally.
        """
        if self.node_estimates_ is None:
            raise RuntimeError("call fit() before querying estimates")
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high})")
        lo_scaled, hi_scaled = low * self.d, high * self.d
        lo_full = int(np.ceil(lo_scaled))
        hi_full = int(np.floor(hi_scaled))
        leaves = self.node_estimates_[self.tree.level_slice(self.tree.height)]
        total = 0.0
        if lo_full < hi_full:
            for level, index in range_decomposition(self.tree, lo_full, hi_full):
                total += self.node_estimates_[self.tree.level_offset(level) + index]
        elif lo_full > hi_full:
            # The window is inside a single bucket.
            return float(leaves[min(hi_full, self.d - 1)] * (hi_scaled - lo_scaled))
        if lo_full > lo_scaled and lo_full >= 1:
            total += leaves[lo_full - 1] * (lo_full - lo_scaled)
        if hi_scaled > hi_full and hi_full < self.d:
            total += leaves[hi_full] * (hi_scaled - hi_full)
        return float(total)
