"""Hierarchical Histogram under LDP (paper Section 4.2).

Population splitting: each user is assigned a uniform random tree level and
reports their value's ancestor at that level through the lower-variance CFO
for that level's domain size (GRR for small levels, OLH for large ones),
spending the *whole* privacy budget — the right trade-off in the local
setting where noise dominates sampling error.

Aggregation estimates every node's frequency, then applies constrained
inference (weighted least squares subject to parent = sum-of-children and
root = 1) to exploit the redundancy across levels. The consistent leaf level
is the histogram estimate; range queries decompose into O(branching * log d)
nodes.

``HierarchicalHistogram`` implements the :class:`repro.api.Estimator`
lifecycle: ``privatize`` groups users by reporting level into a
:class:`TreeReports` bundle, ``ingest`` folds each level's oracle estimate
into a user-weighted running mean (exact, because oracle estimates are
affine in per-report counts), and ``estimate`` runs constrained inference on
the accumulated tree. Shards therefore ``merge`` exactly and serialize via
``to_state()``/``from_state()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.base import Estimator
from repro.api.errors import EmptyAggregateError
from repro.freq_oracle.adaptive import choose_oracle
from repro.hierarchy.constrained import consistency_projection
from repro.hierarchy.tree import TreeLayout, range_decomposition
from repro.utils.histograms import bucketize
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_epsilon

__all__ = [
    "TreeReports",
    "HierarchicalHistogram",
    "collect_tree_estimates",
    "collect_tree_estimates_budget_split",
]

#: Weight assigned to nodes estimated from zero users (effectively ignored
#: by the weighted projection, which then infers them from relatives).
_NEGLIGIBLE_WEIGHT = 1e-12


@dataclass(frozen=True)
class TreeReports:
    """One batch of hierarchical LDP reports, grouped by level (or height).

    ``reports[level]`` holds the oracle reports of the users assigned to
    that level; ``counts[level]`` how many users produced them. Levels with
    no users are simply absent.
    """

    reports: dict[int, Any] = field(repr=False)
    counts: dict[int, int]

    @property
    def n(self) -> int:
        """Total users behind this batch."""
        return sum(self.counts.values())


def collect_tree_estimates(
    tree: TreeLayout,
    epsilon: float,
    leaves: np.ndarray,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the population-splitting collection round for a whole tree.

    Parameters
    ----------
    tree:
        Tree layout over the bucketized domain.
    epsilon:
        Per-report privacy budget (whole budget: population is split, the
        budget is not).
    leaves:
        Integer leaf index per user.

    Returns
    -------
    (node_estimates, node_weights):
        Concatenated per-node frequency estimates (root pinned to 1.0) and
        inverse-variance weights suitable for
        :func:`~repro.hierarchy.constrained.consistency_projection`.
    """
    epsilon = check_epsilon(epsilon)
    gen = as_generator(rng)
    leaves = np.asarray(leaves, dtype=np.int64)
    if leaves.ndim != 1 or leaves.size == 0:
        raise ValueError("leaves must be a non-empty 1-d array")
    if leaves.min() < 0 or leaves.max() >= tree.d:
        raise ValueError(f"leaf indices must be in [0, {tree.d - 1}]")

    levels = tree.reporting_levels
    assignment = gen.integers(0, len(levels), size=leaves.size)
    estimates = np.zeros(tree.total_nodes, dtype=np.float64)
    weights = np.full(tree.total_nodes, _NEGLIGIBLE_WEIGHT)
    estimates[0] = 1.0  # the root frequency is known exactly under LDP
    weights[0] = 1.0

    for slot, level in enumerate(levels):
        group = leaves[assignment == slot]
        level_slice = tree.level_slice(level)
        if group.size == 0:
            continue
        oracle = choose_oracle(epsilon, tree.level_sizes[level])
        ancestors = tree.ancestor(group, level)
        estimates[level_slice] = oracle.estimate_from_values(ancestors, rng=gen)
        weights[level_slice] = group.size / oracle.estimate_variance
    return estimates, weights


def collect_tree_estimates_budget_split(
    tree: TreeLayout,
    epsilon: float,
    leaves: np.ndarray,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Budget-splitting alternative: every user reports at *every* level.

    Each report spends ``epsilon / height`` (sequential composition), the
    centralized-DP habit that Section 4.2 argues against under LDP: the
    per-level noise grows like ``e^{eps/h}`` in the denominator, which
    overwhelms the gain of using the whole population per level. Implemented
    for the population-vs-budget ablation bench.
    """
    epsilon = check_epsilon(epsilon)
    gen = as_generator(rng)
    leaves = np.asarray(leaves, dtype=np.int64)
    if leaves.ndim != 1 or leaves.size == 0:
        raise ValueError("leaves must be a non-empty 1-d array")
    if leaves.min() < 0 or leaves.max() >= tree.d:
        raise ValueError(f"leaf indices must be in [0, {tree.d - 1}]")

    levels = tree.reporting_levels
    per_level_epsilon = epsilon / len(levels)
    estimates = np.zeros(tree.total_nodes, dtype=np.float64)
    weights = np.full(tree.total_nodes, _NEGLIGIBLE_WEIGHT)
    estimates[0] = 1.0
    weights[0] = 1.0
    for level in levels:
        oracle = choose_oracle(per_level_epsilon, tree.level_sizes[level])
        ancestors = tree.ancestor(leaves, level)
        level_slice = tree.level_slice(level)
        estimates[level_slice] = oracle.estimate_from_values(ancestors, rng=gen)
        weights[level_slice] = leaves.size / oracle.estimate_variance
    return estimates, weights


class HierarchicalHistogram(Estimator):
    """HH estimator: CFO reports per level + constrained inference.

    Parameters
    ----------
    epsilon:
        Privacy budget per user.
    d:
        Leaf granularity; must be a power of ``branching``.
    branching:
        Tree fan-out; the paper uses 4 in the LDP setting.
    split:
        ``"population"`` (paper's choice: users divided among levels, whole
        budget per report) or ``"budget"`` (every user reports every level
        with ``epsilon / height`` each; implemented for the ablation).

    Notes
    -----
    Leaf estimates are consistent but may be *negative* — the paper
    evaluates HH only on range queries for exactly this reason. Use
    :class:`~repro.hierarchy.admm.HHADMM` for a valid distribution.
    """

    name = "hh"
    kind = "leaf-signed"
    wire_codec = "tree"

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        branching: int = 4,
        split: str = "population",
    ) -> None:
        if split not in ("population", "budget"):
            raise ValueError(f"split must be 'population' or 'budget', got {split!r}")
        self.epsilon = check_epsilon(epsilon)
        self.tree = TreeLayout(d, branching)
        self.d = d
        self.branching = branching
        self.split = split
        self._oracles: dict[int, Any] = {}
        self.node_estimates_: np.ndarray | None = None
        self.reset()

    def _oracle(self, level: int):
        """The (cached) CFO both sides use for one reporting level."""
        if level not in self._oracles:
            epsilon = self.epsilon
            if self.split == "budget":
                epsilon = self.epsilon / len(self.tree.reporting_levels)
            self._oracles[level] = choose_oracle(
                epsilon, self.tree.level_sizes[level]
            )
        return self._oracles[level]

    # -- lifecycle ---------------------------------------------------------
    def privatize(self, values: np.ndarray, rng: RngLike = None) -> TreeReports:
        """Client-side: assign users to levels and CFO-randomize ancestors."""
        gen = as_generator(rng)
        leaves = bucketize(values, self.d)
        levels = self.tree.reporting_levels
        reports: dict[int, Any] = {}
        counts: dict[int, int] = {}
        if self.split == "population":
            assignment = gen.integers(0, len(levels), size=leaves.size)
            for slot, level in enumerate(levels):
                group = leaves[assignment == slot]
                if group.size == 0:
                    continue
                ancestors = self.tree.ancestor(group, level)
                reports[level] = self._oracle(level).privatize(ancestors, rng=gen)
                counts[level] = int(group.size)
        else:
            for level in levels:
                ancestors = self.tree.ancestor(leaves, level)
                reports[level] = self._oracle(level).privatize(ancestors, rng=gen)
                counts[level] = int(leaves.size)
        return TreeReports(reports=reports, counts=counts)

    def ingest(self, tree_reports: TreeReports) -> None:
        """Fold one batch into the per-level weighted running estimates."""
        for level, level_reports in tree_reports.reports.items():
            oracle = self._oracle(level)
            batch = oracle.aggregate_batch(level_reports)
            n = tree_reports.counts[level]
            self._node_sum[self.tree.level_slice(level)] += n * batch
            self._level_n[level] += n
        # Any cached inference is stale now; queries must re-estimate.
        self.node_estimates_ = None

    def _collected(self) -> tuple[np.ndarray, np.ndarray]:
        """(estimates, weights) node vectors from the streaming state."""
        estimates = np.zeros(self.tree.total_nodes, dtype=np.float64)
        weights = np.full(self.tree.total_nodes, _NEGLIGIBLE_WEIGHT)
        estimates[0] = 1.0  # the root frequency is known exactly under LDP
        weights[0] = 1.0
        for level in self.tree.reporting_levels:
            n = int(self._level_n[level])
            if n == 0:
                continue
            level_slice = self.tree.level_slice(level)
            estimates[level_slice] = self._node_sum[level_slice] / n
            weights[level_slice] = n / self._oracle(level).estimate_variance
        return estimates, weights

    def estimate(self) -> np.ndarray:
        """Constrained-inference leaf estimates from all ingested batches."""
        if int(self._level_n.sum()) == 0:
            raise EmptyAggregateError("no reports ingested yet")
        raw, weights = self._collected()
        self.node_estimates_ = consistency_projection(self.tree, raw, weights)
        return self.node_estimates_[self.tree.level_slice(self.tree.height)]

    def reset(self) -> None:
        self._node_sum = np.zeros(self.tree.total_nodes, dtype=np.float64)
        self._level_n = np.zeros(self.tree.height + 1, dtype=np.int64)
        self.node_estimates_ = None

    @property
    def n_reports(self) -> int:
        """Reports ingested into the current aggregation state."""
        return int(self._level_n.sum())

    # -- queries -----------------------------------------------------------
    def node_estimate(self, level: int, index: int) -> float:
        """Consistent frequency estimate of one tree node."""
        if self.node_estimates_ is None:
            raise RuntimeError("call fit() before querying estimates")
        return float(self.node_estimates_[self.tree.level_offset(level) + index])

    def range_query(self, low: float, high: float) -> float:
        """Estimated mass in ``[low, high)`` of the unit domain.

        Whole buckets are answered through the node decomposition (after
        constrained inference this equals the leaf sum, but stays O(log d));
        partial edge buckets contribute proportionally.
        """
        if self.node_estimates_ is None:
            raise RuntimeError("call fit() before querying estimates")
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high})")
        lo_scaled, hi_scaled = low * self.d, high * self.d
        lo_full = int(np.ceil(lo_scaled))
        hi_full = int(np.floor(hi_scaled))
        leaves = self.node_estimates_[self.tree.level_slice(self.tree.height)]
        total = 0.0
        if lo_full < hi_full:
            for level, index in range_decomposition(self.tree, lo_full, hi_full):
                total += self.node_estimates_[self.tree.level_offset(level) + index]
        elif lo_full > hi_full:
            # The window is inside a single bucket.
            return float(leaves[min(hi_full, self.d - 1)] * (hi_scaled - lo_scaled))
        if lo_full > lo_scaled and lo_full >= 1:
            total += leaves[lo_full - 1] * (lo_full - lo_scaled)
        if hi_scaled > hi_full and hi_full < self.d:
            total += leaves[hi_full] * (hi_scaled - hi_full)
        return float(total)

    def range_queries(self, windows) -> np.ndarray:
        """Evaluate many ``(low, high)`` windows through the tree decomposition.

        Batch form of :meth:`range_query` for analysts querying a fitted
        tree directly; each window costs only O(branching * log d) node
        lookups, versus the O(d) leaf scan of evaluating against the full
        leaf histogram.
        """
        return np.asarray(
            [self.range_query(float(low), float(high)) for low, high in windows],
            dtype=np.float64,
        )

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "HierarchicalHistogram") -> None:
        self._node_sum += other._node_sum
        self._level_n += other._level_n
        self.node_estimates_ = None

    def _params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "branching": self.branching,
            "split": self.split,
        }

    def _state(self) -> dict:
        return {
            "node_sum": self._node_sum.tolist(),
            "level_n": self._level_n.tolist(),
        }

    def _load_state(self, state: dict) -> None:
        node_sum = np.asarray(state["node_sum"], dtype=np.float64)
        level_n = np.asarray(state["level_n"], dtype=np.int64)
        if node_sum.shape != (self.tree.total_nodes,):
            raise ValueError(
                f"state 'node_sum' must have shape ({self.tree.total_nodes},), "
                f"got {node_sum.shape}"
            )
        if level_n.shape != (self.tree.height + 1,):
            raise ValueError(
                f"state 'level_n' must have shape ({self.tree.height + 1},), "
                f"got {level_n.shape}"
            )
        self._node_sum = node_sum
        self._level_n = level_n
        self.node_estimates_ = None
