"""Hierarchy-based estimators: HH, HaarHRR, and HH-ADMM (paper §4.2-4.3)."""

from repro.hierarchy.admm import ADMMDiagnostics, HHADMM, admm_postprocess
from repro.hierarchy.constrained import NullspaceProjector, consistency_projection
from repro.hierarchy.haar import HaarHRR
from repro.hierarchy.hh import (
    HierarchicalHistogram,
    TreeReports,
    collect_tree_estimates,
    collect_tree_estimates_budget_split,
)
from repro.hierarchy.tree import TreeLayout, range_decomposition

__all__ = [
    "TreeLayout",
    "range_decomposition",
    "NullspaceProjector",
    "consistency_projection",
    "HierarchicalHistogram",
    "TreeReports",
    "collect_tree_estimates",
    "collect_tree_estimates_budget_split",
    "HaarHRR",
    "HHADMM",
    "ADMMDiagnostics",
    "admm_postprocess",
]
