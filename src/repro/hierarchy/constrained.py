"""Consistency projections for hierarchical estimates (paper Section 4.2).

Two related operations on the concatenated node vector of a
:class:`~repro.hierarchy.tree.TreeLayout`:

* :func:`consistency_projection` — the weighted least-squares estimate
  subject to ``A x = 0`` (and optionally ``x_root = 1``). With per-node
  inverse-variance weights this is the constrained-inference step of Hay et
  al. [14] that HH applies after aggregation.
* :class:`NullspaceProjector` — the plain Euclidean projection onto
  ``{x | A x = 0}``, the ``Pi_C`` operator inside HH-ADMM's iterations.
  The small dense Cholesky factor of ``A Aᵀ`` is cached because ADMM calls
  the projection every iteration.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, sparse

from repro.hierarchy.tree import TreeLayout

__all__ = ["NullspaceProjector", "consistency_projection"]


class NullspaceProjector:
    """Euclidean projector onto the tree-consistency subspace ``{A x = 0}``.

    ``project(v) = v - Aᵀ (A Aᵀ)^{-1} A v``. ``A Aᵀ`` has one row/column per
    internal node (341 for d=1024, beta=4), so a dense Cholesky factorization
    is cheap and reused across calls.
    """

    def __init__(self, tree: TreeLayout) -> None:
        self.tree = tree
        self._a = tree.constraint_matrix()
        gram = (self._a @ self._a.T).toarray()
        self._factor = linalg.cho_factor(gram)

    def project(self, v: np.ndarray) -> np.ndarray:
        arr = np.asarray(v, dtype=np.float64)
        if arr.shape != (self.tree.total_nodes,):
            raise ValueError(
                f"v must have shape ({self.tree.total_nodes},), got {arr.shape}"
            )
        residual = self._a @ arr
        correction = self._a.T @ linalg.cho_solve(self._factor, residual)
        return arr - correction


def consistency_projection(
    tree: TreeLayout,
    node_estimates: np.ndarray,
    weights: np.ndarray | None = None,
    fix_root: bool = True,
) -> np.ndarray:
    """Weighted least-squares consistent estimate of the whole tree.

    Solves ``min (x - v)ᵀ W (x - v)`` subject to ``A x = 0`` and, when
    ``fix_root``, ``x_root = 1``. ``W`` is diagonal with ``weights``
    (inverse estimate variances; uniform when omitted). The KKT system is
    solved through the dense ``B W^{-1} Bᵀ`` Gram matrix, which is small
    (#internal nodes + 1).

    This generalizes Hay et al.'s two-pass algorithm to level-dependent
    variances, which matters under LDP population splitting where each level
    is estimated from a different user group with a different domain size.
    """
    v = np.asarray(node_estimates, dtype=np.float64)
    if v.shape != (tree.total_nodes,):
        raise ValueError(
            f"node_estimates must have shape ({tree.total_nodes},), got {v.shape}"
        )
    if weights is None:
        w_inv = np.ones_like(v)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != v.shape:
            raise ValueError("weights must match node_estimates in shape")
        if w.min() <= 0:
            raise ValueError("weights must be strictly positive")
        w_inv = 1.0 / w

    a = tree.constraint_matrix()
    if fix_root:
        root_row = sparse.csr_matrix(
            (np.ones(1), (np.zeros(1, dtype=int), np.zeros(1, dtype=int))),
            shape=(1, tree.total_nodes),
        )
        b = sparse.vstack([a, root_row]).tocsr()
        target = np.zeros(b.shape[0])
        target[-1] = 1.0
    else:
        b = a
        target = np.zeros(b.shape[0])

    gram = (b @ sparse.diags(w_inv) @ b.T).toarray()
    rhs = b @ v - target
    multipliers = linalg.solve(gram, rhs, assume_a="pos")
    return v - w_inv * (b.T @ multipliers)
