"""HaarHRR: Discrete Haar Transform estimation under LDP (paper Section 4.2).

The domain forms a binary tree. Each internal node ``a`` at height ``t``
carries the detail ``delta_a = (mass of left subtree) - (mass of right
subtree)``. A user's value touches exactly one detail per height — the
ancestor at that height, with sign +1 (left subtree) or -1 (right) — so a
user assigned to height ``t`` reports the pair (ancestor index, sign)
through :class:`~repro.freq_oracle.hrr.HRR`, which estimates the *signed*
frequency vector of that layer, i.e. exactly the layer's detail
coefficients.

Leaf synthesis is the standard inverse Haar cascade starting from the known
total mass of 1:

    child_left  = (parent + delta) / 2
    child_right = (parent - delta) / 2

Like HH, the estimates are unbiased but can be negative; the paper evaluates
HaarHRR on range queries only.
"""

from __future__ import annotations

import numpy as np

from repro.freq_oracle.hrr import HRR
from repro.utils.histograms import bucketize
from repro.utils.rng import as_generator
from repro.utils.validation import check_epsilon

__all__ = ["HaarHRR"]


class HaarHRR:
    """Haar + Hadamard Randomized Response distribution estimator.

    Parameters
    ----------
    epsilon:
        Privacy budget per report.
    d:
        Leaf granularity; must be a power of two.
    """

    name = "haar-hrr"

    def __init__(self, epsilon: float, d: int = 1024) -> None:
        self.epsilon = check_epsilon(epsilon)
        if d < 2 or d & (d - 1):
            raise ValueError(f"d must be a power of two >= 2, got {d}")
        self.d = d
        self.height = d.bit_length() - 1
        self.details_: list[np.ndarray] | None = None
        self.leaf_estimates_: np.ndarray | None = None

    def fit(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Collect HRR reports for unit-domain ``values``; estimate leaves."""
        gen = as_generator(rng)
        leaves = bucketize(values, self.d)
        heights = gen.integers(1, self.height + 1, size=leaves.size)

        # details[t - 1] holds the estimated detail vector of height t
        # (length d / 2^t).
        details: list[np.ndarray] = []
        for t in range(1, self.height + 1):
            group = leaves[heights == t]
            width = self.d >> t
            if group.size == 0:
                details.append(np.zeros(width))
                continue
            indices = group >> t
            # Left subtree of the height-t ancestor <=> bit (t-1) unset.
            signs = 1 - 2 * ((group >> (t - 1)) & 1)
            oracle = HRR(self.epsilon, width)
            reports = oracle.privatize(indices, rng=gen, signs=signs)
            details.append(oracle.aggregate(reports))
        self.details_ = details

        # Inverse Haar cascade from the root mass (exactly 1 under LDP).
        current = np.array([1.0])
        for t in range(self.height, 0, -1):
            delta = details[t - 1]
            expanded = np.empty(current.size * 2)
            expanded[0::2] = (current + delta) / 2.0
            expanded[1::2] = (current - delta) / 2.0
            current = expanded
        self.leaf_estimates_ = current
        return current

    def range_query(self, low: float, high: float) -> float:
        """Estimated mass in ``[low, high)`` of the unit domain."""
        if self.leaf_estimates_ is None:
            raise RuntimeError("call fit() before querying estimates")
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high})")
        from repro.metrics.queries import range_query

        return range_query(self.leaf_estimates_, low, high - low)
