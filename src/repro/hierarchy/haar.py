"""HaarHRR: Discrete Haar Transform estimation under LDP (paper Section 4.2).

The domain forms a binary tree. Each internal node ``a`` at height ``t``
carries the detail ``delta_a = (mass of left subtree) - (mass of right
subtree)``. A user's value touches exactly one detail per height — the
ancestor at that height, with sign +1 (left subtree) or -1 (right) — so a
user assigned to height ``t`` reports the pair (ancestor index, sign)
through :class:`~repro.freq_oracle.hrr.HRR`, which estimates the *signed*
frequency vector of that layer, i.e. exactly the layer's detail
coefficients.

Leaf synthesis is the standard inverse Haar cascade starting from the known
total mass of 1:

    child_left  = (parent + delta) / 2
    child_right = (parent - delta) / 2

Like HH, the estimates are unbiased but can be negative; the paper evaluates
HaarHRR on range queries only.

``HaarHRR`` implements the :class:`repro.api.Estimator` lifecycle with the
same linear-state trick as HH: per-height detail estimates are accumulated
as user-weighted running means, so shards ``ingest``/``merge`` exactly and
the state serializes via ``to_state()``/``from_state()``.
"""

from __future__ import annotations

import numpy as np

from repro.api.base import Estimator
from repro.api.errors import EmptyAggregateError
from repro.freq_oracle.hrr import HRR
from repro.hierarchy.hh import TreeReports
from repro.utils.histograms import bucketize
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_epsilon

__all__ = ["HaarHRR"]


class HaarHRR(Estimator):
    """Haar + Hadamard Randomized Response distribution estimator.

    Parameters
    ----------
    epsilon:
        Privacy budget per report.
    d:
        Leaf granularity; must be a power of two.
    """

    name = "haar-hrr"
    kind = "leaf-signed"
    wire_codec = "tree"

    def __init__(self, epsilon: float, d: int = 1024) -> None:
        self.epsilon = check_epsilon(epsilon)
        if d < 2 or d & (d - 1):
            raise ValueError(f"d must be a power of two >= 2, got {d}")
        self.d = d
        self.height = d.bit_length() - 1
        self._oracles: dict[int, HRR] = {}
        self.details_: list[np.ndarray] | None = None
        self.leaf_estimates_: np.ndarray | None = None
        self.reset()

    def _oracle(self, t: int) -> HRR:
        """The (cached) HRR oracle for the height-``t`` detail layer."""
        if t not in self._oracles:
            self._oracles[t] = HRR(self.epsilon, self.d >> t)
        return self._oracles[t]

    # -- lifecycle ---------------------------------------------------------
    def privatize(self, values: np.ndarray, rng: RngLike = None) -> TreeReports:
        """Client-side: assign users to heights and HRR-randomize details."""
        gen = as_generator(rng)
        leaves = bucketize(values, self.d)
        heights = gen.integers(1, self.height + 1, size=leaves.size)
        reports: dict[int, object] = {}
        counts: dict[int, int] = {}
        for t in range(1, self.height + 1):
            group = leaves[heights == t]
            if group.size == 0:
                continue
            indices = group >> t
            # Left subtree of the height-t ancestor <=> bit (t-1) unset.
            signs = 1 - 2 * ((group >> (t - 1)) & 1)
            reports[t] = self._oracle(t).privatize(indices, rng=gen, signs=signs)
            counts[t] = int(group.size)
        return TreeReports(reports=reports, counts=counts)

    def ingest(self, tree_reports: TreeReports) -> None:
        """Fold one batch into the per-height weighted detail estimates."""
        for t, height_reports in tree_reports.reports.items():
            batch = self._oracle(t).aggregate_batch(height_reports)
            n = tree_reports.counts[t]
            self._detail_sum[t - 1] += n * batch
            self._height_n[t - 1] += n
        # Any cached synthesis is stale now; queries must re-estimate.
        self.details_ = None
        self.leaf_estimates_ = None

    def estimate(self) -> np.ndarray:
        """Leaf estimates via the inverse Haar cascade over ingested state."""
        if int(self._height_n.sum()) == 0:
            raise EmptyAggregateError("no reports ingested yet")
        # details[t - 1] holds the estimated detail vector of height t
        # (length d / 2^t); heights nobody reported stay at zero detail.
        details: list[np.ndarray] = []
        for t in range(1, self.height + 1):
            n = int(self._height_n[t - 1])
            if n == 0:
                details.append(np.zeros(self.d >> t))
            else:
                details.append(self._detail_sum[t - 1] / n)
        self.details_ = details

        # Inverse Haar cascade from the root mass (exactly 1 under LDP).
        current = np.array([1.0])
        for t in range(self.height, 0, -1):
            delta = details[t - 1]
            expanded = np.empty(current.size * 2)
            expanded[0::2] = (current + delta) / 2.0
            expanded[1::2] = (current - delta) / 2.0
            current = expanded
        self.leaf_estimates_ = current
        return current

    def reset(self) -> None:
        self._detail_sum = [
            np.zeros(self.d >> t, dtype=np.float64)
            for t in range(1, self.height + 1)
        ]
        self._height_n = np.zeros(self.height, dtype=np.int64)
        self.details_ = None
        self.leaf_estimates_ = None

    @property
    def n_reports(self) -> int:
        """Reports ingested into the current aggregation state."""
        return int(self._height_n.sum())

    # -- queries -----------------------------------------------------------
    def range_query(self, low: float, high: float) -> float:
        """Estimated mass in ``[low, high)`` of the unit domain."""
        if self.leaf_estimates_ is None:
            raise RuntimeError("call fit() before querying estimates")
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high})")
        from repro.metrics.queries import range_query

        return range_query(self.leaf_estimates_, low, high - low)

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "HaarHRR") -> None:
        for i in range(self.height):
            self._detail_sum[i] += other._detail_sum[i]
        self._height_n += other._height_n
        self.details_ = None
        self.leaf_estimates_ = None

    def _params(self) -> dict:
        return {"epsilon": self.epsilon, "d": self.d}

    def _state(self) -> dict:
        return {
            "detail_sum": [arr.tolist() for arr in self._detail_sum],
            "height_n": self._height_n.tolist(),
        }

    def _load_state(self, state: dict) -> None:
        detail_sum = [
            np.asarray(arr, dtype=np.float64) for arr in state["detail_sum"]
        ]
        height_n = np.asarray(state["height_n"], dtype=np.int64)
        if len(detail_sum) != self.height or height_n.shape != (self.height,):
            raise ValueError(f"state does not match a height-{self.height} tree")
        for t, arr in enumerate(detail_sum, start=1):
            if arr.shape != (self.d >> t,):
                raise ValueError(
                    f"state 'detail_sum[{t - 1}]' must have shape "
                    f"({self.d >> t},), got {arr.shape}"
                )
        self._detail_sum = detail_sum
        self._height_n = height_n
        self.details_ = None
        self.leaf_estimates_ = None
