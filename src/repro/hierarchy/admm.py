"""HH-ADMM: ADMM post-processing of hierarchical estimates (paper §4.3, App. B).

Solves the constrained least-squares problem

    minimize   1/2 ||x - x~||_2^2
    subject to A x = 0          (parent = sum of children)
               x >= 0,          (non-negativity)
               per-level normalization (each level sums to 1)

where ``x~`` is the concatenated vector of raw per-level LDP estimates. The
splitting follows Algorithm 2 with penalty ``rho = 1``: an L2 shrinkage step
for ``y``, the tree-consistency projection ``Pi_C`` for ``z``, per-level
Norm-Sub ``Pi_N+`` for ``w``, an averaging ``x``-update, and dual ascent.

Unlike plain HH, the result is a valid probability distribution, so the
paper evaluates HH-ADMM on every metric. Its strength is *spiky* data: where
EMS smooths point masses away, the hierarchy preserves them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.errors import EmptyAggregateError
from repro.engine.cache import cached_object
from repro.hierarchy.constrained import NullspaceProjector
from repro.hierarchy.hh import HierarchicalHistogram
from repro.hierarchy.tree import TreeLayout
from repro.postprocess.norm_sub import norm_sub

__all__ = ["HHADMM", "ADMMDiagnostics", "admm_postprocess"]


@dataclass(frozen=True)
class ADMMDiagnostics:
    """Convergence record of one ADMM run."""

    iterations: int
    converged: bool
    final_residual: float


def _project_levels(tree: TreeLayout, v: np.ndarray) -> np.ndarray:
    """``Pi_N+``: per-level Norm-Sub onto {non-negative, level sums to 1}."""
    out = np.empty_like(v)
    for level in range(tree.height + 1):
        sl = tree.level_slice(level)
        out[sl] = norm_sub(v[sl], total=1.0)
    return out


def admm_postprocess(
    tree: TreeLayout,
    raw_estimates: np.ndarray,
    *,
    rho: float = 1.0,
    max_iter: int = 200,
    tol: float = 1e-6,
    projector: NullspaceProjector | None = None,
) -> tuple[np.ndarray, ADMMDiagnostics]:
    """Run Algorithm 2 on a raw tree-estimate vector.

    Returns the post-processed node vector and convergence diagnostics.
    ``rho`` only rescales the dual variables for this splitting, so the
    paper's choice of 1 is kept as the default.
    """
    x_tilde = np.asarray(raw_estimates, dtype=np.float64)
    if x_tilde.shape != (tree.total_nodes,):
        raise ValueError(
            f"raw_estimates must have shape ({tree.total_nodes},), got {x_tilde.shape}"
        )
    if rho <= 0:
        raise ValueError(f"rho must be > 0, got {rho}")
    if projector is None:
        projector = NullspaceProjector(tree)

    x = x_tilde.copy()
    y = np.zeros_like(x)
    z = np.zeros_like(x)
    w = np.zeros_like(x)
    mu = np.zeros_like(x)
    nu = np.zeros_like(x)
    eta = np.zeros_like(x)

    converged = False
    residual = np.inf
    iteration = 0
    for iteration in range(1, max_iter + 1):
        y = (rho / (1.0 + rho)) * (x - x_tilde + mu)
        z = projector.project(x + nu)
        w = _project_levels(tree, x + eta)
        x = ((y + x_tilde - mu) + (z - nu) + (w - eta)) / 3.0
        mu = mu + x - x_tilde - y
        nu = nu + x - z
        eta = eta + x - w
        residual = max(
            float(np.abs(x - z).max()),
            float(np.abs(x - w).max()),
        )
        if residual < tol:
            converged = True
            break
    return x, ADMMDiagnostics(
        iterations=iteration, converged=converged, final_residual=residual
    )


class HHADMM(HierarchicalHistogram):
    """Hierarchical Histogram with ADMM post-processing.

    Same collection round as :class:`~repro.hierarchy.hh.HierarchicalHistogram`
    (population splitting + adaptive CFO per level) — including its streaming
    ``ingest``/``merge`` state — but post-processing enforces consistency,
    non-negativity, and normalization jointly, so :meth:`estimate` returns a
    valid probability distribution.

    Parameters
    ----------
    epsilon, d, branching:
        As in HH; ``d`` must be a power of ``branching``.
    max_iter, tol:
        ADMM iteration cap and infinity-norm residual tolerance.
    """

    name = "hh-admm"
    kind = "distribution"

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        branching: int = 4,
        *,
        max_iter: int = 200,
        tol: float = 1e-6,
    ) -> None:
        super().__init__(epsilon, d, branching, split="population")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        # The Cholesky-factored consistency projector depends only on the
        # tree geometry; identically-shaped HH-ADMM estimators across the
        # process (e.g. one per sweep trial) share one factorization.
        self._projector = cached_object(
            ("nullspace-projector", d, branching),
            lambda: NullspaceProjector(self.tree),
        )
        self.diagnostics_: ADMMDiagnostics | None = None

    def estimate(self) -> np.ndarray:
        """Leaf distribution (non-negative, sums to 1) from ingested reports."""
        if int(self._level_n.sum()) == 0:
            raise EmptyAggregateError("no reports ingested yet")
        raw, _ = self._collected()
        x, diag = admm_postprocess(
            self.tree,
            raw,
            max_iter=self.max_iter,
            tol=self.tol,
            projector=self._projector,
        )
        self.node_estimates_ = x
        self.diagnostics_ = diag
        leaf = x[self.tree.level_slice(self.tree.height)]
        # The split variables agree only up to `tol`; a final Norm-Sub makes
        # the returned histogram exactly a probability vector.
        return norm_sub(leaf, total=1.0)

    def reset(self) -> None:
        super().reset()
        self.diagnostics_ = None

    def _params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "branching": self.branching,
            "max_iter": self.max_iter,
            "tol": self.tol,
        }
