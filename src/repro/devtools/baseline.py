"""Grandfathered findings, checked in and reviewed like code.

The baseline exists so a new rule can land without blocking on fixing (or
litigating) every historical violation at once — but every entry must carry
a human-written ``reason``, and the meta-test in ``tests/devtools`` keeps
the shipped baseline at (or near) empty. Entries match findings by
``(rule, path, stripped line text)``, so they survive unrelated edits that
shift line numbers but die with the line they excuse.

File format (JSON, stable key order for reviewable diffs)::

    {
      "entries": [
        {"rule": "NUM001", "path": "src/repro/foo.py",
         "line_text": "if self.leg == 0.0:",
         "reason": "leg is exactly 0.0 by construction for squares"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

#: Default baseline filename, resolved against the linted project root.
DEFAULT_BASELINE = "reprolint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    line_text: str
    reason: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)


@dataclass
class Baseline:
    """The set of grandfathered findings plus bookkeeping for staleness."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        raw_entries = payload.get("entries", []) if isinstance(payload, dict) else []
        entries = [
            BaselineEntry(
                rule=str(entry.get("rule", "")),
                path=str(entry.get("path", "")),
                line_text=str(entry.get("line_text", "")),
                reason=str(entry.get("reason", "")),
            )
            for entry in raw_entries
            if isinstance(entry, dict)
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "line_text": entry.line_text,
                    "reason": entry.reason or "TODO: justify or fix",
                }
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ]
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition findings into ``(new, grandfathered)`` + stale entries.

        Stale entries — baseline lines whose finding no longer occurs — are
        reported so the baseline shrinks monotonically instead of fossilizing.
        """
        by_key = {entry.key(): entry for entry in self.entries}
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        seen: set[tuple[str, str, str]] = set()
        for finding in findings:
            entry = by_key.get(finding.fingerprint())
            if entry is None:
                new.append(finding)
            else:
                grandfathered.append(finding)
                seen.add(entry.key())
        stale = [entry for entry in self.entries if entry.key() not in seen]
        return new, grandfathered, stale

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    line_text=finding.line_text,
                )
                for finding in findings
            ]
        )
