"""The reprolint rule catalogue.

Every rule encodes one invariant the package's correctness or privacy story
actually rests on:

========  ============================================================
RNG001    No global-state randomness: ``np.random.<fn>`` module calls,
          stdlib ``random.<fn>``, and unseeded ``default_rng()`` outside
          ``utils/rng.py``. Bit-reproducible ``n_jobs`` sweeps depend on
          every draw flowing through ``repro.utils.rng.as_generator``.
PRIV001   Privacy taint: raw user-value parameters must pass through a
          ``privatize``/``encode_report`` call before reaching a
          ``repro.protocol`` encode path. This is the eps-LDP boundary.
PRIV002   Every public constructor accepting ``epsilon``/``eps`` must
          validate positivity (``check_epsilon``) or delegate the value
          onward; silently stashing an unvalidated budget is how eps<=0
          reaches the channel math.
NUM001    Float ``==``/``!=`` against float literals, unguarded
          ``np.log``-family calls, and division by count-like names
          without a positivity guard in scope.
NUM002    No dense-channel materialization (``transition_matrix``,
          ``.to_dense()``) inside the ``repro.engine`` solver/operator
          hot paths — the operator protocol exists precisely so these
          stay ``O(d * B)``.
NUM003    No bare matmuls (``@``, ``np.dot``, ``np.matmul``, ``.dot()``)
          inside the ``repro.engine`` solver/operator hot paths — channel
          products must route through the ``ComputeBackend`` seam
          (``backend.matmul``/``rmatmul``/``banded_product``), or the
          threaded/numba backends silently stop applying.
REG001    Every concrete ``Estimator`` subclass must be referenced by a
          ``register_estimator`` factory and expose ``name``, ``kind``,
          ``wire_codec``, and ``n_reports`` (declared on itself or an
          ancestor below the ``Estimator`` root).
SVC001    No blocking calls inside ``repro.service`` async handlers:
          ``time.sleep``, synchronous ``socket`` use, or direct solve
          calls (``.estimate()``/``.report()``/``estimate_rounds``) on
          the event loop. CPU-bound work must be offloaded through
          ``run_in_executor``/``asyncio.to_thread`` worker threads.
STATE001  Window/decay maintenance must go through the sanctioned state
          arithmetic (``repro.api.subtract_state``/``scale_state`` and
          the payload helpers). Ad-hoc ``-``/``*``/``/`` arithmetic on
          state payloads outside ``repro.api``/``repro.streaming``
          silently skips the compatibility and shape checks that make
          window advance bit-identical to re-ingesting.
FT001     No silently swallowed failures in ``repro.service``: a bare
          ``except:`` / ``except Exception`` / ``except BaseException``
          handler must re-raise, reference the bound exception, or touch
          an accounting sink (error counters, ``stats()`` fields,
          loggers). The service's fault-tolerance contract is that every
          failure is either surfaced or *counted* — a ``pass`` handler
          in a drain loop is how lost reports become undetectable.
========  ============================================================

Rules that only make sense for production code (PRIV001, PRIV002, NUM001,
NUM002, NUM003, REG001, SVC001, STATE001, FT001) skip test files; RNG001
applies everywhere — a test that draws from global RNG state poisons
reproducibility just as surely.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Sequence

from repro.devtools.analyzer import AnalyzedModule
from repro.devtools.findings import Finding

__all__ = ["RULES", "rule_catalog"]

# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------


def _last_name(node: ast.expr) -> str | None:
    """Trailing identifier of a call target: ``a.b.c(...)`` -> ``"c"``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    """``self._n`` -> ``"self._n"``; ``x`` -> ``"x"``; else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _expr_names(node: ast.AST) -> set[str]:
    """Every dotted name appearing anywhere inside ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            dotted = _dotted(sub)
            if dotted is not None:
                out.add(dotted)
    return out


def _functions(tree: ast.AST) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    params = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


class _ImportMap:
    """Where ``numpy``, ``numpy.random``, and stdlib ``random`` are bound."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: set[str] = set()
        self.np_random: set[str] = set()
        self.np_random_names: dict[str, str] = {}
        self.stdlib_random: set[str] = set()
        self.stdlib_random_names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    if alias.name == "numpy":
                        self.numpy.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname is not None:
                            self.np_random.add(alias.asname)
                        else:
                            self.numpy.add("numpy")
                    elif alias.name == "random":
                        self.stdlib_random.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.np_random.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.np_random_names[alias.asname or alias.name] = alias.name
                elif node.module == "random":
                    for alias in node.names:
                        self.stdlib_random_names[alias.asname or alias.name] = alias.name

    def resolve_random_call(self, func: ast.expr) -> tuple[str, str] | None:
        """Classify a call target as ``("numpy"|"stdlib", fn_name)``."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.numpy
            ):
                return ("numpy", func.attr)
            if isinstance(value, ast.Name):
                if value.id in self.np_random:
                    return ("numpy", func.attr)
                if value.id in self.stdlib_random:
                    return ("stdlib", func.attr)
        elif isinstance(func, ast.Name):
            if func.id in self.np_random_names:
                return ("numpy", self.np_random_names[func.id])
            if func.id in self.stdlib_random_names:
                return ("stdlib", self.stdlib_random_names[func.id])
        return None


# ----------------------------------------------------------------------
# RNG001
# ----------------------------------------------------------------------

#: numpy.random members that do not touch global RNG state.
_SAFE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


class RngRule:
    """RNG001 — all randomness flows through ``repro.utils.rng``."""

    code = "RNG001"
    summary = (
        "no global-state randomness: np.random.<fn> module calls, stdlib "
        "random.<fn>, or unseeded default_rng() outside utils/rng.py"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        imports = _ImportMap(module.tree)
        is_rng_module = module.rel.endswith("utils/rng.py")
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_random_call(node.func)
            if resolved is None:
                continue
            origin, fn = resolved
            if origin == "stdlib":
                findings.append(
                    module.finding(
                        node,
                        self.code,
                        f"stdlib random.{fn}() draws from hidden global state; "
                        "use repro.utils.rng.as_generator and a numpy Generator",
                    )
                )
            elif fn == "default_rng":
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded and not node.keywords and not is_rng_module:
                    findings.append(
                        module.finding(
                            node,
                            self.code,
                            "unseeded default_rng() outside utils/rng.py breaks "
                            "bit-reproducible sweeps; accept an rng argument and "
                            "route it through repro.utils.rng.as_generator",
                        )
                    )
            elif fn not in _SAFE_NP_RANDOM:
                findings.append(
                    module.finding(
                        node,
                        self.code,
                        f"np.random.{fn}() mutates process-global RNG state; "
                        "draw from a Generator obtained via "
                        "repro.utils.rng.as_generator instead",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# PRIV001
# ----------------------------------------------------------------------

#: Parameter names treated as raw (pre-randomization) user data.
_RAW_PARAMS = frozenset(
    {"values", "value", "raw", "raw_values", "user_values", "true_values", "private_values"}
)

#: Calls that put a payload on the wire.
_ENCODE_SINKS = frozenset(
    {"encode_batch", "encode_batch_v2", "encode_frame", "encode_frame_blocks"}
)

#: Calls that launder raw values into eps-LDP reports.
_SANITIZERS = frozenset({"privatize", "encode_report"})


class PrivacyTaintRule:
    """PRIV001 — raw values are privatized before any protocol encode."""

    code = "PRIV001"
    summary = (
        "raw user-value parameters must pass through privatize()/"
        "encode_report() before reaching a repro.protocol encode path"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test:
            return []
        findings: list[Finding] = []
        for func in _functions(module.tree):
            findings.extend(self._check_function(module, func))
        return findings

    def _check_function(
        self,
        module: AnalyzedModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        tainted = {name for name in _param_names(func) if name in _RAW_PARAMS}
        if not tainted:
            return []
        findings: list[Finding] = []

        def expr_tainted(node: ast.AST) -> bool:
            if isinstance(node, ast.Call) and _last_name(node.func) in _SANITIZERS:
                return False  # sanitized subtree
            if isinstance(node, ast.Name) and node.id in tainted:
                return True
            return any(expr_tainted(child) for child in ast.iter_child_nodes(node))

        def sanitizes(node: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Call) and _last_name(sub.func) in _SANITIZERS
                for sub in ast.walk(node)
            )

        def scan_expression(node: ast.AST) -> None:
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                if _last_name(sub.func) not in _ENCODE_SINKS:
                    continue
                arguments = list(sub.args) + [kw.value for kw in sub.keywords]
                for argument in arguments:
                    if expr_tainted(argument):
                        findings.append(
                            module.finding(
                                sub,
                                self.code,
                                f"raw values reach {_last_name(sub.func)}() without "
                                "an intervening privatize()/encode_report() call — "
                                "this would ship unrandomized user data",
                            )
                        )
                        break

        def apply_assignment(targets: Sequence[ast.expr], value: ast.expr | None) -> None:
            if value is None:
                return
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if sanitizes(value):
                    tainted.discard(target.id)
                elif expr_tainted(value):
                    tainted.add(target.id)
                else:
                    tainted.discard(target.id)

        def visit(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested scopes check their own parameters
                if isinstance(stmt, (ast.If, ast.While)):
                    scan_expression(stmt.test)
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    scan_expression(stmt.iter)
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        scan_expression(item.context_expr)
                    visit(stmt.body)
                elif isinstance(stmt, ast.Try):
                    visit(stmt.body)
                    for handler in stmt.handlers:
                        visit(handler.body)
                    visit(stmt.orelse)
                    visit(stmt.finalbody)
                else:
                    scan_expression(stmt)
                    if isinstance(stmt, ast.Assign):
                        apply_assignment(stmt.targets, stmt.value)
                    elif isinstance(stmt, ast.AnnAssign):
                        apply_assignment([stmt.target], stmt.value)

        visit(func.body)
        return findings


# ----------------------------------------------------------------------
# PRIV002
# ----------------------------------------------------------------------

_EPSILON_PARAMS = frozenset({"epsilon", "eps"})
_EPSILON_VALIDATORS = frozenset({"check_epsilon", "validate_epsilon"})


class EpsilonValidationRule:
    """PRIV002 — public constructors validate (or delegate) their budget."""

    code = "PRIV002"
    summary = (
        "public constructors accepting epsilon/eps must validate positivity "
        "(check_epsilon) or delegate the value to another constructor"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for stmt in node.body:
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == "__init__"
                    ):
                        findings.extend(self._check_callable(module, stmt))
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not node.name.startswith("_")
                and node.name != "__init__"
            ):
                findings.extend(self._check_callable(module, node))
        return findings

    def _check_callable(
        self,
        module: AnalyzedModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        params = [name for name in _param_names(func) if name in _EPSILON_PARAMS]
        if not params:
            return []
        validated: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if _last_name(node.func) in _EPSILON_VALIDATORS:
                    validated.update(params)
                    break
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                for argument in arguments:
                    if isinstance(argument, ast.Name) and argument.id in params:
                        validated.add(argument.id)  # delegated onward
            elif isinstance(node, ast.Compare):
                for side in [node.left, *node.comparators]:
                    if isinstance(side, ast.Name) and side.id in params:
                        validated.add(side.id)  # explicit guard
        missing = [name for name in params if name not in validated]
        if not missing:
            return []
        return [
            module.finding(
                func,
                self.code,
                f"{func.name}() accepts {missing[0]!r} but neither validates it "
                "(repro.utils.validation.check_epsilon) nor passes it on; an "
                "eps<=0 budget would silently reach the channel math",
            )
        ]


# ----------------------------------------------------------------------
# NUM001
# ----------------------------------------------------------------------

_LOG_FUNCTIONS = frozenset({"log", "log2", "log10"})
_GUARD_CALLS = frozenset({"maximum", "clip", "abs", "exp", "expm1", "fmax"})
#: Denominators that smell like report/batch counts. ``.size`` is excluded
#: (dividing by an array's size is the standard vectorized-mean idiom and the
#: arrays are validated non-empty at the API boundary), as are math-flavored
#: names like ``denominator`` — those are analytic expressions, not counts.
_COUNT_NAME = re.compile(r"^(n|counts?|total|n_\w+|_n)$")


def _contains_guard_call(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call) and _last_name(sub.func) in _GUARD_CALLS
        for sub in ast.walk(node)
    )


class NumericsRule:
    """NUM001 — float equality and unguarded log/divide on counts."""

    code = "NUM001"
    summary = (
        "float ==/!= against float literals; np.log/division on counts "
        "without a positivity guard in the enclosing function"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test:
            return []
        findings: list[Finding] = []
        enclosing = self._enclosing_function_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                findings.extend(self._check_compare(module, node))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_log(module, node, enclosing.get(node)))
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                findings.extend(self._check_divide(module, node, enclosing.get(node)))
        return findings

    @staticmethod
    def _enclosing_function_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
        """Map every node to its innermost enclosing function, if any."""
        out: dict[ast.AST, ast.AST] = {}

        def fill(scope: ast.AST, current: ast.AST | None) -> None:
            for child in ast.iter_child_nodes(scope):
                nxt = current
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nxt = child
                elif current is not None:
                    out[child] = current
                fill(child, nxt)

        fill(tree, None)
        return out

    def _check_compare(self, module: AnalyzedModule, node: ast.Compare) -> list[Finding]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return []
        operands = [node.left, *node.comparators]
        if not any(
            isinstance(operand, ast.Constant) and isinstance(operand.value, float)
            for operand in operands
        ):
            return []
        return [
            module.finding(
                node,
                self.code,
                "exact ==/!= against a float literal; float round-off makes "
                "this branch unstable — compare with a tolerance "
                "(math.isclose/np.isclose) or restructure around an exact flag",
            )
        ]

    @staticmethod
    def _has_positivity_evidence(
        scope: ast.AST | None, names: set[str]
    ) -> bool:
        """Whether the enclosing function guards any of ``names``."""
        if scope is None or not names:
            return False
        for node in ast.walk(scope):
            if isinstance(node, ast.Compare) and names & _expr_names(node):
                return True
            if (
                isinstance(node, ast.Call)
                and _last_name(node.func) in _GUARD_CALLS | {"max", "min"}
                and names & _expr_names(node)
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and (_last_name(node.func) or "").startswith("check_")
                and names & _expr_names(node)
            ):
                return True
        return False

    def _check_log(
        self, module: AnalyzedModule, node: ast.Call, scope: ast.AST | None
    ) -> list[Finding]:
        fn = _last_name(node.func)
        if fn not in _LOG_FUNCTIONS:
            return []
        if not isinstance(node.func, ast.Attribute):
            # Bare log()/log2() names are almost always math.log imports on
            # scalars already range-checked by the caller; only numpy
            # attribute calls are array-valued.
            return []
        base = node.func.value
        if not (isinstance(base, ast.Name) and base.id in ("np", "numpy")):
            return []
        if any(kw.arg == "where" for kw in node.keywords):
            return []
        if not node.args:
            return []
        argument = node.args[0]
        if (
            isinstance(argument, ast.Constant)
            and isinstance(argument.value, (int, float))
            and argument.value > 0
        ):
            return []
        if _contains_guard_call(argument):
            return []
        if self._has_positivity_evidence(scope, _expr_names(argument)):
            return []
        return [
            module.finding(
                node,
                self.code,
                f"np.{fn}() without a positivity guard: zero cells produce "
                "-inf and RuntimeWarnings; mask with where=/out= or floor the "
                "argument (np.maximum) first",
            )
        ]

    def _check_divide(
        self, module: AnalyzedModule, node: ast.BinOp, scope: ast.AST | None
    ) -> list[Finding]:
        denominator = node.right
        dotted = _dotted(denominator)
        if dotted is None:
            return []
        last = dotted.rsplit(".", 1)[-1]
        if not _COUNT_NAME.match(last):
            return []
        if self._has_positivity_evidence(scope, {dotted, last}):
            return []
        return [
            module.finding(
                node,
                self.code,
                f"division by count-like {dotted!r} without a positivity guard "
                "in the enclosing function; an empty batch would divide by zero",
            )
        ]


# ----------------------------------------------------------------------
# NUM002
# ----------------------------------------------------------------------

_HOT_MODULES = ("engine/solver.py", "engine/operators.py")
_DENSE_CALLS = frozenset({"to_dense", "dense", "transition_matrix"})


class DenseMaterializationRule:
    """NUM002 — solver/operator hot paths never materialize dense channels."""

    code = "NUM002"
    summary = (
        "no dense-channel materialization (transition_matrix/.to_dense()) "
        "inside repro.engine solver/operator hot paths"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test or not module.rel.endswith(_HOT_MODULES):
            return []
        findings: list[Finding] = []
        allowed_scopes = self._dense_definition_spans(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _last_name(node.func)
            if fn not in _DENSE_CALLS:
                continue
            if not isinstance(node.func, ast.Attribute):
                continue  # plain-name calls are local helpers, not channels
            if any(lo <= node.lineno <= hi for lo, hi in allowed_scopes):
                continue
            findings.append(
                module.finding(
                    node,
                    self.code,
                    f".{fn}() materializes an O(d_out * d) dense channel inside "
                    "an engine hot path; use the ChannelOperator matvec/rmatvec "
                    "protocol (DenseChannel exists for the fallback seam)",
                )
            )
        return findings

    @staticmethod
    def _dense_definition_spans(tree: ast.AST) -> list[tuple[int, int]]:
        """Line spans where dense materialization is the *point*.

        ``to_dense`` implementations, ``DenseChannel`` itself, and ``__repr__``
        diagnostics legitimately touch dense matrices.
        """
        spans: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and (node.name in ("to_dense", "__repr__") or "dense" in node.name)
            ) or (isinstance(node, ast.ClassDef) and node.name == "DenseChannel"):
                spans.append((node.lineno, node.end_lineno or node.lineno))
        return spans


# ----------------------------------------------------------------------
# NUM003
# ----------------------------------------------------------------------

_MATMUL_CALLS = frozenset({"dot", "matmul"})


class BackendBypassRule:
    """NUM003 — engine hot-path products route through the backend seam.

    The ``threaded`` and ``numba`` backends only apply to products that go
    through :class:`repro.engine.backend.ComputeBackend` — a bare ``m @ x``
    (or ``np.dot``/``np.matmul``/``m.dot(x)``) in ``engine/solver.py`` or
    ``engine/operators.py`` silently pins that product to single-core NumPy
    no matter what backend the user selected. Dense work is still allowed
    where dense is the point (``to_dense``/``__repr__``/``dense``-named
    scopes, :class:`DenseChannel` — the same allowance as NUM002);
    ``repro/engine/backend.py`` itself is exempt, since it is where the
    matmuls are supposed to live.
    """

    code = "NUM003"
    summary = (
        "no bare matmuls (@ / np.dot / np.matmul / .dot()) inside "
        "repro.engine solver/operator hot paths; route products through "
        "the ComputeBackend seam"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test or not module.rel.endswith(_HOT_MODULES):
            return []
        findings: list[Finding] = []
        allowed_scopes = DenseMaterializationRule._dense_definition_spans(
            module.tree
        )

        def allowed(lineno: int) -> bool:
            return any(lo <= lineno <= hi for lo, hi in allowed_scopes)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                if allowed(node.lineno):
                    continue
                findings.append(
                    module.finding(
                        node,
                        self.code,
                        "bare '@' matmul bypasses the ComputeBackend seam; "
                        "use backend.matmul/rmatmul (or the operator's "
                        "backend= kwarg) so threaded/numba backends apply",
                    )
                )
            elif isinstance(node, ast.Call):
                fn = _last_name(node.func)
                if fn not in _MATMUL_CALLS:
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue  # plain-name helpers are not array products
                # backend.matmul(...) IS the seam; only the NumPy module's
                # matmul is a bypass. (.dot has no backend counterpart, so
                # any receiver — np or an array — is a bypass.)
                base = _dotted(node.func.value)
                if fn == "matmul" and base not in ("np", "numpy"):
                    continue
                if allowed(node.lineno):
                    continue
                findings.append(
                    module.finding(
                        node,
                        self.code,
                        f".{fn}() bypasses the ComputeBackend seam; use "
                        "backend.matmul/rmatmul so threaded/numba backends "
                        "apply",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# REG001
# ----------------------------------------------------------------------

#: Capabilities every concrete estimator family must expose (declared on the
#: class or inherited from an ancestor below the Estimator root).
_REQUIRED_ATTRS = ("name", "kind", "wire_codec", "n_reports")


class _ClassInfo:
    __slots__ = ("name", "module", "node", "bases", "abstract", "declared")

    def __init__(self, module: AnalyzedModule, node: ast.ClassDef) -> None:
        self.name = node.name
        self.module = module
        self.node = node
        self.bases = [
            base for base in (_last_name(b) for b in node.bases) if base is not None
        ]
        self.abstract = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and any(
                _last_name(dec) == "abstractmethod" or _dotted(dec) == "abc.abstractmethod"
                for dec in stmt.decorator_list
            )
            for stmt in node.body
        )
        declared: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                declared.update(
                    target.id for target in stmt.targets if isinstance(target, ast.Name)
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                declared.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declared.add(stmt.name)
        self.declared = declared


class RegistryRule:
    """REG001 — concrete estimator families are registered and capable."""

    code = "REG001"
    summary = (
        "every concrete Estimator subclass is referenced by a "
        "register_estimator factory and exposes name/kind/wire_codec/n_reports"
    )

    root_class = "Estimator"

    def check_project(self, modules: Sequence[AnalyzedModule]) -> list[Finding]:
        production = [module for module in modules if not module.is_test]
        classes: dict[str, _ClassInfo] = {}
        for module in production:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    # First definition wins; duplicate class names across
                    # modules are rare enough not to matter for this rule.
                    classes.setdefault(node.name, _ClassInfo(module, node))

        descendants = self._descendants_of_root(classes)
        if not descendants:
            return []
        parents = {
            base
            for info in classes.values()
            for base in info.bases
            if base in descendants
        }
        registered_refs = self._registered_references(production)
        if not registered_refs:
            # No registry module in the analyzed set (e.g. a rule fixture
            # directory): only the capability half of the rule can apply.
            registered_refs = None

        findings: list[Finding] = []
        for name in sorted(descendants):
            info = classes[name]
            if info.abstract or name.startswith("_") or name in parents:
                continue
            if registered_refs is not None and name not in registered_refs:
                findings.append(
                    info.module.finding(
                        info.node,
                        self.code,
                        f"estimator family {name} is not wired into any "
                        "register_estimator() factory; unregistered families "
                        "are invisible to the planner, CLI, and servers",
                    )
                )
            missing = [
                attr
                for attr in _REQUIRED_ATTRS
                if not self._declares(classes, name, attr)
            ]
            if missing:
                findings.append(
                    info.module.finding(
                        info.node,
                        self.code,
                        f"estimator family {name} does not declare or inherit "
                        f"{', '.join(missing)}; wire_codec and capability "
                        "attributes are what the protocol servers dispatch on",
                    )
                )
        return findings

    def _descendants_of_root(self, classes: dict[str, _ClassInfo]) -> set[str]:
        out: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, info in classes.items():
                if name in out:
                    continue
                if any(base == self.root_class or base in out for base in info.bases):
                    out.add(name)
                    changed = True
        return out

    def _declares(
        self, classes: dict[str, _ClassInfo], name: str, attr: str
    ) -> bool:
        """Declared on the class or an ancestor below the Estimator root."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen or current == self.root_class:
                continue
            seen.add(current)
            info = classes.get(current)
            if info is None:
                continue
            if attr in info.declared:
                return True
            stack.extend(info.bases)
        return False

    @staticmethod
    def _registered_references(modules: Sequence[AnalyzedModule]) -> set[str]:
        """All names referenced inside modules that call register_estimator."""
        refs: set[str] = set()
        for module in modules:
            calls_register = any(
                isinstance(node, ast.Call)
                and _last_name(node.func) == "register_estimator"
                for node in ast.walk(module.tree)
            )
            if not calls_register:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Name):
                    refs.add(node.id)
                elif isinstance(node, ast.Attribute):
                    refs.add(node.attr)
        return refs


# ----------------------------------------------------------------------
# SVC001
# ----------------------------------------------------------------------

#: Calls that block the event loop outright when made from a coroutine.
_BLOCKING_SLEEPS = frozenset({"time.sleep", "sleep"})
#: Synchronous solve entry points — each can run a full EM reconstruction.
_BLOCKING_SOLVES = frozenset({"estimate", "report", "estimate_rounds"})
#: Offload seams whose argument subtrees legitimately name blocking work.
_OFFLOAD_CALLS = frozenset({"run_in_executor", "to_thread"})


class AsyncBlockingRule:
    """SVC001 — ``repro.service`` async handlers never block the loop.

    The service's throughput story rests on the event loop doing nothing
    but parse/route/respond: one ``time.sleep``, one synchronous socket
    round-trip, or one un-offloaded ``CollectionServer.estimate()`` in a
    coroutine stalls *every* connection, and the loadgen's p99 shows it.
    Blocking work belongs on worker threads behind ``run_in_executor`` /
    ``asyncio.to_thread`` — calls inside those offload arguments (e.g. a
    lambda handed to an executor) are exempt, as is ``asyncio.sleep``.
    """

    code = "SVC001"
    summary = (
        "no blocking calls (time.sleep, sync socket use, direct "
        ".estimate()/.report()/estimate_rounds solves) inside "
        "repro.service async handlers; offload via run_in_executor/"
        "to_thread worker threads"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test or "service/" not in module.rel:
            return []
        findings: list[Finding] = []
        for func in _functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            # Exempt spans: offload-call argument subtrees, and nested defs
            # — sync helpers defined inline are meant to run on an
            # executor, and nested *async* defs are visited on their own.
            skip = self._offloaded_spans(func) + [
                (nested.lineno, nested.end_lineno or nested.lineno)
                for nested in ast.walk(func)
                if isinstance(nested, (ast.FunctionDef, ast.AsyncFunctionDef))
                and nested is not func
            ]
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if any(lo <= node.lineno <= hi for lo, hi in skip):
                    continue
                findings.extend(self._check_call(module, func, node))
        return findings

    @staticmethod
    def _offloaded_spans(
        func: ast.AsyncFunctionDef,
    ) -> list[tuple[int, int]]:
        """Line spans of run_in_executor/to_thread argument subtrees."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and _last_name(node.func) in _OFFLOAD_CALLS
            ):
                spans.append((node.lineno, node.end_lineno or node.lineno))
        return spans

    def _check_call(
        self,
        module: AnalyzedModule,
        func: ast.AsyncFunctionDef,
        node: ast.Call,
    ) -> list[Finding]:
        dotted = _dotted(node.func) or ""
        fn = _last_name(node.func)
        if dotted == "time.sleep":
            return [
                module.finding(
                    node,
                    self.code,
                    f"time.sleep() inside async {func.name}() stalls the "
                    "whole event loop; use await asyncio.sleep()",
                )
            ]
        if dotted.startswith("socket.") or dotted == "socket":
            return [
                module.finding(
                    node,
                    self.code,
                    f"synchronous socket call {dotted}() inside async "
                    f"{func.name}() blocks the event loop; use the asyncio "
                    "stream APIs (open_connection/start_server)",
                )
            ]
        if fn in _BLOCKING_SOLVES and isinstance(node.func, ast.Attribute):
            return [
                module.finding(
                    node,
                    self.code,
                    f".{fn}() can run a full merge + EM solve; calling it "
                    f"directly inside async {func.name}() blocks every "
                    "connection — offload it via loop.run_in_executor or "
                    "asyncio.to_thread",
                )
            ]
        if fn == "estimate_rounds" and isinstance(node.func, ast.Name):
            return [
                module.finding(
                    node,
                    self.code,
                    f"estimate_rounds() fans out whole solve batches; inside "
                    f"async {func.name}() it blocks every connection — "
                    "offload it via loop.run_in_executor or asyncio.to_thread",
                )
            ]
        return []


# ----------------------------------------------------------------------
# STATE001
# ----------------------------------------------------------------------

#: Calls that produce or consume aggregation-state payloads.
_STATE_CALLS = frozenset({"_state", "to_state", "_load_state", "from_state"})
#: Identifiers that read as state payloads: ``state``, ``old_state``,
#: ``window_state`` ... but not ``statement`` or ``estate``.
_STATE_NAME = re.compile(r"(^|_)state$")
#: Directory segments where state arithmetic is sanctioned: the helpers
#: themselves (``repro.api.arithmetic``) and the window states built on
#: them (``repro.streaming``).
_STATE_SANCTIONED_SEGMENTS = frozenset({"api", "streaming"})


def _touches_state(node: ast.AST) -> bool:
    """Whether a subtree mentions a state payload (by call or by name)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _last_name(sub.func) in _STATE_CALLS:
            return True
        if isinstance(sub, (ast.Name, ast.Attribute)):
            dotted = _dotted(sub)
            if dotted is not None and _STATE_NAME.search(
                dotted.rsplit(".", 1)[-1]
            ):
                return True
    return False


class StateArithmeticRule:
    """STATE001 — window/decay math uses the sanctioned state helpers.

    ``repro.api.subtract_state``/``scale_state`` (and the payload-level
    ``subtract_payload``/``add_payload``/``scale_payload``) carry the
    compatibility checks — same family, same ``_params()``, mirrored
    payload shapes — that make sliding-window advance bit-identical to
    re-ingesting the window. A hand-rolled ``current - evicted`` or
    ``0.9 * state["n"]`` elsewhere skips all of that and is exactly the
    kind of drift this rule exists to catch. ``repro/api/`` and
    ``repro/streaming/`` are exempt: they are where the sanctioned
    arithmetic lives.
    """

    code = "STATE001"
    summary = (
        "window/decay state maintenance must use the sanctioned "
        "repro.api subtract_state/scale_state helpers; no ad-hoc "
        "-/*// arithmetic on state payloads outside repro.api/"
        "repro.streaming"
    )

    _FLAGGED_OPS = (ast.Sub, ast.Mult, ast.Div)

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test:
            return []
        if _STATE_SANCTIONED_SEGMENTS & set(module.rel.split("/")[:-1]):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, self._FLAGGED_OPS
            ):
                if _touches_state(node.left) or _touches_state(node.right):
                    findings.append(self._finding(module, node, node.op))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, self._FLAGGED_OPS
            ):
                if _touches_state(node.target) or _touches_state(node.value):
                    findings.append(self._finding(module, node, node.op))
        return findings

    def _finding(
        self, module: AnalyzedModule, node: ast.AST, op: ast.operator
    ) -> Finding:
        symbol = {"Sub": "-", "Mult": "*", "Div": "/"}[type(op).__name__]
        return module.finding(
            node,
            self.code,
            f"ad-hoc '{symbol}' arithmetic on a state payload bypasses the "
            "compatibility/shape checks of the sanctioned helpers; use "
            "repro.api.subtract_state/scale_state (or the payload-level "
            "subtract_payload/add_payload/scale_payload)",
        )


# ----------------------------------------------------------------------
# FT001
# ----------------------------------------------------------------------

#: Exception names broad enough that a silent handler hides real faults.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
#: Identifier tokens that count as "the failure was accounted for":
#: error counters, stats fields, loggers. A handler that touches any of
#: these is surfacing the fault, not swallowing it.
_ACCOUNTING_TOKENS = frozenset(
    {
        "error",
        "errors",
        "counter",
        "counters",
        "stats",
        "failed",
        "failures",
        "log",
        "logger",
        "warn",
        "warning",
    }
)


class SwallowedFaultRule:
    """FT001 — no silently swallowed failures in ``repro.service``.

    The fault-tolerance contract is that every failure is either
    re-raised or *counted*: a drain loop's ``except Exception: pass``
    turns lost reports into an undetectable accuracy bug — the journal
    replays them, the counters never saw them, and recovery "succeeds"
    with the wrong answer. A broad handler (bare ``except:``,
    ``except Exception``, ``except BaseException``, or a tuple
    containing one) passes only if its body re-raises, references the
    bound exception (it is being recorded or wrapped), or touches an
    accounting sink — error counters, ``stats``-shaped fields, loggers.
    Narrow handlers (``except queue.Full`` etc.) are out of scope: they
    name the exact condition being absorbed.
    """

    code = "FT001"
    summary = (
        "broad except handlers in repro.service must re-raise, use the "
        "bound exception, or update failure accounting (error counters/"
        "stats/logging) — never silently swallow"
    )

    def check_module(self, module: AnalyzedModule) -> list[Finding]:
        if module.is_test or "service/" not in module.rel:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._accounts_for_failure(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {_dotted(node.type) or 'Exception'}"
            )
            findings.append(
                module.finding(
                    node,
                    self.code,
                    f"{caught} swallows the failure: re-raise it, record "
                    "the bound exception, or count it in an error/stats "
                    "sink so recovery and monitoring can see it",
                )
            )
        return findings

    @staticmethod
    def _is_broad(type_expr: ast.expr | None) -> bool:
        if type_expr is None:  # bare ``except:``
            return True
        exprs = (
            list(type_expr.elts)
            if isinstance(type_expr, ast.Tuple)
            else [type_expr]
        )
        return any(_last_name(expr) in _BROAD_EXCEPTIONS for expr in exprs)

    @staticmethod
    def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for stmt in handler.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return True
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    dotted = _dotted(sub)
                    if dotted is None:
                        continue
                    parts = dotted.replace(".", "_").split("_")
                    if bound is not None and bound in parts:
                        return True
                    if _ACCOUNTING_TOKENS & set(parts):
                        return True
        return False


# ----------------------------------------------------------------------
# catalogue
# ----------------------------------------------------------------------

RULES: tuple[object, ...] = (
    RngRule(),
    PrivacyTaintRule(),
    EpsilonValidationRule(),
    NumericsRule(),
    DenseMaterializationRule(),
    BackendBypassRule(),
    RegistryRule(),
    AsyncBlockingRule(),
    StateArithmeticRule(),
    SwallowedFaultRule(),
)


def rule_catalog() -> list[tuple[str, str]]:
    """``(code, summary)`` pairs for ``--list-rules`` and the docs."""
    return [(rule.code, rule.summary) for rule in RULES]  # type: ignore[attr-defined]
