"""The one record type every rule emits.

A finding pins a rule violation to a source location *and* carries the
stripped text of the offending line: locations drift as files are edited,
so the baseline (:mod:`repro.devtools.baseline`) matches findings by
``(rule, path, line_text)`` rather than by line number.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Project-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column, ruff-style.
    rule:
        Rule code (e.g. ``"RNG001"``).
    message:
        Human-readable explanation, one line.
    line_text:
        The stripped source line — the baseline's location-independent
        fingerprint component.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    line_text: str = ""

    def render(self) -> str:
        """``path:line:col RULE message`` — the CLI output line."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def fingerprint(self) -> tuple[str, str, str]:
        """Location-independent identity used for baseline matching."""
        return (self.rule, self.path, self.line_text)
