"""``python -m repro.devtools.lint`` — the reprolint command line.

Usage::

    python -m repro.devtools.lint [paths ...]
        [--baseline FILE] [--no-baseline] [--update-baseline]
        [--list-rules] [--quiet]

Paths default to ``src tests``. Output is ruff-style
``path:line:col RULE message``, one finding per line. Exit codes:

* ``0`` — no new (non-baselined, non-suppressed) findings,
* ``1`` — new findings (or stale baseline entries: a fixed finding must
  leave the baseline in the same change, or the baseline fossilizes),
* ``2`` — usage errors.

``--update-baseline`` rewrites the baseline to exactly the current finding
set (every rewritten entry still needs a human ``reason`` before review).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.analyzer import analyze_paths
from repro.devtools.baseline import DEFAULT_BASELINE, Baseline
from repro.devtools.rules import rule_catalog

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Privacy- and numerics-aware static analysis for repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current finding set and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings still print)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in rule_catalog():
            print(f"{code}  {summary}")
        return 0

    root = Path.cwd()
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2

    findings, suppressed = analyze_paths(paths, root=root)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        if not args.quiet:
            print(
                f"reprolint: wrote {len(findings)} entr"
                f"{'y' if len(findings) == 1 else 'ies'} to {baseline_path}"
            )
        return 0

    if args.no_baseline:
        new, grandfathered, stale = findings, [], []
    else:
        baseline = Baseline.load(baseline_path)
        new, grandfathered, stale = baseline.split(findings)

    for finding in new:
        print(finding.render())
    for entry in stale:
        print(
            f"{entry.path}:0:0 {entry.rule} stale baseline entry (finding no "
            f"longer occurs): {entry.line_text!r} — remove it from "
            f"{baseline_path.name}"
        )

    if not args.quiet:
        bits = [f"{len(new)} finding{'s' if len(new) != 1 else ''}"]
        if grandfathered:
            bits.append(f"{len(grandfathered)} baselined")
        if suppressed:
            bits.append(f"{len(suppressed)} suppressed inline")
        if stale:
            bits.append(f"{len(stale)} stale baseline entries")
        print(f"reprolint: {', '.join(bits)}")

    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main())
