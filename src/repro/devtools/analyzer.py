"""File loading, suppression parsing, and rule orchestration.

The analyzer is deliberately self-contained: stdlib ``ast`` + ``re`` only,
no third-party parser, so it runs in any environment the package itself
runs in (CI images, contributor laptops, the test suite).

Suppressions
------------
A finding is suppressed by a trailing comment on the *reported* line::

    rng = np.random.default_rng()  # reprolint: disable=RNG001 -- seeded upstream

Multiple codes separate with commas (``disable=RNG001,NUM001``). Everything
after the code list is the justification; rules never see it, humans do.
Suppressing a line you cannot justify belongs in the baseline instead,
where the entry carries an explicit ``reason`` field under review.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import Finding

__all__ = [
    "AnalyzedModule",
    "analyze_paths",
    "collect_files",
    "load_module",
]

#: ``# reprolint: disable=CODE[,CODE...] [justification]``
_SUPPRESSION = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
)

#: Directory names whose contents are never analyzed.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".venv", "build", "dist", ".eggs"})


def _parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule codes disabled on that line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "reprolint" not in text:
            continue
        match = _SUPPRESSION.search(text)
        if match is not None:
            codes = frozenset(
                code.strip() for code in match.group("codes").split(",")
            )
            out[lineno] = codes
    return out


@dataclass
class AnalyzedModule:
    """One parsed source file plus the per-line metadata rules consume."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    suppressions: dict[int, frozenset[str]] = field(repr=False)

    @property
    def is_test(self) -> bool:
        """Test/fixture files are exempt from the production-only rules."""
        parts = Path(self.rel).parts
        name = Path(self.rel).name
        return (
            "tests" in parts
            or "fixtures" in parts
            or name.startswith("test_")
            or name == "conftest.py"
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.rel,
            line=lineno,
            col=col,
            rule=rule,
            message=message,
            line_text=self.line_text(lineno),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions.get(finding.line)
        return codes is not None and finding.rule in codes


def load_module(path: Path, root: Path) -> AnalyzedModule:
    """Parse one file into an :class:`AnalyzedModule`.

    Raises ``SyntaxError`` for unparseable sources; the CLI converts that
    into a ``PARSE`` finding so a broken file fails the lint run instead of
    silently escaping every rule.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    lines = source.splitlines()
    return AnalyzedModule(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(lines),
    )


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return list(seen)


def analyze_paths(
    paths: Sequence[Path],
    *,
    root: Path,
    rules: Sequence[object] | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Run every rule over ``paths``.

    Returns ``(findings, suppressed)`` — both sorted — where ``findings``
    excludes anything silenced by an inline suppression. Baseline filtering
    is the CLI's concern, not the analyzer's.
    """
    from repro.devtools.rules import RULES

    active_rules = RULES if rules is None else list(rules)
    modules: list[AnalyzedModule] = []
    findings: list[Finding] = []
    for path in collect_files(paths):
        try:
            modules.append(load_module(path, root))
        except SyntaxError as exc:
            rel = path.as_posix()
            findings.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            )

    by_rel = {module.rel: module for module in modules}
    for rule in active_rules:
        checker = getattr(rule, "check_project", None)
        if checker is not None:
            findings.extend(checker(modules))
        else:
            for module in modules:
                findings.extend(rule.check_module(module))

    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        module = by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return sorted(kept), sorted(suppressed)
