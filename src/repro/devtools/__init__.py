"""repro.devtools — machine-checked invariants for the repro codebase.

The estimator contract rests on conventions that code review alone cannot
hold at scale: every randomized component threads ``rng`` through
``repro.utils.rng.as_generator`` (bit-reproducible sweeps), raw user values
never reach a ``repro.protocol`` encode path unprivatized (the eps-LDP
boundary), every ``epsilon`` is validated positive, probability math never
divides or logs unguarded, hot solver paths never materialize dense
channels, and every concrete estimator family is registered with its wire
codec and capabilities.

``reprolint`` turns those conventions into a stdlib-``ast`` static analysis
pass::

    python -m repro.devtools.lint src tests

See :mod:`repro.devtools.rules` for the rule catalogue,
:mod:`repro.devtools.baseline` for grandfathering, and the README's
"Correctness tooling" section for suppression etiquette.
"""

from repro.devtools.analyzer import AnalyzedModule, analyze_paths, load_module
from repro.devtools.baseline import Baseline
from repro.devtools.findings import Finding
from repro.devtools.rules import RULES, rule_catalog

__all__ = [
    "AnalyzedModule",
    "Baseline",
    "Finding",
    "RULES",
    "analyze_paths",
    "load_module",
    "rule_catalog",
]
