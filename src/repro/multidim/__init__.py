"""Multi-attribute collection via population splitting."""

from repro.multidim.marginals import MultiAttributeReports, MultiAttributeSW

__all__ = ["MultiAttributeSW", "MultiAttributeReports"]
