"""Multi-attribute collection via population splitting."""

from repro.multidim.marginals import (
    MultiAttributeReports,
    MultiAttributeSW,
    split_population,
)

__all__ = ["MultiAttributeSW", "MultiAttributeReports", "split_population"]
