"""Multi-attribute collection: per-attribute marginals under one budget.

Real collections rarely involve a single attribute. The standard LDP recipe
(used by the multi-dimensional follow-up work the paper cites, e.g. Wang et
al. [33]) is to *split the population* across attributes: each user is
assigned one attribute uniformly at random and spends their whole budget
reporting it. Splitting the population beats splitting the budget for
exactly the Section 4.2 reason — LDP noise scales much worse with epsilon
than estimate counts do with users.

``MultiAttributeSW`` wraps one Square Wave + EMS estimator per attribute
behind that splitting strategy and reconstructs every marginal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SWEstimator
from repro.utils.rng import as_generator
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["MultiAttributeReports", "MultiAttributeSW"]


@dataclass(frozen=True)
class MultiAttributeReports:
    """Reports from one multi-attribute collection round."""

    attribute: np.ndarray  # which attribute each user reported
    value: np.ndarray  # the SW-randomized report

    def __post_init__(self) -> None:
        if self.attribute.shape != self.value.shape or self.attribute.ndim != 1:
            raise ValueError("attribute and value must be equal-length 1-d arrays")

    @property
    def n(self) -> int:
        return int(self.attribute.size)


class MultiAttributeSW:
    """SW + EMS marginal estimation over ``k`` numerical attributes.

    Parameters
    ----------
    epsilon:
        Whole per-user budget (spent on a single attribute's report).
    n_attributes:
        Number of attributes ``k``; every user holds a value for each.
    d:
        Histogram granularity per attribute (shared).
    kwargs:
        Forwarded to each underlying :class:`SWEstimator`.
    """

    def __init__(self, epsilon: float, n_attributes: int, d: int = 256, **kwargs) -> None:
        self.epsilon = check_epsilon(epsilon)
        if n_attributes < 1:
            raise ValueError(f"n_attributes must be >= 1, got {n_attributes}")
        self.n_attributes = int(n_attributes)
        self.d = check_domain_size(d)
        self._estimators = [
            SWEstimator(epsilon, d, **kwargs) for _ in range(self.n_attributes)
        ]

    def _check_matrix(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.n_attributes:
            raise ValueError(
                f"values must have shape (n, {self.n_attributes}), got {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise ValueError("values must contain at least one user")
        if not np.isfinite(arr).all() or arr.min() < 0 or arr.max() > 1:
            raise ValueError("values must be finite and in [0, 1]")
        return arr

    def privatize(self, values: np.ndarray, rng=None) -> MultiAttributeReports:
        """Assign each user one attribute and randomize that value.

        ``values`` is an ``(n, k)`` matrix; only column ``attribute[i]`` of
        row ``i`` influences the report, so the other attributes never
        touch the mechanism (clean per-user privacy accounting).
        """
        arr = self._check_matrix(values)
        gen = as_generator(rng)
        n = arr.shape[0]
        assignment = gen.integers(0, self.n_attributes, size=n)
        reports = np.empty(n, dtype=np.float64)
        for a in range(self.n_attributes):
            mask = assignment == a
            if mask.any():
                reports[mask] = self._estimators[a].privatize(arr[mask, a], rng=gen)
        return MultiAttributeReports(attribute=assignment, value=reports)

    def aggregate(self, reports: MultiAttributeReports) -> list[np.ndarray]:
        """Reconstruct every attribute's marginal histogram.

        Attributes that received no reports get the uniform fallback (and a
        diagnostic ``result_`` of ``None``).
        """
        out: list[np.ndarray] = []
        for a, estimator in enumerate(self._estimators):
            mask = reports.attribute == a
            if not mask.any():
                estimator.result_ = None
                out.append(np.full(self.d, 1.0 / self.d))
                continue
            out.append(estimator.aggregate(reports.value[mask]))
        return out

    def fit(self, values: np.ndarray, rng=None) -> list[np.ndarray]:
        """Simulate one full multi-attribute collection round."""
        return self.aggregate(self.privatize(values, rng=rng))

    @property
    def estimators(self) -> list[SWEstimator]:
        """Per-attribute estimators (diagnostics live on each)."""
        return list(self._estimators)
