"""Multi-attribute collection: per-attribute marginals under one budget.

Real collections rarely involve a single attribute. The standard LDP recipe
(used by the multi-dimensional follow-up work the paper cites, e.g. Wang et
al. [33]) is to *split the population* across attributes: each user is
assigned one attribute uniformly at random and spends their whole budget
reporting it. Splitting the population beats splitting the budget for
exactly the Section 4.2 reason — LDP noise scales much worse with epsilon
than estimate counts do with users.

``MultiAttributeSW`` wraps one Square Wave + EMS estimator per attribute
behind that splitting strategy and reconstructs every marginal. It
implements the :class:`repro.api.Estimator` lifecycle (kind
``"marginals"``): the aggregation state is the per-attribute count vectors
of the wrapped estimators, so shards stream, ``merge`` exactly, and
serialize through ``to_state()``/``from_state()``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.base import Estimator
from repro.api.errors import EmptyAggregateError
from repro.core.pipeline import SWEstimator
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["MultiAttributeReports", "MultiAttributeSW", "split_population"]


def split_population(n: int, k: int, rng: RngLike = None) -> np.ndarray:
    """Assign each of ``n`` users one of ``k`` slots uniformly at random.

    The standard multi-attribute LDP recipe (Section 4.2 rationale): each
    user spends their whole budget on a single attribute/slot, because LDP
    noise scales much worse with epsilon than estimate counts do with users.
    Used by :class:`MultiAttributeSW` and by population-split task sessions
    (:mod:`repro.tasks.session`).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return as_generator(rng).integers(0, k, size=n)


@dataclass(frozen=True)
class MultiAttributeReports:
    """Reports from one multi-attribute collection round."""

    attribute: np.ndarray  # which attribute each user reported
    value: np.ndarray  # the SW-randomized report

    def __post_init__(self) -> None:
        if self.attribute.shape != self.value.shape or self.attribute.ndim != 1:
            raise ValueError("attribute and value must be equal-length 1-d arrays")

    @property
    def n(self) -> int:
        return int(self.attribute.size)


class MultiAttributeSW(Estimator):
    """SW + EMS marginal estimation over ``k`` numerical attributes.

    Parameters
    ----------
    epsilon:
        Whole per-user budget (spent on a single attribute's report).
    n_attributes:
        Number of attributes ``k``; every user holds a value for each.
    d:
        Histogram granularity per attribute (shared).
    kwargs:
        Forwarded to each underlying :class:`SWEstimator`.
    """

    name = "sw-multi"
    kind = "marginals"
    wire_codec = "multi"

    def __init__(self, epsilon: float, n_attributes: int, d: int = 256, **kwargs) -> None:
        self.epsilon = check_epsilon(epsilon)
        if n_attributes < 1:
            raise ValueError(f"n_attributes must be >= 1, got {n_attributes}")
        self.n_attributes = int(n_attributes)
        self.d = check_domain_size(d)
        self._kwargs = dict(kwargs)
        self._estimators = [
            SWEstimator(epsilon, d, **kwargs) for _ in range(self.n_attributes)
        ]

    def _check_matrix(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.n_attributes:
            raise ValueError(
                f"values must have shape (n, {self.n_attributes}), got {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise ValueError("values must contain at least one user")
        if not np.isfinite(arr).all() or arr.min() < 0 or arr.max() > 1:
            raise ValueError("values must be finite and in [0, 1]")
        return arr

    # -- lifecycle ---------------------------------------------------------
    def privatize(self, values: np.ndarray, rng: RngLike = None) -> MultiAttributeReports:
        """Assign each user one attribute and randomize that value.

        ``values`` is an ``(n, k)`` matrix; only column ``attribute[i]`` of
        row ``i`` influences the report, so the other attributes never
        touch the mechanism (clean per-user privacy accounting).
        """
        arr = self._check_matrix(values)
        gen = as_generator(rng)
        n = arr.shape[0]
        assignment = split_population(n, self.n_attributes, gen)
        reports = np.empty(n, dtype=np.float64)
        for a in range(self.n_attributes):
            mask = assignment == a
            if mask.any():
                reports[mask] = self._estimators[a].privatize(arr[mask, a], rng=gen)
        return MultiAttributeReports(attribute=assignment, value=reports)

    def ingest(self, reports: MultiAttributeReports) -> None:
        """Fold one batch into the per-attribute count vectors."""
        for a, estimator in enumerate(self._estimators):
            mask = reports.attribute == a
            estimator.ingest(reports.value[mask])

    def estimate(self) -> list[np.ndarray]:
        """Reconstruct every attribute's marginal from all ingested reports.

        All attributes share one channel (identical mechanism parameters),
        so the reconstructions are stacked into one ``(d_out, k)`` count
        matrix and solved in a single batched EM/EMS call through
        :mod:`repro.engine` — whole-batch products (the structured Square
        Wave operator by default, BLAS matmuls under the dense channel
        mode) instead of ``k`` sequential solver loops. Per-attribute
        diagnostics still land on each wrapped estimator's ``result_``.

        Attributes that received no reports get the uniform fallback (and a
        diagnostic ``result_`` of ``None``).
        """
        if self.n_reports == 0:
            raise EmptyAggregateError("no reports ingested yet")
        out: list[np.ndarray] = [
            np.full(self.d, 1.0 / self.d) for _ in range(self.n_attributes)
        ]
        active = [
            a for a, est in enumerate(self._estimators) if est.n_reports > 0
        ]
        for a, estimator in enumerate(self._estimators):
            if a not in active:
                estimator.result_ = None
        lead = self._estimators[active[0]]
        counts = np.stack(
            [self._estimators[a]._counts for a in active], axis=1
        )
        batch = lead.config.run_many(
            lead.channel, counts, lead.epsilon, validated=True
        )
        for column, a in enumerate(active):
            result = batch.column(column)
            self._estimators[a].result_ = result
            out[a] = result.estimate
        return out

    def reset(self) -> None:
        for estimator in self._estimators:
            estimator.reset()

    @property
    def n_reports(self) -> int:
        """Reports ingested across all attributes."""
        return sum(estimator.n_reports for estimator in self._estimators)

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "MultiAttributeSW") -> None:
        for mine, theirs in zip(self._estimators, other._estimators, strict=True):
            mine.merge(theirs)

    def _params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "n_attributes": self.n_attributes,
            "d": self.d,
            **self._kwargs,
        }

    def _state(self) -> dict:
        return {"attributes": [est._state() for est in self._estimators]}

    def _load_state(self, state: dict) -> None:
        shards = state["attributes"]
        if len(shards) != self.n_attributes:
            raise ValueError(
                f"state must carry {self.n_attributes} attribute shards, "
                f"got {len(shards)}"
            )
        for estimator, shard in zip(self._estimators, shards, strict=True):
            estimator._load_state(shard)

    def _repr_fields(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "n_attributes": self.n_attributes,
            "d": self.d,
        }

    @property
    def estimators(self) -> list[SWEstimator]:
        """Per-attribute estimators (diagnostics live on each)."""
        return list(self._estimators)
