"""Deterministic fault injection and retry policy for the service tier.

Fault tolerance that is not *testable* is a hope, not a property. This
module gives the test suite (and the chaos-smoke CI job) a seeded,
deterministic way to break the service at its real seams:

* :class:`FaultPlan` — a set of :class:`Fault` rules attached to named
  injection **sites** the production code consults at its critical
  points (``journal.append.before``/``.after``, ``journal.truncate``,
  ``meta.commit.before``/``.after``, ``shard.fold``, ``http.drop``,
  ``http.delay``). Each rule fires on an exact hit count (``at=``), a
  cadence (``every=``), or a seeded coin (``prob=``); the coin is a pure
  function of ``(seed, site, hit index)``, so a failing chaos run replays
  bit-identically from its seed — no hidden RNG state, no flaky repro.
* :exc:`InjectedCrash` — raised by crash sites. It derives from
  ``BaseException`` deliberately: the service's broad ``except
  Exception`` error accounting must *not* be able to absorb a simulated
  process death, exactly as a real ``kill -9`` would not be absorbed.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter and a bounded attempt budget. This replaces the loadgen's old
  hand-rolled linear sleep; with idempotency keys attached by the
  uploader, a timeout-then-retry through this policy is exactly-once end
  to end.

Nothing here imports the rest of the service: the plan is plumbed in via
:class:`~repro.service.config.ServiceConfig`, and a ``None`` plan costs
one attribute load per site check on the hot path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAULT_SITES",
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "RetryPolicy",
]

#: The injection sites the production code consults. Kept as one tuple so
#: tests (and ``Fault`` validation) can't drift from the seams that exist.
FAULT_SITES = (
    "journal.append.before",  # crash before a shard journal record is written
    "journal.append.after",  # crash after the record, before the meta commit
    "journal.truncate",  # write only part of a record, then crash (torn tail)
    "meta.commit.before",  # crash before the upload's commit record
    "meta.commit.after",  # crash after commit, before enqueue/ack
    "shard.fold",  # crash a shard worker mid-fold (kills the drain thread)
    "http.drop",  # close the connection instead of writing the response
    "http.delay",  # delay the response by Fault.delay seconds
)


class InjectedFault(BaseException):
    """Base of all injected faults.

    A ``BaseException`` on purpose: the service counts and survives real
    ``Exception`` failures, and a simulated crash must punch through that
    accounting the way ``SIGKILL`` punches through a real deployment.
    """


class InjectedCrash(InjectedFault):
    """A simulated process/thread death at an injection site."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected crash at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit


def _unit(seed: int, site: str, hit: int) -> float:
    """Deterministic uniform in [0, 1) from (seed, site, hit)."""
    h = blake2b(digest_size=8)
    h.update(str(int(seed)).encode("ascii"))
    h.update(site.encode("utf-8"))
    h.update(str(int(hit)).encode("ascii"))
    return int.from_bytes(h.digest(), "little") / 2.0**64


@dataclass(frozen=True)
class Fault:
    """One injection rule bound to a named site.

    Exactly one trigger must be set: ``at`` fires on the ``at``-th hit of
    the site (1-based), ``every`` fires on every ``every``-th hit, and
    ``prob`` flips the seeded per-hit coin. ``times`` caps the total
    number of firings (``None`` = unlimited); ``delay`` is the injected
    latency for ``http.delay``; ``keep_bytes`` is how much of the record
    a ``journal.truncate`` firing actually writes before crashing
    (``None`` = half the record).
    """

    site: str
    at: int | None = None
    every: int | None = None
    prob: float | None = None
    times: int | None = 1
    delay: float = 0.0
    keep_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {FAULT_SITES}"
            )
        triggers = sum(x is not None for x in (self.at, self.every, self.prob))
        if triggers != 1:
            raise ValueError(
                "exactly one of at=/every=/prob= must be set, "
                f"got {triggers} on site {self.site!r}"
            )
        if self.at is not None and self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.prob is not None and not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.keep_bytes is not None and self.keep_bytes < 0:
            raise ValueError(f"keep_bytes must be >= 0, got {self.keep_bytes}")

    def _matches(self, seed: int, hit: int, fired: int) -> bool:
        if self.times is not None and fired >= self.times:
            return False
        if self.at is not None:
            return hit == self.at
        if self.every is not None:
            return hit % self.every == 0
        assert self.prob is not None
        return _unit(seed, self.site, hit) < self.prob


class FaultPlan:
    """A seeded, deterministic set of faults over the injection sites.

    Thread-safe: sites are hit from the submit thread, shard workers, and
    the event loop. Hit counters are per-site and monotonically increase;
    given the same sequence of site hits, the same plan fires the same
    faults — the whole point of seeding.
    """

    def __init__(self, faults: Any = (), *, seed: int = 0) -> None:
        self.faults = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"faults must be Fault instances, got {fault!r}")
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._log: list[tuple[str, int]] = []

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, faults={len(self.faults)}, "
            f"fired={len(self._log)})"
        )

    # -- site protocol -----------------------------------------------------
    def check(self, site: str) -> Fault | None:
        """Record one hit of ``site``; return the fault that fires, if any."""
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for index, fault in enumerate(self.faults):
                if fault.site != site:
                    continue
                if fault._matches(self.seed, hit, self._fired.get(index, 0)):
                    self._fired[index] = self._fired.get(index, 0) + 1
                    self._log.append((site, hit))
                    return fault
            return None

    def crash(self, site: str) -> None:
        """Raise :exc:`InjectedCrash` if a fault fires at ``site``."""
        fault = self.check(site)
        if fault is not None:
            raise InjectedCrash(site, self._hits[site])

    def fires(self, site: str) -> bool:
        """Whether a fault fires at this hit of ``site``."""
        return self.check(site) is not None

    def delay_for(self, site: str) -> float:
        """Injected delay (seconds) for this hit of ``site``; 0.0 if none."""
        fault = self.check(site)
        return 0.0 if fault is None else fault.delay

    def truncation(self, site: str, full_length: int) -> int | None:
        """Bytes to keep of a torn write, or ``None`` when no fault fires."""
        fault = self.check(site)
        if fault is None:
            return None
        keep = fault.keep_bytes if fault.keep_bytes is not None else full_length // 2
        return min(keep, full_length)

    # -- observability -----------------------------------------------------
    @property
    def fired(self) -> tuple[tuple[str, int], ...]:
        """``(site, hit)`` pairs of every fault fired so far, in order."""
        with self._lock:
            return tuple(self._log)

    def hits(self) -> dict[str, int]:
        """Hit counters per site (including hits that fired nothing)."""
        with self._lock:
            return dict(self._hits)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(max_delay, base_delay * multiplier**attempt)`` shrunk by up to
    ``jitter * 100`` percent, where the shrink factor is a pure function
    of ``(seed, attempt)`` — two runs with the same seed back off on the
    same schedule, so a chaos test that depends on retry timing replays
    exactly. A server-supplied ``Retry-After`` takes precedence when it
    asks for a *longer* wait (never shorter: the server knows its queue).

    ``attempts`` is the total budget — the number of tries, not retries.
    """

    attempts: int = 8
    base_delay: float = 0.01
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0.0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, *, retry_after: float | None = None) -> float:
        """Backoff before retry number ``attempt`` (0-based), in seconds."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = self.base_delay * self.multiplier ** min(attempt, 63)
        capped = min(self.max_delay, raw)
        backoff = capped * (1.0 - self.jitter * _unit(self.seed, "retry", attempt))
        if retry_after is not None and retry_after > backoff:
            return float(retry_after)
        return backoff

    def schedule(self) -> list[float]:
        """The full deterministic backoff schedule (one entry per retry)."""
        return [self.delay(attempt) for attempt in range(self.attempts - 1)]


# Default policy the loadgen uses when none is supplied: generous budget,
# fast initial retry (ingest queues drain in milliseconds), capped so a
# saturated service is probed about once a second.
DEFAULT_RETRY_POLICY = RetryPolicy(
    attempts=200, base_delay=0.004, max_delay=1.0, multiplier=2.0, jitter=0.5
)
