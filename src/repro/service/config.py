"""Configuration for the sharded collection service.

A :class:`ServiceConfig` binds one :class:`~repro.tasks.plan.AnalysisPlan`
to the deployment knobs of :mod:`repro.service`: how many shard
aggregators to run, how deep each shard's ingest queue is (the
backpressure bound — the whole point is that the ingest tier never holds
more than ``n_shards * queue_depth`` undecoded blocks), how large one
upload may be, and which compute backend each shard's solves run on.

The plan is resolved once (:func:`~repro.tasks.planner.plan_analysis`)
and the resulting :class:`~repro.tasks.planner.PlannedAnalysis` is shared
by every shard, so all shards build identically-configured estimators —
the precondition for exact merges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.service.faults import FaultPlan
from repro.service.resilience import FSYNC_POLICIES
from repro.tasks.plan import AnalysisPlan, load_plan
from repro.tasks.planner import PlannedAnalysis, plan_analysis

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_DEDUP_CAPACITY",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_HEADER_BYTES",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_READ_TIMEOUT",
    "ServiceConfig",
]

#: Per-shard ingest queue bound (pending blocks, not reports). Deep enough
#: to ride out a solve hiccup, shallow enough that ingest-tier memory stays
#: a small multiple of one upload.
DEFAULT_QUEUE_DEPTH = 64

#: Largest accepted upload body. Bounds per-request ingest memory; clients
#: with more reports send more frames.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted request head (request line + headers). Oversized heads
#: are rejected with 431 before any body is read.
DEFAULT_MAX_HEADER_BYTES = 32 * 1024

#: Per-request read timeout (seconds). A client that stalls mid-request —
#: slow-loris style — gets a 408 and its connection closed, instead of
#: pinning a keep-alive slot forever.
DEFAULT_READ_TIMEOUT = 30.0

#: Checkpoint cadence: one state checkpoint per this many accepted uploads
#: per journal. Bounds the journal tail that recovery must replay.
DEFAULT_CHECKPOINT_EVERY = 256

#: Bound on the idempotency ledger. Must cover at least the post-checkpoint
#: replay window (``checkpoint_every``) so recovery never forgets a key a
#: client might still retry.
DEFAULT_DEDUP_CAPACITY = 65536


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment shape of one collection service.

    Parameters
    ----------
    plan:
        The analysis plan every round of this service collects for.
    n_shards:
        Number of shard aggregators; ``(round, attr)`` keys are spread
        over them by the consistent ring of :mod:`repro.service.sharding`.
    queue_depth:
        Bound on each shard's pending-block queue; submissions that would
        exceed it are rejected whole (HTTP 429), never partially applied.
    max_body_bytes:
        Largest accepted upload body, enforced before the body is read.
    backends:
        Compute-backend spec per shard (see
        :func:`repro.engine.backend.make_backend`): a single spec string
        applies to every shard, a sequence assigns one per shard index,
        ``None`` uses the process-wide active backend everywhere. The
        estimate tier runs each attribute's solve on its home shard's
        backend.
    incremental:
        Forwarded to the estimate tier's merged
        :class:`~repro.protocol.server.CollectionServer` objects — keeps
        warm-start behaviour on by default.
    window / decay:
        Continuous-collection mode (mutually exclusive). ``window=W``
        keeps a sliding window of the last ``W`` advanced rounds per
        attribute; ``decay=gamma`` keeps an exponentially-forgotten
        aggregate. Either enables
        :meth:`~repro.service.core.ShardedCollector.advance_window` and
        the ``/v1/rounds/{round}/advance`` + ``/v1/stream/estimate``
        routes; with both unset the service is one-shot only.
    host, port:
        Bind address for :func:`repro.service.http.serve`. Port ``0``
        picks a free port (the bound address is reported back).
    journal_dir:
        Directory for the durable ingest journals. ``None`` (default)
        disables journaling entirely — state is memory-only, as before.
        When set, accepted blocks are written to per-shard write-ahead
        logs plus a collector-level commit log *before* they are acked,
        and a restarted service recovers bit-identical state from them.
    journal_fsync:
        Fsync policy for the journals: ``"always"`` (fsync per record),
        ``"checkpoint"`` (fsync at checkpoints, OS-flush per record —
        the default), or ``"never"``.
    checkpoint_every:
        Accepted uploads between automatic state checkpoints. Bounds
        recovery replay time; only meaningful with ``journal_dir``.
    dedup_capacity:
        Bound on the idempotency ledger (entries). Must be at least
        ``checkpoint_every`` so the post-checkpoint replay window is
        always covered by remembered keys.
    read_timeout:
        Per-request HTTP read timeout (seconds); stalled clients get
        ``408`` and a closed connection.
    max_header_bytes:
        Largest accepted request head; larger heads get ``431``.
    faults:
        Optional :class:`~repro.service.faults.FaultPlan` injected into
        the journal/shard/HTTP seams. Test and chaos-CI use only; never
        part of config equality.
    """

    plan: AnalysisPlan
    n_shards: int = 2
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    backends: str | Sequence[str | None] | None = None
    incremental: bool = True
    window: int | None = None
    decay: float | None = None
    host: str = "127.0.0.1"
    port: int = 0
    journal_dir: str | Path | None = None
    journal_fsync: str = "checkpoint"
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    dedup_capacity: int = DEFAULT_DEDUP_CAPACITY
    read_timeout: float = DEFAULT_READ_TIMEOUT
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES
    faults: FaultPlan | None = field(default=None, repr=False, compare=False)
    _planned: PlannedAnalysis | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.window is not None and self.decay is not None:
            raise ValueError("window and decay are mutually exclusive")
        if self.window is not None:
            object.__setattr__(self, "window", int(self.window))
            if self.window < 1:
                raise ValueError(f"window must be >= 1, got {self.window}")
        if self.decay is not None:
            object.__setattr__(self, "decay", float(self.decay))
            if not 0.0 < self.decay < 1.0:
                raise ValueError(f"decay must be in (0, 1), got {self.decay}")
        if self.journal_dir is not None:
            object.__setattr__(self, "journal_dir", Path(self.journal_dir))
        if self.journal_fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"journal_fsync must be one of {FSYNC_POLICIES}, "
                f"got {self.journal_fsync!r}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.dedup_capacity < self.checkpoint_every:
            raise ValueError(
                f"dedup_capacity ({self.dedup_capacity}) must be >= "
                f"checkpoint_every ({self.checkpoint_every}) so the replay "
                "window after recovery stays covered by remembered keys"
            )
        if self.read_timeout <= 0.0:
            raise ValueError(
                f"read_timeout must be > 0, got {self.read_timeout}"
            )
        if self.max_header_bytes < 1024:
            raise ValueError(
                f"max_header_bytes must be >= 1024, got {self.max_header_bytes}"
            )
        if not isinstance(self.backends, (str, type(None))):
            specs = tuple(self.backends)
            if len(specs) != self.n_shards:
                raise ValueError(
                    f"backends lists {len(specs)} specs for {self.n_shards} "
                    "shards; pass one spec string to share a backend"
                )
            object.__setattr__(self, "backends", specs)

    @classmethod
    def from_plan_file(cls, path: str | Path, **kwargs) -> "ServiceConfig":
        """Build a config from a plan JSON/TOML file plus keyword knobs."""
        return cls(plan=load_plan(path), **kwargs)

    @property
    def windowed(self) -> bool:
        """Whether continuous-collection (window or decay) mode is on."""
        return self.window is not None or self.decay is not None

    @property
    def planned(self) -> PlannedAnalysis:
        """The resolved plan, computed once and shared by every shard."""
        if self._planned is None:
            object.__setattr__(self, "_planned", plan_analysis(self.plan))
        assert self._planned is not None
        return self._planned

    def backend_spec(self, shard: int) -> str | None:
        """The compute-backend spec shard ``shard`` solves on."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        if self.backends is None or isinstance(self.backends, str):
            return self.backends
        return self.backends[shard]
