"""Asyncio HTTP/1.1 front end for the sharded collection service.

A deliberately small server on ``asyncio.start_server`` — the wire
surface is four routes, so a framework would be all dependency and no
leverage:

* ``POST /v1/rounds/{round}/reports`` — upload one RPF2 frame
  (``application/x-repro-frame`` / ``application/octet-stream``) or
  JSON-lines batch (anything else). ``202`` with the accepted report
  count, ``200`` when an ``Idempotency-Key`` (or identical content)
  replays an already-accepted upload, ``400`` on a malformed or
  mismatched feed, ``409`` when an idempotency key is reused for
  different bytes, ``413`` past the body limit, ``429`` when
  backpressure rejects the upload whole. Every upload is idempotent:
  the key is the ``Idempotency-Key`` header when given, else the body's
  content digest — so a client that times out and retries can never
  double-ingest.
* ``POST`` (or ``GET``) ``/v1/rounds/{round}/estimate`` — drain, merge,
  and solve the round. ``200`` with per-attribute estimates/errors and
  the plan-level report, ``404`` for a round no upload ever touched.
* ``POST /v1/rounds/{round}/advance`` — windowed deployments only: fold
  the completed round into the continuous window
  (:meth:`~repro.service.core.ShardedCollector.advance_window`). ``200``
  with the tick result, ``404`` for an untouched round, ``409`` when the
  round was already advanced, ``400`` when the service is one-shot.
* ``GET /v1/stream/estimate`` — latest windowed estimates plus the
  per-window privacy audit; ``404`` before the first advance.
* ``GET /healthz`` — liveness.
* ``GET /statz`` — per-shard counters, queue depths, merge latencies.

The event loop only parses requests and writes responses. Everything
that can block — feed validation + enqueue, and the merge/solve of an
estimate — is pushed off the loop: submissions onto a dedicated
single-thread executor (serializing them is what makes the collector's
all-or-nothing capacity check sound), solves onto a separate executor so
a long EM run cannot stall ingest. ``repro.devtools`` rule SVC001 lints
this property.

Hardening: each request's head+body must arrive within
``config.read_timeout`` seconds (``408`` and the connection closes — a
slow-loris client cannot pin a connection slot), request heads larger
than ``config.max_header_bytes`` get ``431``, and oversized bodies are
rejected with ``413`` before they are read. A configured
:class:`~repro.service.faults.FaultPlan` can drop connections
(``http.drop``) or delay responses (``http.delay``) for chaos testing.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable

from repro.protocol.frames import frame_digest
from repro.service.config import ServiceConfig
from repro.service.core import ServiceOverloadError, ShardedCollector
from repro.service.resilience import IdempotencyConflictError

__all__ = ["ReportService", "ServiceHandle", "serve", "start_local_service"]

_FRAME_TYPES = ("application/x-repro-frame", "application/octet-stream")


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


def _response(
    status: int,
    payload: dict[str, Any],
    *,
    retry_after: int | None = None,
    close: bool = False,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    if retry_after is not None:
        headers.append(f"Retry-After: {retry_after}")
    headers.append("Connection: close" if close else "Connection: keep-alive")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


class ReportService:
    """The asyncio server wrapping one :class:`ShardedCollector`."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.collector = ShardedCollector(config)
        # One thread: submissions are serialized, so the collector's
        # capacity check stays all-or-nothing (workers only free slots).
        self._submit_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-submit"
        )
        # Solves run elsewhere so a slow merge/EM never blocks ingest.
        self._solve_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            # The stream limit bounds readuntil(); keep it just above the
            # header cap so an oversized head overruns into a clean 431.
            limit=self.config.max_header_bytes + 4096,
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close lingering keep-alive connections and wait for their
        # handler tasks, so no transport outlives the event loop.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._submit_pool.shutdown(wait=True)
        self._solve_pool.shutdown(wait=True)
        self.collector.close()

    # -- request plumbing --------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            raise _HttpError(431, "request head too large") from None
        if len(head) > self.config.max_header_bytes:
            raise _HttpError(431, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {lines[0]!r}") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte upload limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        faults = self.config.faults
        try:
            while True:
                try:
                    # One budget for the whole request (head + body): a
                    # slow-loris peer times out here with 408 while other
                    # keep-alive connections proceed on the event loop.
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.config.read_timeout,
                    )
                except asyncio.TimeoutError:
                    writer.write(
                        _response(
                            408,
                            {
                                "error": "request not received within "
                                f"{self.config.read_timeout}s"
                            },
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                except _HttpError as exc:
                    writer.write(
                        _response(exc.status, {"error": str(exc)}, close=True)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                try:
                    status, payload, retry = await self._route(
                        method, target, headers, body
                    )
                except _HttpError as exc:
                    status, payload, retry = exc.status, {"error": str(exc)}, None
                except Exception as exc:  # never kill the connection loop
                    status, payload, retry = (
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        None,
                    )
                if faults is not None:
                    delay = faults.delay_for("http.delay")
                    if delay > 0.0:
                        await asyncio.sleep(delay)
                    if faults.fires("http.drop"):
                        break  # simulate the response lost on the wire
                writer.write(_response(status, payload, retry_after=retry))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # -- routes ------------------------------------------------------------
    def _round_route(self, target: str) -> tuple[str, str] | None:
        parts = target.split("?", 1)[0].strip("/").split("/")
        if len(parts) == 4 and parts[0] == "v1" and parts[1] == "rounds":
            return parts[2], parts[3]
        return None

    async def _route(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any], int | None]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return 200, {"status": "ok", "rounds": self.collector.rounds()}, None
        if path == "/statz":
            if method != "GET":
                raise _HttpError(405, "statz is GET-only")
            return 200, self.collector.stats(), None
        if path == "/v1/stream/estimate":
            if method != "GET":
                raise _HttpError(405, "stream estimate is GET-only")
            return await self._handle_stream_estimate()
        matched = self._round_route(target)
        if matched is None:
            raise _HttpError(404, f"no route {path!r}")
        round_id, action = matched
        if action == "reports":
            if method != "POST":
                raise _HttpError(405, "reports accepts POST only")
            return await self._handle_reports(round_id, headers, body)
        if action == "estimate":
            if method not in ("POST", "GET"):
                raise _HttpError(405, "estimate accepts POST or GET")
            return await self._handle_estimate(round_id)
        if action == "advance":
            if method != "POST":
                raise _HttpError(405, "advance accepts POST only")
            return await self._handle_advance(round_id)
        raise _HttpError(404, f"no round action {action!r}")

    async def _handle_reports(
        self, round_id: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any], int | None]:
        if not body:
            raise _HttpError(400, "upload body is empty")
        content_type = headers.get("content-type", "").split(";")[0].strip()
        feed: bytes | str = body
        if content_type and content_type not in _FRAME_TYPES:
            try:
                feed = body.decode("utf-8")
            except UnicodeDecodeError:
                raise _HttpError(
                    400, f"{content_type!r} body is not valid UTF-8"
                ) from None
        # Exactly-once contract: the client's Idempotency-Key when given,
        # the body's content digest otherwise. A replayed upload is acked
        # again (200) with its original count and nothing is re-ingested.
        key = headers.get("idempotency-key", "").strip() or frame_digest(body)
        loop = asyncio.get_running_loop()
        try:
            receipt = await loop.run_in_executor(
                self._submit_pool,
                functools.partial(
                    self.collector.submit, feed, round_id, key=key
                ),
            )
        except ServiceOverloadError as exc:
            return 429, {"error": str(exc)}, 1
        except IdempotencyConflictError as exc:
            raise _HttpError(409, str(exc)) from None
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        status = 200 if receipt.replayed else 202
        return status, receipt.to_dict(), None

    async def _handle_estimate(
        self, round_id: str
    ) -> tuple[int, dict[str, Any], int | None]:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._solve_pool, self.collector.estimate, round_id
            )
        except LookupError as exc:
            raise _HttpError(404, str(exc)) from None
        return 200, result, None

    async def _handle_advance(
        self, round_id: str
    ) -> tuple[int, dict[str, Any], int | None]:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._solve_pool, self.collector.advance_window, round_id
            )
        except LookupError as exc:
            raise _HttpError(404, str(exc)) from None
        except ValueError as exc:
            raise _HttpError(409, str(exc)) from None
        except RuntimeError as exc:
            raise _HttpError(400, str(exc)) from None
        return 200, result, None

    async def _handle_stream_estimate(
        self,
    ) -> tuple[int, dict[str, Any], int | None]:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._solve_pool, self.collector.window_estimate
            )
        except LookupError as exc:
            raise _HttpError(404, str(exc)) from None
        except RuntimeError as exc:
            raise _HttpError(400, str(exc)) from None
        return 200, result, None


async def serve(config: ServiceConfig, *, ready: Callable[[str, int], Any] | None = None) -> None:
    """Run the service until cancelled (the ``repro serve`` entry point)."""
    service = ReportService(config)
    host, port = await service.start()
    if ready is not None:
        ready(host, port)
    try:
        assert service._server is not None
        await service._server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()


class ServiceHandle:
    """A service running on a background event-loop thread (tests, examples).

    Use :func:`start_local_service`; close with :meth:`close` (or as a
    context manager). ``host``/``port`` are the bound address.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.service = ReportService(config)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.host: str = ""
        self.port: int = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("service failed to start within 10s")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            self.host, self.port = await self.service.start()
            self._started.set()

        self._loop.run_until_complete(boot())
        self._loop.run_forever()
        self._loop.run_until_complete(self.service.stop())
        self._loop.close()

    @property
    def collector(self) -> ShardedCollector:
        return self.service.collector

    def run(self, coro: Awaitable[Any]) -> Any:
        """Run a coroutine on the service loop from the calling thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self) -> None:
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def start_local_service(config: ServiceConfig) -> ServiceHandle:
    """Start a service on a background thread; returns its handle."""
    return ServiceHandle(config)
