"""Durable ingest journals, checkpoints, and idempotent-upload machinery.

Everything the fault-tolerant collector leans on lives here, as plain
file-format + ledger primitives with no service state of their own:

* :class:`ShardJournal` — a per-shard append-only write-ahead log of
  accepted wire blocks. Each record is a length-prefixed envelope
  (``u32 length | 16-byte BLAKE2b digest | u16 key length | key |
  RPF2 segment``) whose payload is a standalone single-block frame
  (:func:`repro.protocol.frames.encode_frame_block`), so replay decodes
  through the exact same codec path live ingest uses. A torn tail —
  short record, short header, digest mismatch — terminates replay at the
  last good offset instead of corrupting state; the fsync policy
  (``"always"``/``"checkpoint"``/``"never"``) trades durability window
  for append latency.

* :class:`MetaJournal` — the collector-level commit log. An upload is
  *accepted* only once its ``commit`` record (idempotency key, content
  digest, accepted count, round) lands here, strictly after its blocks
  hit the shard journals. Recovery treats shard-journal records whose
  key never committed as a rolled-back upload and skips them — which is
  what makes a crash *between* journal append and commit safe: the
  client saw no ack, retries with the same key, and the retry is
  ingested exactly once. ``advance`` records capture windowed-mode round
  advances together with the per-shard journal offsets at advance time,
  so streaming recovery can replay ticks at their original boundaries.

* :class:`DedupLedger` — the bounded in-memory idempotency ledger
  consulted inside the all-or-nothing capacity check. A repeated key
  with the same content digest is a **replay** (acked again with the
  original count, nothing ingested); the same key over different bytes
  is a **conflict** (:exc:`IdempotencyConflictError`, HTTP 409).

* :func:`write_checkpoint` / :func:`load_checkpoint` — atomically
  written per-shard state snapshots (the estimators' ``to_state()``
  payloads plus the journal offset they cover), so recovery replays only
  the journal tail. Atomicity is the standard tmp-file + ``os.replace``
  dance with an fsync before the rename.

The bit-identity argument, in one place: per shard, live fold order is
submission order (one serialized submit thread appends, one worker
drains FIFO), journal append order *is* submission order, and recovery
folds checkpoint-state + committed tail records in journal order —
identical sequences of identical block folds produce bit-identical
estimator states, and identical states solve to bit-identical estimates.
"""

from __future__ import annotations

import json
import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Any, Iterator

from repro.service.faults import FaultPlan, InjectedCrash

__all__ = [
    "DedupLedger",
    "FSYNC_POLICIES",
    "IdempotencyConflictError",
    "IngestReceipt",
    "JournalRecord",
    "MetaJournal",
    "ShardJournal",
    "load_checkpoint",
    "write_checkpoint",
]

#: When journal appends reach the disk platter. ``"always"`` fsyncs every
#: record (zero-loss, slowest); ``"checkpoint"`` fsyncs at checkpoints and
#: flushes the OS buffer per record (loses at most the post-checkpoint
#: window on *power* failure, nothing on process crash); ``"never"`` leaves
#: it to the OS entirely.
FSYNC_POLICIES = ("always", "checkpoint", "never")

_RECORD_HEAD = struct.Struct("<I16s")
_KEY_LEN = struct.Struct("<H")

#: Ceiling on one journal record's envelope; mirrors the upload body limit
#: plus headroom. Anything larger is a corrupt length field.
_MAX_RECORD_BYTES = 64 * 1024 * 1024


class IdempotencyConflictError(RuntimeError):
    """The same idempotency key was reused for different content (409)."""


@dataclass(frozen=True)
class IngestReceipt:
    """What one upload resolved to: accepted fresh, or acked as a replay."""

    round_id: str
    key: str
    digest: str
    accepted: int
    replayed: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "round": self.round_id,
            "key": self.key,
            "accepted": self.accepted,
            "replayed": self.replayed,
        }


@dataclass(frozen=True)
class JournalRecord:
    """One replayed shard-journal record."""

    key: str
    segment: bytes
    end_offset: int


def _digest(payload: bytes) -> bytes:
    return blake2b(payload, digest_size=16).digest()


class ShardJournal:
    """Append-only write-ahead log of one shard's accepted wire blocks."""

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "checkpoint",
        faults: FaultPlan | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.faults = faults
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._closed = False

    @property
    def size(self) -> int:
        """Current journal end offset (bytes)."""
        self._file.flush()
        return self.path.stat().st_size

    def append(self, key: str, segment: bytes) -> int:
        """Append one record; returns the journal offset after it.

        The record is ``head | envelope`` where the head carries the
        envelope length and its BLAKE2b-128 digest. Fault sites fire
        around (and inside, for torn writes) the physical write.
        """
        if self._closed:
            raise RuntimeError("journal is closed")
        key_raw = key.encode("utf-8")
        envelope = _KEY_LEN.pack(len(key_raw)) + key_raw + segment
        record = _RECORD_HEAD.pack(len(envelope), _digest(envelope)) + envelope
        if self.faults is not None:
            self.faults.crash("journal.append.before")
            keep = self.faults.truncation("journal.truncate", len(record))
            if keep is not None:
                self._file.write(record[:keep])
                self._file.flush()
                raise InjectedCrash("journal.truncate", keep)
        self._file.write(record)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        if self.faults is not None:
            self.faults.crash("journal.append.after")
        return self._file.tell()

    def sync(self) -> None:
        """Flush and fsync the journal (the ``"checkpoint"`` policy hook)."""
        if not self._closed:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())

    def replay(self, start_offset: int = 0) -> Iterator[JournalRecord]:
        """Yield records from ``start_offset``; stop cleanly at a torn tail.

        A record that cannot be read whole — short head, short envelope,
        digest mismatch, or an absurd length field — is a crash-torn tail
        by construction (the file is append-only), so iteration ends at
        the last intact record rather than raising.
        """
        self._file.flush()
        with open(self.path, "rb") as handle:
            handle.seek(start_offset)
            offset = start_offset
            while True:
                head = handle.read(_RECORD_HEAD.size)
                if len(head) < _RECORD_HEAD.size:
                    return
                length, digest = _RECORD_HEAD.unpack(head)
                if length < _KEY_LEN.size or length > _MAX_RECORD_BYTES:
                    return
                envelope = handle.read(length)
                if len(envelope) < length or _digest(envelope) != digest:
                    return
                (key_len,) = _KEY_LEN.unpack_from(envelope)
                if _KEY_LEN.size + key_len > length:
                    return
                key = envelope[_KEY_LEN.size : _KEY_LEN.size + key_len].decode(
                    "utf-8"
                )
                segment = envelope[_KEY_LEN.size + key_len :]
                offset += _RECORD_HEAD.size + length
                yield JournalRecord(key=key, segment=segment, end_offset=offset)

    def good_offset(self, start_offset: int = 0) -> int:
        """Offset just past the last intact record (torn tail excluded)."""
        offset = start_offset
        for record in self.replay(start_offset):
            offset = record.end_offset
        return offset

    def truncate_to(self, offset: int) -> None:
        """Drop a crash-torn tail so new appends start at a record boundary."""
        self._file.flush()
        self._file.truncate(offset)
        self._file.seek(offset)
        if self.fsync != "never":
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.flush()
            self._file.close()


class MetaJournal:
    """Collector-level commit log: upload commits and window advances.

    JSON-lines with a per-line BLAKE2b digest prefix (``<hex> <json>``),
    so a torn final line is detected and dropped exactly like a torn
    shard-journal record. Compaction (:meth:`rewrite`) is atomic.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "checkpoint",
        faults: FaultPlan | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.faults = faults
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._closed = False

    @staticmethod
    def _line(record: dict[str, Any]) -> bytes:
        body = json.dumps(record, separators=(",", ":"), sort_keys=True)
        raw = body.encode("utf-8")
        return _digest(raw).hex().encode("ascii") + b" " + raw + b"\n"

    def append(self, record: dict[str, Any]) -> None:
        if self._closed:
            raise RuntimeError("meta journal is closed")
        self._file.write(self._line(record))
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())

    def commit(self, receipt: IngestReceipt) -> None:
        """Record one upload as durably accepted (fault sites around it)."""
        if self.faults is not None:
            self.faults.crash("meta.commit.before")
        self.append(
            {
                "kind": "commit",
                "key": receipt.key,
                "digest": receipt.digest,
                "round": receipt.round_id,
                "accepted": receipt.accepted,
            }
        )
        if self.faults is not None:
            self.faults.crash("meta.commit.after")

    def advance(self, round_id: str, offsets: list[int]) -> None:
        """Record one windowed-round advance at its journal boundaries."""
        self.append({"kind": "advance", "round": round_id, "offsets": offsets})

    def sync(self) -> None:
        if not self._closed:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())

    def read(self) -> list[dict[str, Any]]:
        """All intact records in append order (torn/corrupt lines dropped)."""
        self._file.flush()
        records: list[dict[str, Any]] = []
        with open(self.path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # torn tail
                prefix, _, raw = line.rstrip(b"\n").partition(b" ")
                if _digest(raw).hex().encode("ascii") != prefix:
                    break  # corruption implies everything after is suspect
                records.append(json.loads(raw.decode("utf-8")))
        return records

    def rewrite(self, records: list[dict[str, Any]]) -> None:
        """Atomically replace the log (checkpoint-time compaction)."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            for record in records:
                handle.write(self._line(record))
            handle.flush()
            if self.fsync != "never":
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._file.close()
        self._file = open(self.path, "ab")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.flush()
            self._file.close()


class DedupLedger:
    """Bounded idempotency ledger: key -> (content digest, receipt).

    LRU-bounded at ``capacity`` entries; a key older than the ledger's
    horizon is treated as new, so the exactly-once guarantee extends to
    the most recent ``capacity`` uploads — the config layer enforces
    ``capacity >= checkpoint_every`` so the replay window after recovery
    is always covered.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, IngestReceipt] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str, digest: str) -> IngestReceipt | None:
        """The replay receipt for ``key``, or ``None`` when unseen.

        Raises :exc:`IdempotencyConflictError` when the key is known but
        the content digest differs — a client bug worth failing loudly.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.digest != digest:
            raise IdempotencyConflictError(
                f"idempotency key {key!r} was first used for digest "
                f"{entry.digest!r} but this upload carries {digest!r}; "
                "keys must be unique per payload"
            )
        self._entries.move_to_end(key)
        return IngestReceipt(
            round_id=entry.round_id,
            key=entry.key,
            digest=entry.digest,
            accepted=entry.accepted,
            replayed=True,
        )

    def record(self, receipt: IngestReceipt) -> None:
        self._entries[receipt.key] = IngestReceipt(
            round_id=receipt.round_id,
            key=receipt.key,
            digest=receipt.digest,
            accepted=receipt.accepted,
            replayed=False,
        )
        self._entries.move_to_end(receipt.key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def receipts(self) -> list[IngestReceipt]:
        """Current entries, oldest first (checkpoint compaction order)."""
        return list(self._entries.values())


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------

_CHECKPOINT_VERSION = 1


def write_checkpoint(
    path: str | Path,
    *,
    journal_offset: int,
    states: dict[str, dict[str, Any]],
    counters: dict[str, int] | None = None,
) -> None:
    """Atomically write one shard's checkpoint.

    ``states`` maps ``round_id -> {attr: CollectionServer.to_state()}``;
    ``journal_offset`` is the shard-journal offset the states cover —
    recovery loads the states and replays strictly after it; ``counters``
    carries the shard's ingest counters at that point so observability
    survives restarts too. Written to a temp file, fsynced, then
    ``os.replace``d so a crash mid-checkpoint leaves the previous
    checkpoint intact.
    """
    path = Path(path)
    payload = {
        "version": _CHECKPOINT_VERSION,
        "journal_offset": int(journal_offset),
        "states": states,
        "counters": dict(counters or {}),
    }
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    body = _digest(raw).hex().encode("ascii") + b"\n" + raw
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> dict[str, Any] | None:
    """Load a checkpoint; ``None`` when absent or failing verification.

    A checkpoint that does not verify (torn, corrupt, wrong version) is
    treated as absent — recovery falls back to a full journal replay,
    trading time for correctness rather than trusting bad state.
    """
    path = Path(path)
    if not path.exists():
        return None
    raw = path.read_bytes()
    prefix, _, body = raw.partition(b"\n")
    if not body or _digest(body).hex().encode("ascii") != prefix:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _CHECKPOINT_VERSION
        or not isinstance(payload.get("journal_offset"), int)
        or not isinstance(payload.get("states"), dict)
    ):
        return None
    return payload
