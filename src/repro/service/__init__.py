"""Sharded async collection service over the protocol/tasks stack.

The deployment-shaped top layer: an asyncio HTTP/1.1 ingest front end
(:mod:`repro.service.http`) accepting RPF2 frame and JSON-lines uploads
with bounded-queue backpressure, a set of shard aggregators routed by a
consistent hash over ``(round, attr)`` (:mod:`repro.service.core`,
:mod:`repro.service.sharding`), a warm-start-aware merge/estimate tier
folding shard snapshots through a binary merge tree, and a load
harness that simulates millions of clients
(:mod:`repro.service.loadgen`). Run it from the CLI with
``python -m repro serve --plan plan.json`` and drive it with
``python -m repro loadgen``.
"""

from repro.service.config import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_QUEUE_DEPTH,
    ServiceConfig,
)
from repro.service.core import (
    ServiceOverloadError,
    ShardAggregator,
    ShardedCollector,
)
from repro.service.http import (
    ReportService,
    ServiceHandle,
    serve,
    start_local_service,
)
from repro.service.loadgen import (
    LoadReport,
    percentile,
    percentiles,
    run_load,
    synthesize_frames,
)
from repro.service.sharding import HashRing, merge_tree, stable_hash

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_QUEUE_DEPTH",
    "HashRing",
    "LoadReport",
    "ReportService",
    "ServiceConfig",
    "ServiceHandle",
    "ServiceOverloadError",
    "ShardAggregator",
    "ShardedCollector",
    "merge_tree",
    "percentile",
    "percentiles",
    "run_load",
    "serve",
    "start_local_service",
    "stable_hash",
    "synthesize_frames",
]
