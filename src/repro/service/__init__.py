"""Sharded async collection service over the protocol/tasks stack.

The deployment-shaped top layer: an asyncio HTTP/1.1 ingest front end
(:mod:`repro.service.http`) accepting RPF2 frame and JSON-lines uploads
with bounded-queue backpressure, a set of shard aggregators routed by a
consistent hash over ``(round, attr)`` (:mod:`repro.service.core`,
:mod:`repro.service.sharding`), a warm-start-aware merge/estimate tier
folding shard snapshots through a binary merge tree, and a load
harness that simulates millions of clients
(:mod:`repro.service.loadgen`). Run it from the CLI with
``python -m repro serve --plan plan.json`` and drive it with
``python -m repro loadgen``.

Fault tolerance rides on the same layers
(:mod:`repro.service.resilience`, :mod:`repro.service.faults`): durable
per-shard write-ahead journals with periodic checkpoints and
bit-identical crash recovery (``repro serve --journal-dir``, ``repro
recover``), idempotent uploads with replay acks, graceful degradation
around dead shards, and a seeded fault-injection harness that makes all
of it testable.
"""

from repro.service.config import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_DEDUP_CAPACITY,
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_HEADER_BYTES,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_READ_TIMEOUT,
    ServiceConfig,
)
from repro.service.core import (
    ServiceOverloadError,
    ShardAggregator,
    ShardedCollector,
)
from repro.service.faults import (
    DEFAULT_RETRY_POLICY,
    FAULT_SITES,
    Fault,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    RetryPolicy,
)
from repro.service.http import (
    ReportService,
    ServiceHandle,
    serve,
    start_local_service,
)
from repro.service.loadgen import (
    LoadReport,
    percentile,
    percentiles,
    run_load,
    synthesize_frames,
)
from repro.service.resilience import (
    DedupLedger,
    IdempotencyConflictError,
    IngestReceipt,
    MetaJournal,
    ShardJournal,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.sharding import HashRing, merge_tree, stable_hash

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_DEDUP_CAPACITY",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_HEADER_BYTES",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_READ_TIMEOUT",
    "DEFAULT_RETRY_POLICY",
    "DedupLedger",
    "FAULT_SITES",
    "Fault",
    "FaultPlan",
    "HashRing",
    "IdempotencyConflictError",
    "IngestReceipt",
    "InjectedCrash",
    "InjectedFault",
    "LoadReport",
    "MetaJournal",
    "ReportService",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceHandle",
    "ServiceOverloadError",
    "ShardAggregator",
    "ShardJournal",
    "ShardedCollector",
    "load_checkpoint",
    "merge_tree",
    "percentile",
    "percentiles",
    "run_load",
    "serve",
    "start_local_service",
    "stable_hash",
    "synthesize_frames",
    "write_checkpoint",
]
