"""Shard aggregators and the sharded collector behind the HTTP front end.

The ingest tier is a fixed set of :class:`ShardAggregator` workers. Each
owns the :class:`~repro.protocol.server.CollectionServer` aggregation
states for the ``(round, attr)`` keys the consistent ring
(:mod:`repro.service.sharding`) assigns it, plus one bounded queue of
pending wire blocks and one worker thread that drains it. Memory in this
tier is bounded by construction: a queue slot holds one decoded-columns
block (itself bounded by the upload size limit), aggregation state is
O(state) per key, and nothing ever concatenates a full feed.

:class:`ShardedCollector` is the coordinator. Uploads are validated and
split into per-shard block batches on the submitting thread; a batch is
accepted **all-or-nothing** — if any target shard's queue cannot take its
blocks, :class:`ServiceOverloadError` is raised (HTTP 429) and *no* block
is enqueued, so a retried upload can never double-count. The capacity
check is sound because submissions are serialized (the HTTP tier runs
them on one executor thread) while workers only ever *free* slots.

``estimate()`` is the merge tier: drain the queues, snapshot every
shard's states under their locks, fold per-attribute snapshots through
the binary :func:`~repro.service.sharding.merge_tree`, and rebind the
result into a persistent per-round server so the incremental posterior
cache survives re-merges — an unchanged round skips its solves, a grown
round warm-starts EM. Solves fan out per home shard through
:func:`~repro.protocol.server.estimate_rounds` with ``on_error="return"``,
so one empty attribute reports a structured error instead of hiding every
other attribute's result.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine.backend import ComputeBackend, make_backend
from repro.protocol.codecs import codec_for_estimator
from repro.protocol.frames import FrameBlock, is_frame, iter_frame_blocks
from repro.protocol.messages import FeedGroup, decode_feed_grouped
from repro.protocol.server import (
    CollectionServer,
    EstimateFailure,
    estimate_rounds,
)
from repro.service.config import ServiceConfig
from repro.service.sharding import HashRing, merge_tree
from repro.tasks.session import Session

__all__ = ["ServiceOverloadError", "ShardAggregator", "ShardedCollector"]


class ServiceOverloadError(RuntimeError):
    """An upload was rejected whole because a shard queue is full (429)."""


def _jsonify_estimate(value: Any) -> Any:
    """JSON-safe form of one attribute's reconstruction."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonify_estimate(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass
class _ShardCounters:
    """Mutable ingest counters, updated by the shard's worker thread."""

    blocks: int = 0
    reports: int = 0
    errors: int = 0
    last_error: str | None = None
    ingest_seconds: float = 0.0


class ShardAggregator:
    """One shard: a bounded block queue, a worker thread, and its servers."""

    def __init__(self, shard_id: int, config: ServiceConfig) -> None:
        self.shard_id = int(shard_id)
        self._config = config
        spec = config.backend_spec(self.shard_id)
        self.backend: ComputeBackend | None = (
            None if spec is None else make_backend(spec)
        )
        self._queue: queue.Queue[tuple[str, FrameBlock | FeedGroup] | None] = (
            queue.Queue(maxsize=config.queue_depth)
        )
        self._servers: dict[tuple[str, str], CollectionServer] = {}
        self._servers_lock = threading.Lock()
        self._counters = _ShardCounters()
        self._worker = threading.Thread(
            target=self._drain, name=f"repro-shard-{shard_id}", daemon=True
        )
        self._worker.start()

    # -- submission (called from the collector's submit thread) ------------
    def free_slots(self) -> int:
        """Queue slots currently open. Only workers free slots, so a
        capacity observed by the single submitting thread cannot shrink
        before its puts land."""
        return self._queue.maxsize - self._queue.qsize()

    def enqueue(self, block: FrameBlock | FeedGroup, round_id: str) -> None:
        try:
            self._queue.put_nowait((round_id, block))
        except queue.Full:
            # The collector checks capacity first; reaching this means the
            # all-or-nothing contract was violated upstream.
            raise ServiceOverloadError(
                f"shard {self.shard_id} queue overflowed past its capacity check"
            ) from None

    # -- worker ------------------------------------------------------------
    def _server_for(self, round_id: str, attr: str) -> CollectionServer:
        key = (round_id, attr)
        with self._servers_lock:
            server = self._servers.get(key)
            if server is None:
                choice = self._config.planned.choice_for(attr)
                server = CollectionServer.for_estimator(
                    round_id,
                    choice.make(),
                    attr=attr,
                    mechanism=choice.mechanism,
                    incremental=False,
                )
                self._servers[key] = server
        return server

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            round_id, block = item
            started = time.perf_counter()
            try:
                group = block.materialize() if isinstance(block, FrameBlock) else block
                server = self._server_for(round_id, group.attr)
                self._counters.reports += server._ingest_group(group)
                self._counters.blocks += 1
            except Exception as exc:
                # A block that validated at submit time but fails to fold
                # (e.g. out-of-domain reports) is dropped and surfaced via
                # /statz rather than killing the worker.
                self._counters.errors += 1
                self._counters.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                self._counters.ingest_seconds += time.perf_counter() - started
                self._queue.task_done()

    # -- merge-tier views --------------------------------------------------
    def flush(self) -> None:
        """Block until every enqueued block has been folded in."""
        self._queue.join()

    def snapshot(self, round_id: str) -> dict[str, dict]:
        """Serialized per-attribute server states for one round."""
        with self._servers_lock:
            servers = [
                server
                for (rid, _), server in self._servers.items()
                if rid == round_id
            ]
        return {server.attr: server.to_state() for server in servers}

    def rounds(self) -> set[str]:
        with self._servers_lock:
            return {rid for rid, _ in self._servers}

    def stats(self) -> dict[str, Any]:
        c = self._counters
        return {
            "shard": self.shard_id,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "blocks_ingested": c.blocks,
            "reports_ingested": c.reports,
            "ingest_errors": c.errors,
            "last_error": c.last_error,
            "ingest_seconds": round(c.ingest_seconds, 6),
            "backend": None if self.backend is None else self.backend.name,
        }

    def close(self) -> None:
        self._queue.put(None)
        self._worker.join(timeout=10.0)


class ShardedCollector:
    """Routes uploads across shard aggregators and merges their answers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.planned = config.planned
        self._attrs = tuple(a.name for a in config.plan.attributes)
        self._expected_codec = {
            name: codec_for_estimator(est)
            for name, est in self.planned.make_estimators().items()
        }
        self.ring = HashRing(config.n_shards)
        self.shards = [
            ShardAggregator(index, config) for index in range(config.n_shards)
        ]
        # Merge tier: per-round persistent servers whose posterior caches
        # survive re-merges (rebind_estimator), giving warm starts.
        self._merged: dict[str, dict[str, CollectionServer]] = {}
        self._merge_lock = threading.Lock()
        self._merge_seconds: list[float] = []
        # Windowed mode: the streaming scheduler and the rounds already
        # advanced into it (a round may be advanced exactly once).
        self._stream: Any = None
        self._advanced: list[str] = []
        self._closed = False

    # -- validation + routing ----------------------------------------------
    def _check_block(self, attr: str, mechanism: str, round_id: str) -> None:
        if attr not in self._expected_codec:
            raise ValueError(
                f"plan declares no attribute {attr!r}; "
                f"available: {sorted(self._expected_codec)}"
            )
        expected = self._expected_codec[attr].name
        if mechanism != expected:
            raise ValueError(
                f"attribute {attr!r}: feed carries {mechanism!r} payloads, "
                f"plan estimator expects {expected!r}"
            )
        if not round_id:
            raise ValueError("round id must be non-empty")

    def submit_feed(self, data: bytes | str, round_id: str) -> int:
        """Validate one upload and enqueue its blocks; returns the report
        count accepted. All-or-nothing: raises ``ValueError`` (bad feed) or
        :class:`ServiceOverloadError` (a full shard queue) with no block
        enqueued."""
        if self._closed:
            raise RuntimeError("collector is closed")
        batches: list[tuple[int, FrameBlock | FeedGroup]] = []
        total = 0
        if isinstance(data, (bytes, bytearray, memoryview)) and is_frame(bytes(data)):
            for block in iter_frame_blocks(bytes(data), expected_round=round_id):
                self._check_block(block.attr, block.mechanism, block.round_id)
                batches.append((self.ring.shard_for(round_id, block.attr), block))
                total += block.n
        else:
            if isinstance(data, (bytes, bytearray, memoryview)):
                data = bytes(data).decode("utf-8")
            _, groups = decode_feed_grouped(data, expected_round=round_id)
            for attr, group in groups.items():
                self._check_block(attr, group.mechanism, round_id)
                batches.append((self.ring.shard_for(round_id, attr), group))
                total += group.n
        if not batches:
            raise ValueError("feed carries no report blocks")
        demand: dict[int, int] = {}
        for shard_id, _ in batches:
            demand[shard_id] = demand.get(shard_id, 0) + 1
        for shard_id, needed in demand.items():
            if needed > self.config.queue_depth:
                # No amount of retrying can make this feed fit: reject it
                # as malformed-for-this-deployment, not as backpressure.
                raise ValueError(
                    f"feed routes {needed} blocks to shard {shard_id} but "
                    f"queue_depth is {self.config.queue_depth}; split the "
                    f"upload or raise --queue-depth"
                )
            if self.shards[shard_id].free_slots() < needed:
                raise ServiceOverloadError(
                    f"shard {shard_id} ingest queue is full "
                    f"({needed} blocks pending, "
                    f"{self.shards[shard_id].free_slots()} slots free); retry"
                )
        for shard_id, block in batches:
            self.shards[shard_id].enqueue(block, round_id)
        return total

    def flush(self) -> None:
        """Drain every shard queue (all accepted blocks folded in)."""
        for shard in self.shards:
            shard.flush()

    # -- merge + estimate tier ---------------------------------------------
    def _merge_round(self, round_id: str) -> dict[str, CollectionServer]:
        """Snapshot shards and fold this round's state, attr by attr."""
        snapshots = [shard.snapshot(round_id) for shard in self.shards]
        if not any(snapshots):
            raise LookupError(f"no reports ever accepted for round {round_id!r}")
        merged = self._merged.setdefault(round_id, {})
        for attr in self._attrs:
            states = [snap[attr] for snap in snapshots if attr in snap]
            if states:
                folded = merge_tree(
                    [CollectionServer.from_state(state) for state in states]
                )
                estimator = folded.estimator
            else:
                # Declared but never reported: a fresh estimator makes the
                # solve fail with the round's EmptyAggregateError.
                estimator = self.planned.choice_for(attr).make()
            server = merged.get(attr)
            if server is None:
                merged[attr] = CollectionServer.for_estimator(
                    round_id,
                    estimator,
                    attr=attr,
                    mechanism=self.planned.choice_for(attr).mechanism,
                    incremental=self.config.incremental,
                )
            else:
                server.rebind_estimator(estimator)
        return merged

    def _solve(self, merged: dict[str, CollectionServer], round_id: str) -> dict[str, Any]:
        """Fan solves out per home shard, on that shard's backend."""
        by_shard: dict[int, dict[str, CollectionServer]] = {}
        for attr, server in merged.items():
            home = self.ring.shard_for(round_id, attr)
            by_shard.setdefault(home, {})[attr] = server
        results: dict[str, Any] = {}
        for shard_id in sorted(by_shard):
            results.update(
                estimate_rounds(
                    by_shard[shard_id],
                    on_error="return",
                    backend=self.shards[shard_id].backend,
                )
            )
        return {attr: results[attr] for attr in merged}

    def estimate(self, round_id: str) -> dict[str, Any]:
        """Drain, merge, and solve one round; returns a JSON-safe summary.

        The result maps ``"estimates"`` per attribute (``None`` where that
        attribute's solve failed, with the failure under ``"errors"``) and
        carries the full plan-level ``"report"`` when every attribute
        solved. Raises ``LookupError`` for a round no upload ever touched.
        """
        self.flush()
        with self._merge_lock:
            started = time.perf_counter()
            merged = self._merge_round(round_id)
            self._merge_seconds.append(time.perf_counter() - started)
            solved = self._solve(merged, round_id)
            estimates = {
                attr: value
                for attr, value in solved.items()
                if not isinstance(value, EstimateFailure)
            }
            errors = {
                attr: value.to_dict()
                for attr, value in solved.items()
                if isinstance(value, EstimateFailure)
            }
            report = None
            if not errors:
                session = Session.from_estimators(
                    self.config.plan,
                    {attr: merged[attr].estimator for attr in self._attrs},
                    planned=self.planned,
                )
                report = session.results(precomputed=estimates).to_dict()
            return {
                "round": round_id,
                "n_reports": {
                    attr: merged[attr].n_reports for attr in self._attrs
                },
                "estimates": {
                    attr: _jsonify_estimate(estimates.get(attr))
                    for attr in self._attrs
                },
                "errors": errors,
                "report": report,
            }

    # -- windowed (continuous) collection ------------------------------------
    def _ensure_stream(self) -> Any:
        if self._stream is None:
            from repro.streaming import StreamingCollector

            self._stream = StreamingCollector(
                self.planned.make_estimators(),
                window=self.config.window,
                decay=self.config.decay,
            )
        return self._stream

    def advance_window(self, round_id: str) -> dict[str, Any]:
        """Fold one completed round into the continuous window and re-solve.

        Drains the shard queues, merges ``round_id`` exactly as
        :meth:`estimate` would, then pushes the merged per-attribute
        aggregates into the streaming scheduler
        (:class:`repro.streaming.StreamingCollector`): the sliding window
        advances in O(d) per attribute, EM warm-starts from the previous
        tick's posterior, and wave attributes sharing a channel solve as
        one fused batch. Each round may be advanced exactly once —
        advancing it again raises ``ValueError`` (reports that arrive
        after the advance would otherwise be double-counted); a round no
        upload ever touched raises ``LookupError``.
        """
        if not self.config.windowed:
            raise RuntimeError(
                "collector is not in windowed mode; construct the "
                "ServiceConfig with window= or decay="
            )
        self.flush()
        with self._merge_lock:
            if round_id in self._advanced:
                raise ValueError(
                    f"round {round_id!r} was already advanced into the window"
                )
            merged = self._merge_round(round_id)
            stream = self._ensure_stream()
            started = time.perf_counter()
            result = stream.tick(
                {attr: merged[attr].estimator for attr in self._attrs}
            )
            tick_seconds = time.perf_counter() - started
            self._advanced.append(round_id)
            payload = result.to_dict()
            for tick in payload["attributes"].values():
                tick["estimate"] = _jsonify_estimate(tick["estimate"])
            return {
                "round": round_id,
                "tick_s": round(tick_seconds, 6),
                "n_reports": {
                    attr: merged[attr].n_reports for attr in self._attrs
                },
                **payload,
            }

    def window_estimate(self) -> dict[str, Any]:
        """Latest windowed estimates plus the per-window privacy audit.

        Raises ``LookupError`` until at least one round has been advanced.
        """
        if not self.config.windowed:
            raise RuntimeError(
                "collector is not in windowed mode; construct the "
                "ServiceConfig with window= or decay="
            )
        with self._merge_lock:
            if self._stream is None or not self._advanced:
                raise LookupError("no rounds advanced into the window yet")
            stream = self._stream
            audit = self.planned.stream_audit(stream.effective_rounds)
            return {
                "mode": "window" if self.config.window is not None else "decay",
                "window": self.config.window,
                "decay": self.config.decay,
                "ticks": stream.n_ticks,
                "rounds": list(self._advanced),
                "effective_rounds": stream.effective_rounds,
                "estimates": {
                    attr: _jsonify_estimate(value)
                    for attr, value in stream.estimates().items()
                },
                "audit": audit.to_dict(),
            }

    # -- observability -----------------------------------------------------
    def rounds(self) -> list[str]:
        seen: set[str] = set()
        for shard in self.shards:
            seen |= shard.rounds()
        return sorted(seen)

    def stats(self) -> dict[str, Any]:
        merge_ms = sorted(s * 1000.0 for s in self._merge_seconds)
        return {
            "n_shards": len(self.shards),
            "windowed": self.config.windowed,
            "window_ticks": 0 if self._stream is None else self._stream.n_ticks,
            "rounds": self.rounds(),
            "shards": [shard.stats() for shard in self.shards],
            "merges": len(merge_ms),
            "merge_ms_max": round(merge_ms[-1], 3) if merge_ms else None,
            "merge_ms_last": (
                round(self._merge_seconds[-1] * 1000.0, 3) if merge_ms else None
            ),
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for shard in self.shards:
                shard.close()

    def __enter__(self) -> "ShardedCollector":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
