"""Shard aggregators and the sharded collector behind the HTTP front end.

The ingest tier is a fixed set of :class:`ShardAggregator` workers. Each
owns the :class:`~repro.protocol.server.CollectionServer` aggregation
states for the ``(round, attr)`` keys the consistent ring
(:mod:`repro.service.sharding`) assigns it, plus one bounded queue of
pending wire blocks and one worker thread that drains it. Memory in this
tier is bounded by construction: a queue slot holds one decoded-columns
block (itself bounded by the upload size limit), aggregation state is
O(state) per key, and nothing ever concatenates a full feed.

:class:`ShardedCollector` is the coordinator. Uploads are validated and
split into per-shard block batches on the submitting thread; a batch is
accepted **all-or-nothing** — if any target shard's queue cannot take its
blocks, :class:`ServiceOverloadError` is raised (HTTP 429) and *no* block
is enqueued, so a retried upload can never double-count. The capacity
check is sound because submissions are serialized (the HTTP tier runs
them on one executor thread) while workers only ever *free* slots.

Fault tolerance is layered on the same serialization point
(:mod:`repro.service.resilience`):

* With ``journal_dir`` configured, every accepted upload's blocks are
  appended to the target shards' write-ahead logs and then sealed with a
  commit record in the collector's meta journal *before* any block is
  enqueued. A restarted collector recovers by loading each shard's last
  checkpoint and re-folding the committed journal tail in append order —
  the fold sequence is identical to the uninterrupted run, so the
  recovered estimates are bit-identical. Uploads that crashed before
  their commit record are rolled back (their journal records are
  skipped), which is what makes a client retry after a lost ack
  exactly-once rather than at-least-once.
* Idempotent ingest: a caller-supplied idempotency key is checked
  against a bounded :class:`~repro.service.resilience.DedupLedger`
  before any work happens — a repeat of an accepted upload returns a
  replay receipt (nothing ingested), a key reused for different bytes
  raises :exc:`~repro.service.resilience.IdempotencyConflictError`.
* Graceful degradation: a shard whose worker thread has died is routed
  around on the ring (``exclude=``), skipped by ``flush()``, and
  reported in ``estimate()``'s coverage metadata instead of failing the
  round; :meth:`ShardedCollector.revive` replays its journal to bring it
  back warm.

``estimate()`` is the merge tier: drain the queues, snapshot every
shard's states under their locks, fold per-attribute snapshots through
the binary :func:`~repro.service.sharding.merge_tree`, and rebind the
result into a persistent per-round server so the incremental posterior
cache survives re-merges — an unchanged round skips its solves, a grown
round warm-starts EM. Solves fan out per home shard through
:func:`~repro.protocol.server.estimate_rounds` with ``on_error="return"``,
so one empty attribute reports a structured error instead of hiding every
other attribute's result.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from uuid import uuid4

import numpy as np

from repro.engine.backend import ComputeBackend, make_backend
from repro.protocol.codecs import codec_for_estimator
from repro.protocol.frames import (
    FrameBlock,
    encode_frame,
    encode_frame_block,
    frame_digest,
    is_frame,
    iter_frame_blocks,
)
from repro.protocol.messages import FeedGroup, decode_feed_grouped
from repro.protocol.server import (
    CollectionServer,
    EstimateFailure,
    estimate_rounds,
)
from repro.service.config import ServiceConfig
from repro.service.resilience import (
    DedupLedger,
    IdempotencyConflictError,
    IngestReceipt,
    MetaJournal,
    ShardJournal,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.sharding import HashRing, merge_tree
from repro.tasks.session import Session

__all__ = ["ServiceOverloadError", "ShardAggregator", "ShardedCollector"]


class ServiceOverloadError(RuntimeError):
    """An upload was rejected whole because a shard queue is full (429)."""


def _jsonify_estimate(value: Any) -> Any:
    """JSON-safe form of one attribute's reconstruction."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonify_estimate(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass
class _ShardCounters:
    """Mutable ingest counters, updated by the shard's worker thread."""

    blocks: int = 0
    reports: int = 0
    errors: int = 0
    last_error: str | None = None
    ingest_seconds: float = 0.0


class ShardAggregator:
    """One shard: a bounded block queue, a worker thread, and its servers."""

    def __init__(self, shard_id: int, config: ServiceConfig) -> None:
        self.shard_id = int(shard_id)
        self._config = config
        spec = config.backend_spec(self.shard_id)
        self.backend: ComputeBackend | None = (
            None if spec is None else make_backend(spec)
        )
        self._queue: queue.Queue[tuple[str, FrameBlock | FeedGroup] | None] = (
            queue.Queue(maxsize=config.queue_depth)
        )
        self._servers: dict[tuple[str, str], CollectionServer] = {}
        self._servers_lock = threading.Lock()
        self._counters = _ShardCounters()
        self._worker = threading.Thread(
            target=self._drain, name=f"repro-shard-{shard_id}", daemon=True
        )
        self._worker.start()

    @property
    def alive(self) -> bool:
        """Health probe: whether the drain worker is still running.

        A worker only dies on an injected crash (or an interpreter-level
        failure) — ordinary fold errors are counted, not fatal — so a
        dead worker means the shard has genuinely lost its ingest path.
        """
        return self._worker.is_alive()

    # -- submission (called from the collector's submit thread) ------------
    def free_slots(self) -> int:
        """Queue slots currently open. Only workers free slots, so a
        capacity observed by the single submitting thread cannot shrink
        before its puts land."""
        return self._queue.maxsize - self._queue.qsize()

    def enqueue(self, block: FrameBlock | FeedGroup, round_id: str) -> None:
        try:
            self._queue.put_nowait((round_id, block))
        except queue.Full:
            # The collector checks capacity first; reaching this means the
            # all-or-nothing contract was violated upstream.
            raise ServiceOverloadError(
                f"shard {self.shard_id} queue overflowed past its capacity check"
            ) from None

    # -- worker ------------------------------------------------------------
    def _server_for(self, round_id: str, attr: str) -> CollectionServer:
        key = (round_id, attr)
        with self._servers_lock:
            server = self._servers.get(key)
            if server is None:
                choice = self._config.planned.choice_for(attr)
                server = CollectionServer.for_estimator(
                    round_id,
                    choice.make(),
                    attr=attr,
                    mechanism=choice.mechanism,
                    incremental=False,
                )
                self._servers[key] = server
        return server

    def _fold(self, round_id: str, block: FrameBlock | FeedGroup) -> None:
        """Fold one block into its server, with full error accounting.

        Shared by the live drain worker and journal replay, so a
        recovered shard reproduces exactly the counter trajectory the
        uninterrupted run would have had.
        """
        started = time.perf_counter()
        try:
            group = block.materialize() if isinstance(block, FrameBlock) else block
            server = self._server_for(round_id, group.attr)
            self._counters.reports += server._ingest_group(group)
            self._counters.blocks += 1
        except Exception as exc:
            # A block that validated at submit time but fails to fold
            # (e.g. out-of-domain reports) is dropped and surfaced via
            # /statz rather than killing the worker.
            self._counters.errors += 1
            self._counters.last_error = f"{type(exc).__name__}: {exc}"
        finally:
            self._counters.ingest_seconds += time.perf_counter() - started

    def _drain(self) -> None:
        faults = self._config.faults
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            round_id, block = item
            try:
                if faults is not None:
                    # InjectedCrash is a BaseException: it punches through
                    # the fold's error accounting and kills this worker,
                    # exactly as a real thread death would.
                    faults.crash("shard.fold")
                self._fold(round_id, block)
            finally:
                self._queue.task_done()

    def ingest_direct(self, round_id: str, block: FrameBlock | FeedGroup) -> None:
        """Fold one block synchronously on the calling thread.

        The recovery replay path: journal records must fold in exact
        journal order, so replay bypasses the queue entirely. Only safe
        while no live traffic targets this shard (collector construction
        and :meth:`ShardedCollector.revive` both guarantee that).
        """
        self._fold(round_id, block)

    # -- merge-tier views --------------------------------------------------
    def flush(self) -> None:
        """Block until every enqueued block has been folded in.

        With a fault plan active the worker can die mid-drain, which
        would deadlock ``Queue.join()`` (queued items never get
        ``task_done``) — so chaos runs poll aliveness instead.
        """
        if self._config.faults is None:
            self._queue.join()
            return
        while self._queue.unfinished_tasks and self._worker.is_alive():
            time.sleep(0.0005)

    def snapshot(self, round_id: str) -> dict[str, dict]:
        """Serialized per-attribute server states for one round."""
        with self._servers_lock:
            servers = [
                server
                for (rid, _), server in self._servers.items()
                if rid == round_id
            ]
        return {server.attr: server.to_state() for server in servers}

    def snapshot_all(self) -> dict[str, dict[str, Any]]:
        """Serialized server states for every round (checkpoint payload)."""
        with self._servers_lock:
            servers = list(self._servers.items())
        result: dict[str, dict[str, Any]] = {}
        for (round_id, attr), server in servers:
            result.setdefault(round_id, {})[attr] = server.to_state()
        return result

    def restore(
        self,
        states: dict[str, dict[str, Any]],
        counters: dict[str, int] | None = None,
    ) -> None:
        """Rebuild servers (and counters) from a checkpoint payload."""
        with self._servers_lock:
            for round_id, attrs in states.items():
                for attr, state in attrs.items():
                    self._servers[(round_id, attr)] = CollectionServer.from_state(
                        state
                    )
        if counters:
            self._counters.blocks = int(counters.get("blocks", 0))
            self._counters.reports = int(counters.get("reports", 0))
            self._counters.errors = int(counters.get("errors", 0))

    def rounds(self) -> set[str]:
        with self._servers_lock:
            return {rid for rid, _ in self._servers}

    def stats(self) -> dict[str, Any]:
        c = self._counters
        return {
            "shard": self.shard_id,
            "alive": self.alive,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "blocks_ingested": c.blocks,
            "reports_ingested": c.reports,
            "ingest_errors": c.errors,
            "last_error": c.last_error,
            "ingest_seconds": round(c.ingest_seconds, 6),
            "backend": None if self.backend is None else self.backend.name,
        }

    def counters(self) -> dict[str, int]:
        """Durable subset of the ingest counters (checkpoint payload)."""
        c = self._counters
        return {"blocks": c.blocks, "reports": c.reports, "errors": c.errors}

    def close(self) -> None:
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass  # a dead worker never drains; join below returns at once
        self._worker.join(timeout=10.0)


class ShardedCollector:
    """Routes uploads across shard aggregators and merges their answers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.planned = config.planned
        self._attrs = tuple(a.name for a in config.plan.attributes)
        self._expected_codec = {
            name: codec_for_estimator(est)
            for name, est in self.planned.make_estimators().items()
        }
        self.ring = HashRing(config.n_shards)
        self.shards = [
            ShardAggregator(index, config) for index in range(config.n_shards)
        ]
        # Merge tier: per-round persistent servers whose posterior caches
        # survive re-merges (rebind_estimator), giving warm starts.
        self._merged: dict[str, dict[str, CollectionServer]] = {}
        self._merge_lock = threading.Lock()
        self._merge_seconds: list[float] = []
        # Windowed mode: the streaming scheduler and the rounds already
        # advanced into it (a round may be advanced exactly once).
        self._stream: Any = None
        self._advanced: list[str] = []
        self._closed = False
        # Idempotency + durability.
        self._ledger = DedupLedger(config.dedup_capacity)
        self._replays_served = 0
        self._conflicts = 0
        self._uploads_accepted = 0
        self._since_checkpoint = 0
        self._recovered_records = 0
        self._journals: list[ShardJournal] | None = None
        self._meta: MetaJournal | None = None
        if config.journal_dir is not None:
            journal_dir = Path(config.journal_dir)
            self._journals = [
                ShardJournal(
                    journal_dir / f"shard-{index}.journal",
                    fsync=config.journal_fsync,
                    faults=config.faults,
                )
                for index in range(config.n_shards)
            ]
            self._meta = MetaJournal(
                journal_dir / "meta.log",
                fsync=config.journal_fsync,
                faults=config.faults,
            )
            self._recover()

    # -- durability: recovery ----------------------------------------------
    def _checkpoint_path(self, shard_id: int) -> Path:
        assert self.config.journal_dir is not None
        return Path(self.config.journal_dir) / f"shard-{shard_id}.ckpt"

    def _committed_keys(
        self, meta_records: list[dict[str, Any]]
    ) -> set[str]:
        return {
            str(record["key"])
            for record in meta_records
            if record.get("kind") == "commit"
        }

    def _restore_ledger(self, meta_records: list[dict[str, Any]]) -> None:
        """Rebuild the idempotency ledger from commit records.

        Anonymous (keyless) uploads are never looked up, so their commit
        records would only evict real keys from the bounded ledger.
        """
        for record in meta_records:
            if record.get("kind") != "commit":
                continue
            key = str(record["key"])
            if key.startswith("anon:"):
                continue
            self._ledger.record(
                IngestReceipt(
                    round_id=str(record["round"]),
                    key=key,
                    digest=str(record["digest"]),
                    accepted=int(record["accepted"]),
                )
            )

    def _replay_segment(self, shard: ShardAggregator, segment: bytes) -> None:
        """Fold one journaled segment exactly as live ingest would have."""
        for block in iter_frame_blocks(segment):
            shard.ingest_direct(block.round_id, block)
            self._recovered_records += 1

    def _recover(self) -> None:
        """Rebuild state from journals; called once, before any traffic."""
        assert self._journals is not None and self._meta is not None
        for journal in self._journals:
            good = journal.good_offset(0)
            if good < journal.size:
                journal.truncate_to(good)  # crash-torn tail
        meta_records = self._meta.read()
        committed = self._committed_keys(meta_records)
        for journal in self._journals:
            # Roll back the uncommitted tail: records a crashed submit
            # wrote before reaching its commit. Submissions are
            # serialized, so uncommitted records are always a suffix —
            # and they MUST be physically dropped, not just skipped:
            # the client will retry under the same key, and once that
            # retry commits, a skipped orphan would replay as committed
            # on the next recovery and double-fold the upload.
            cut: int | None = None
            prev_end = 0
            for record in journal.replay(0):
                if cut is None and record.key not in committed:
                    cut = prev_end
                prev_end = record.end_offset
            if cut is not None:
                journal.truncate_to(cut)
        self._restore_ledger(meta_records)
        commits = [r for r in meta_records if r.get("kind") == "commit"]
        self._uploads_accepted = len(commits)
        if self.config.windowed:
            self._recover_windowed(meta_records)
        else:
            committed = self._committed_keys(meta_records)
            replayed_any = False
            for shard_id, shard in enumerate(self.shards):
                ckpt = load_checkpoint(self._checkpoint_path(shard_id))
                offset = 0
                if ckpt is not None:
                    shard.restore(ckpt["states"], ckpt.get("counters"))
                    offset = int(ckpt["journal_offset"])
                for record in self._journals[shard_id].replay(offset):
                    if record.key not in committed:
                        continue  # upload rolled back: never committed
                    self._replay_segment(shard, record.segment)
                    replayed_any = True
            if replayed_any:
                self.checkpoint()

    def _recover_windowed(self, meta_records: list[dict[str, Any]]) -> None:
        """Replay the full journal, re-advancing windows at their recorded
        boundaries.

        Windowed state is a *sequence* (each tick warm-starts from the
        last), so checkpoints of shard states alone cannot capture it;
        instead the meta journal's global order — commits interleaved
        with ``advance`` records — is replayed from scratch. Commits fold
        their shard-journal records (each upload's records are contiguous
        per journal because submissions are serialized); advances re-run
        the merge + streaming tick, reproducing the exact tick sequence.
        """
        assert self._journals is not None
        committed = self._committed_keys(meta_records)
        pending: list[list[Any]] = [
            list(journal.replay(0)) for journal in self._journals
        ]
        cursors = [0] * len(self.shards)

        def fold_key(key: str) -> None:
            for shard_id, shard in enumerate(self.shards):
                records = pending[shard_id]
                index = cursors[shard_id]
                while index < len(records):
                    record = records[index]
                    if record.key == key:
                        self._replay_segment(shard, record.segment)
                        index += 1
                    elif record.key not in committed:
                        index += 1  # rolled-back upload: skip its records
                    else:
                        break  # a later committed upload's records
                cursors[shard_id] = index

        for record in meta_records:
            kind = record.get("kind")
            if kind == "commit":
                fold_key(str(record["key"]))
            elif kind == "advance":
                self._advance_locked(str(record["round"]), record_meta=False)

    # -- durability: checkpoints -------------------------------------------
    def checkpoint(self) -> None:
        """Flush, then atomically checkpoint every live shard's state.

        Each checkpoint pairs the shard's serialized servers with the
        journal offset they cover, so the next recovery replays only the
        tail. Dead shards keep their previous checkpoint — their
        in-memory state may trail their journal, and a wrong offset would
        corrupt recovery. Requires ``journal_dir``.
        """
        if self._journals is None:
            raise RuntimeError(
                "checkpointing requires a journal_dir-configured service"
            )
        self.flush()
        for shard_id, shard in enumerate(self.shards):
            if not shard.alive:
                continue
            journal = self._journals[shard_id]
            journal.sync()
            write_checkpoint(
                self._checkpoint_path(shard_id),
                journal_offset=journal.size,
                states=shard.snapshot_all(),
                counters=shard.counters(),
            )
        if self._meta is not None:
            self._meta.sync()
        self._since_checkpoint = 0

    # -- degradation --------------------------------------------------------
    def _dead_shards(self) -> frozenset[int]:
        """Shards whose drain workers have died (health probe)."""
        return frozenset(
            index for index, shard in enumerate(self.shards) if not shard.alive
        )

    def revive(self, shard_id: int) -> dict[str, Any]:
        """Replace a dead shard with a fresh one, warm from its journal.

        With journaling, the replacement replays the dead shard's
        checkpoint + committed journal tail, so everything the shard ever
        acked — including blocks that were still queued when its worker
        died — is recovered. Without journaling the replacement starts
        empty (the in-memory state is gone) and coverage metadata keeps
        reporting the loss. The ring re-includes the shard automatically
        on the next submit.
        """
        if not 0 <= shard_id < len(self.shards):
            raise ValueError(
                f"shard must be in [0, {len(self.shards)}), got {shard_id}"
            )
        old = self.shards[shard_id]
        if old.alive:
            raise ValueError(f"shard {shard_id} is alive; nothing to revive")
        old.close()
        fresh = ShardAggregator(shard_id, self.config)
        replayed = 0
        if self._journals is not None and self._meta is not None:
            committed = self._committed_keys(self._meta.read())
            ckpt = load_checkpoint(self._checkpoint_path(shard_id))
            offset = 0
            if ckpt is not None:
                fresh.restore(ckpt["states"], ckpt.get("counters"))
                offset = int(ckpt["journal_offset"])
            for record in self._journals[shard_id].replay(offset):
                if record.key not in committed:
                    continue
                before = self._recovered_records
                self._replay_segment(fresh, record.segment)
                replayed += self._recovered_records - before
        self.shards[shard_id] = fresh
        return {"shard": shard_id, "replayed_records": replayed}

    # -- validation + routing ----------------------------------------------
    def _check_block(self, attr: str, mechanism: str, round_id: str) -> None:
        if attr not in self._expected_codec:
            raise ValueError(
                f"plan declares no attribute {attr!r}; "
                f"available: {sorted(self._expected_codec)}"
            )
        expected = self._expected_codec[attr].name
        if mechanism != expected:
            raise ValueError(
                f"attribute {attr!r}: feed carries {mechanism!r} payloads, "
                f"plan estimator expects {expected!r}"
            )
        if not round_id:
            raise ValueError("round id must be non-empty")

    def _route(self, round_id: str, attr: str, dead: frozenset[int]) -> int:
        try:
            return self.ring.shard_for(round_id, attr, exclude=dead)
        except ValueError:
            raise ServiceOverloadError(
                "every shard worker is dead; the service has no ingest "
                "capacity until a shard is revived"
            ) from None

    def submit(
        self, data: bytes | str, round_id: str, *, key: str | None = None
    ) -> IngestReceipt:
        """Validate, journal, and enqueue one upload; returns its receipt.

        All-or-nothing: raises ``ValueError`` (bad feed) or
        :class:`ServiceOverloadError` (a full shard queue) with no block
        enqueued and nothing journaled as committed.

        ``key`` is the upload's idempotency key. When supplied, a repeat
        of an already-accepted upload returns a ``replayed=True`` receipt
        without touching any state, and reusing the key for different
        bytes raises :exc:`IdempotencyConflictError`. Without a key the
        upload is anonymous: deduplication is skipped (two identical
        anonymous uploads count twice, as they always did) but the
        journal still tags its records with a unique key so crash
        recovery can tell committed uploads from rolled-back ones.
        """
        if self._closed:
            raise RuntimeError("collector is closed")
        raw: bytes | str = (
            bytes(data)
            if isinstance(data, (bytes, bytearray, memoryview))
            else data
        )
        digest = frame_digest(raw)
        if key is not None:
            try:
                replay = self._ledger.lookup(key, digest)
            except IdempotencyConflictError:
                self._conflicts += 1
                raise
            if replay is not None:
                self._replays_served += 1
                return replay
        journal_key = key if key is not None else f"anon:{uuid4().hex}"
        batches: list[tuple[int, FrameBlock | FeedGroup]] = []
        total = 0
        dead = self._dead_shards()
        if isinstance(raw, bytes) and is_frame(raw):
            for block in iter_frame_blocks(raw, expected_round=round_id):
                self._check_block(block.attr, block.mechanism, block.round_id)
                batches.append((self._route(round_id, block.attr, dead), block))
                total += block.n
        else:
            if isinstance(raw, bytes):
                raw = raw.decode("utf-8")
            _, groups = decode_feed_grouped(raw, expected_round=round_id)
            for attr, group in groups.items():
                self._check_block(attr, group.mechanism, round_id)
                batches.append((self._route(round_id, attr, dead), group))
                total += group.n
        if not batches:
            raise ValueError("feed carries no report blocks")
        demand: dict[int, int] = {}
        for shard_id, _ in batches:
            demand[shard_id] = demand.get(shard_id, 0) + 1
        for shard_id, needed in demand.items():
            if needed > self.config.queue_depth:
                # No amount of retrying can make this feed fit: reject it
                # as malformed-for-this-deployment, not as backpressure.
                raise ValueError(
                    f"feed routes {needed} blocks to shard {shard_id} but "
                    f"queue_depth is {self.config.queue_depth}; split the "
                    f"upload or raise --queue-depth"
                )
            if self.shards[shard_id].free_slots() < needed:
                raise ServiceOverloadError(
                    f"shard {shard_id} ingest queue is full "
                    f"({needed} blocks pending, "
                    f"{self.shards[shard_id].free_slots()} slots free); retry"
                )
        receipt = IngestReceipt(
            round_id=round_id, key=journal_key, digest=digest, accepted=total
        )
        if self._journals is not None and self._meta is not None:
            # Journal first, commit second, enqueue third: a crash at any
            # boundary leaves the upload either fully rolled back (the
            # client retries, exactly-once) or fully durable (the retry
            # gets a replay ack). The commit record is the pivot.
            for shard_id, block in batches:
                segment = (
                    encode_frame_block(block)
                    if isinstance(block, FrameBlock)
                    else encode_frame(
                        round_id,
                        block.reports,
                        self._expected_codec[block.attr],
                        block.attr,
                    )
                )
                self._journals[shard_id].append(journal_key, segment)
            self._meta.commit(receipt)
        for shard_id, block in batches:
            self.shards[shard_id].enqueue(block, round_id)
        if key is not None:
            self._ledger.record(receipt)
        self._uploads_accepted += 1
        if self._journals is not None:
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.config.checkpoint_every:
                self.checkpoint()
        return receipt

    def submit_feed(self, data: bytes | str, round_id: str) -> int:
        """Anonymous-submission compatibility wrapper; see :meth:`submit`."""
        return self.submit(data, round_id).accepted

    def flush(self) -> None:
        """Drain every live shard queue (all accepted blocks folded in).

        Dead shards are skipped — their queues can never drain — so a
        degraded service still merges and estimates; the gap shows up in
        ``estimate()``'s coverage metadata, not as a hang.
        """
        for shard in self.shards:
            if shard.alive:
                shard.flush()

    # -- merge + estimate tier ---------------------------------------------
    def _merge_round(self, round_id: str) -> dict[str, CollectionServer]:
        """Snapshot shards and fold this round's state, attr by attr."""
        snapshots = [shard.snapshot(round_id) for shard in self.shards]
        if not any(snapshots):
            raise LookupError(f"no reports ever accepted for round {round_id!r}")
        merged = self._merged.setdefault(round_id, {})
        for attr in self._attrs:
            states = [snap[attr] for snap in snapshots if attr in snap]
            if states:
                folded = merge_tree(
                    [CollectionServer.from_state(state) for state in states]
                )
                estimator = folded.estimator
            else:
                # Declared but never reported: a fresh estimator makes the
                # solve fail with the round's EmptyAggregateError.
                estimator = self.planned.choice_for(attr).make()
            server = merged.get(attr)
            if server is None:
                merged[attr] = CollectionServer.for_estimator(
                    round_id,
                    estimator,
                    attr=attr,
                    mechanism=self.planned.choice_for(attr).mechanism,
                    incremental=self.config.incremental,
                )
            else:
                server.rebind_estimator(estimator)
        return merged

    def _solve(self, merged: dict[str, CollectionServer], round_id: str) -> dict[str, Any]:
        """Fan solves out per home shard, on that shard's backend."""
        by_shard: dict[int, dict[str, CollectionServer]] = {}
        for attr, server in merged.items():
            home = self.ring.shard_for(round_id, attr)
            by_shard.setdefault(home, {})[attr] = server
        results: dict[str, Any] = {}
        for shard_id in sorted(by_shard):
            results.update(
                estimate_rounds(
                    by_shard[shard_id],
                    on_error="return",
                    backend=self.shards[shard_id].backend,
                )
            )
        return {attr: results[attr] for attr in merged}

    def estimate(self, round_id: str) -> dict[str, Any]:
        """Drain, merge, and solve one round; returns a JSON-safe summary.

        The result maps ``"estimates"`` per attribute (``None`` where that
        attribute's solve failed, with the failure under ``"errors"``) and
        carries the full plan-level ``"report"`` when every attribute
        solved. ``"coverage"`` reports what each attribute's estimate is
        actually built on — reports seen, home shard, and whether that
        home is alive — so a degraded round returns a usable answer with
        its caveats attached instead of failing. Raises ``LookupError``
        for a round no upload ever touched.
        """
        self.flush()
        dead = sorted(self._dead_shards())
        with self._merge_lock:
            started = time.perf_counter()
            merged = self._merge_round(round_id)
            self._merge_seconds.append(time.perf_counter() - started)
            solved = self._solve(merged, round_id)
            estimates = {
                attr: value
                for attr, value in solved.items()
                if not isinstance(value, EstimateFailure)
            }
            errors = {
                attr: value.to_dict()
                for attr, value in solved.items()
                if isinstance(value, EstimateFailure)
            }
            report = None
            if not errors:
                session = Session.from_estimators(
                    self.config.plan,
                    {attr: merged[attr].estimator for attr in self._attrs},
                    planned=self.planned,
                )
                report = session.results(precomputed=estimates).to_dict()
            coverage = {}
            for attr in self._attrs:
                home = self.ring.shard_for(round_id, attr)
                coverage[attr] = {
                    "n_reports_seen": merged[attr].n_reports,
                    "home_shard": home,
                    "home_alive": home not in dead,
                }
            return {
                "round": round_id,
                "n_reports": {
                    attr: merged[attr].n_reports for attr in self._attrs
                },
                "estimates": {
                    attr: _jsonify_estimate(estimates.get(attr))
                    for attr in self._attrs
                },
                "errors": errors,
                "coverage": coverage,
                "shards_dead": dead,
                "degraded": bool(dead),
                "report": report,
            }

    # -- windowed (continuous) collection ------------------------------------
    def _ensure_stream(self) -> Any:
        if self._stream is None:
            from repro.streaming import StreamingCollector

            self._stream = StreamingCollector(
                self.planned.make_estimators(),
                window=self.config.window,
                decay=self.config.decay,
            )
        return self._stream

    def advance_window(self, round_id: str) -> dict[str, Any]:
        """Fold one completed round into the continuous window and re-solve.

        Drains the shard queues, merges ``round_id`` exactly as
        :meth:`estimate` would, then pushes the merged per-attribute
        aggregates into the streaming scheduler
        (:class:`repro.streaming.StreamingCollector`): the sliding window
        advances in O(d) per attribute, EM warm-starts from the previous
        tick's posterior, and wave attributes sharing a channel solve as
        one fused batch. Each round may be advanced exactly once —
        advancing it again raises ``ValueError`` (reports that arrive
        after the advance would otherwise be double-counted); a round no
        upload ever touched raises ``LookupError``. With journaling, the
        advance is recorded in the meta journal together with the shard
        journals' offsets, so a restarted windowed service replays its
        tick sequence at the exact same boundaries.
        """
        if not self.config.windowed:
            raise RuntimeError(
                "collector is not in windowed mode; construct the "
                "ServiceConfig with window= or decay="
            )
        self.flush()
        with self._merge_lock:
            return self._advance_locked(round_id, record_meta=True)

    def _advance_locked(
        self, round_id: str, *, record_meta: bool
    ) -> dict[str, Any]:
        if round_id in self._advanced:
            raise ValueError(
                f"round {round_id!r} was already advanced into the window"
            )
        merged = self._merge_round(round_id)
        stream = self._ensure_stream()
        started = time.perf_counter()
        result = stream.tick(
            {attr: merged[attr].estimator for attr in self._attrs}
        )
        tick_seconds = time.perf_counter() - started
        self._advanced.append(round_id)
        if record_meta and self._meta is not None and self._journals is not None:
            self._meta.advance(
                round_id, [journal.size for journal in self._journals]
            )
        payload = result.to_dict()
        for tick in payload["attributes"].values():
            tick["estimate"] = _jsonify_estimate(tick["estimate"])
        return {
            "round": round_id,
            "tick_s": round(tick_seconds, 6),
            "n_reports": {
                attr: merged[attr].n_reports for attr in self._attrs
            },
            **payload,
        }

    def window_estimate(self) -> dict[str, Any]:
        """Latest windowed estimates plus the per-window privacy audit.

        Raises ``LookupError`` until at least one round has been advanced.
        """
        if not self.config.windowed:
            raise RuntimeError(
                "collector is not in windowed mode; construct the "
                "ServiceConfig with window= or decay="
            )
        with self._merge_lock:
            if self._stream is None or not self._advanced:
                raise LookupError("no rounds advanced into the window yet")
            stream = self._stream
            audit = self.planned.stream_audit(stream.effective_rounds)
            return {
                "mode": "window" if self.config.window is not None else "decay",
                "window": self.config.window,
                "decay": self.config.decay,
                "ticks": stream.n_ticks,
                "rounds": list(self._advanced),
                "effective_rounds": stream.effective_rounds,
                "estimates": {
                    attr: _jsonify_estimate(value)
                    for attr, value in stream.estimates().items()
                },
                "audit": audit.to_dict(),
            }

    # -- observability -----------------------------------------------------
    def rounds(self) -> list[str]:
        seen: set[str] = set()
        for shard in self.shards:
            seen |= shard.rounds()
        return sorted(seen)

    def stats(self) -> dict[str, Any]:
        merge_ms = sorted(s * 1000.0 for s in self._merge_seconds)
        journal_info = None
        if self._journals is not None:
            journal_info = {
                "dir": str(self.config.journal_dir),
                "fsync": self.config.journal_fsync,
                "bytes": [journal.size for journal in self._journals],
                "checkpoint_every": self.config.checkpoint_every,
                "since_checkpoint": self._since_checkpoint,
                "recovered_records": self._recovered_records,
            }
        return {
            "n_shards": len(self.shards),
            "windowed": self.config.windowed,
            "window_ticks": 0 if self._stream is None else self._stream.n_ticks,
            "rounds": self.rounds(),
            "shards": [shard.stats() for shard in self.shards],
            "shards_dead": sorted(self._dead_shards()),
            "uploads_accepted": self._uploads_accepted,
            "dedup": {
                "entries": len(self._ledger),
                "capacity": self._ledger.capacity,
                "replays_served": self._replays_served,
                "conflicts": self._conflicts,
            },
            "journal": journal_info,
            "merges": len(merge_ms),
            "merge_ms_max": round(merge_ms[-1], 3) if merge_ms else None,
            "merge_ms_last": (
                round(self._merge_seconds[-1] * 1000.0, 3) if merge_ms else None
            ),
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for shard in self.shards:
                shard.close()
            if self._journals is not None:
                for journal in self._journals:
                    journal.close()
            if self._meta is not None:
                self._meta.close()

    def __enter__(self) -> "ShardedCollector":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
