"""Deterministic placement and exact recombination for shard aggregators.

Two pieces of machinery the service tier leans on:

* :class:`HashRing` — a consistent-hash ring over ``(round, attr)`` keys.
  Hashes are BLAKE2b digests, not Python's per-process-salted ``hash()``,
  so placement is identical across processes and restarts — every
  uploader, shard, and replayed test routes a block to the same shard.
  Virtual nodes keep the key space evenly spread for small shard counts,
  and growing the ring moves only the keys that land on the new shard's
  points (the consistent-hashing contract).

* :func:`merge_tree` — a binary fold over per-shard
  :class:`~repro.protocol.server.CollectionServer` snapshots. Estimator
  states are linear sufficient statistics, so the fold is *exact*; the
  tree shape makes the fold ``O(log n)`` deep and — because the input
  order is fixed by shard index — deterministic, which is what lets the
  service promise bit-identical results to a single-server ingest for the
  count-statistic families (integer-valued sums commute exactly in
  float64).

Both are pure functions of their inputs: no service state, no clocks.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Sequence

from repro.protocol.server import CollectionServer

__all__ = ["HashRing", "merge_tree", "stable_hash"]

#: Ring points per shard. Enough that 2-8 shards split the key space to
#: within a few percent; cheap enough that ring construction is instant.
_VNODES = 64


def stable_hash(*parts: str) -> int:
    """64-bit BLAKE2b hash of the joined key parts, stable across processes.

    Parts are length-prefixed before joining so ``("ab", "c")`` and
    ``("a", "bc")`` cannot collide by concatenation.
    """
    h = blake2b(digest_size=8)
    for part in parts:
        raw = part.encode("utf-8")
        h.update(len(raw).to_bytes(4, "little"))
        h.update(raw)
    return int.from_bytes(h.digest(), "little")


class HashRing:
    """Consistent hash ring mapping ``(round, attr)`` keys to shard ids."""

    def __init__(self, n_shards: int, *, vnodes: int = _VNODES) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = int(n_shards)
        points: list[tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(vnodes):
                points.append((stable_hash("shard", str(shard), str(replica)), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(
        self,
        round_id: str,
        attr: str,
        *,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> int:
        """The shard id owning ``(round_id, attr)``.

        ``exclude`` routes around dead shards: the ring is walked
        clockwise past excluded owners, so every healthy participant
        agrees on the same fallback without coordination — and when the
        excluded shard recovers, keys snap back to their home placement.
        Raises ``ValueError`` when every shard is excluded.
        """
        key = stable_hash("key", round_id, attr)
        index = bisect_right(self._points, key) % len(self._points)
        if not exclude:
            return self._owners[index]
        if len(exclude) >= self.n_shards:
            raise ValueError("all shards are excluded; nothing can own the key")
        for step in range(len(self._points)):
            owner = self._owners[(index + step) % len(self._points)]
            if owner not in exclude:
                return owner
        raise ValueError("all shards are excluded; nothing can own the key")


def merge_tree(servers: Sequence[CollectionServer]) -> CollectionServer:
    """Fold shard servers pairwise into one, in the given (fixed) order.

    The input servers are consumed: the fold merges right operands into
    left ones level by level — pass snapshots (:meth:`CollectionServer.
    from_state` clones), never live shard aggregators. Raises
    ``ValueError`` on an empty sequence; round/attr mismatches surface
    from :meth:`CollectionServer.merge` itself.
    """
    layer = list(servers)
    if not layer:
        raise ValueError("merge_tree needs at least one server")
    while len(layer) > 1:
        merged = []
        for i in range(0, len(layer) - 1, 2):
            merged.append(layer[i].merge(layer[i + 1]))
        if len(layer) % 2:
            merged.append(layer[-1])
        layer = merged
    return layer[0]
