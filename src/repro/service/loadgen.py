"""Load generation: millions of simulated clients against the service.

The harness keeps the client side honest *and* fast: reports are
synthesized in vectorized batches through the same
:class:`~repro.tasks.session.Session` client path real deployments use
(``privatize`` → ``to_feed``), so every upload is a genuine RPF2 frame —
then fanned out by concurrent asyncio uploaders over raw HTTP/1.1
keep-alive connections (stdlib only, same as the server). One "client"
is one user's report inside a batch; a million clients is a few thousand
frames, which is exactly the shape a real aggregator sees.

Latency is recorded per upload (request write → response parsed) and
summarized as p50/p95/p99 alongside sustained reports/sec;
:func:`run_load` returns a :class:`LoadReport`, and
``benchmarks/bench_perf_service.py`` checks the numbers into
``benchmarks/BENCH_service.json``.

Backpressure and faults are part of the contract: a 429 is counted,
backed off through a shared :class:`~repro.service.faults.RetryPolicy`
(capped exponential, deterministic jitter, ``Retry-After`` honored), and
the frame is retried — never dropped. Every upload carries an
``Idempotency-Key``, so a retry after a dropped connection or lost ack
is acked as a replay instead of double-ingesting: the total accepted
report count is deterministic even when the service throttles, delays,
or drops responses mid-run.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.service.faults import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.tasks.plan import AnalysisPlan
from repro.tasks.planner import PlannedAnalysis, plan_analysis
from repro.tasks.session import Session
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "LoadReport",
    "http_request",
    "percentile",
    "percentiles",
    "run_load",
    "synthesize_frames",
]


def synthesize_frames(
    plan: AnalysisPlan,
    round_id: str,
    n_users: int,
    *,
    batch_size: int = 10_000,
    rng: RngLike = None,
    planned: PlannedAnalysis | None = None,
    data: dict[str, np.ndarray] | None = None,
) -> Iterator[tuple[bytes, int]]:
    """Yield ``(frame_bytes, n_reports)`` uploads for ``n_users`` clients.

    Values are drawn uniformly over each attribute's domain unless
    ``data`` supplies them (one array per attribute, ``n_users`` long).
    Batches are generated lazily so a million-user run never holds more
    than one batch of raw values in memory.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    gen = as_generator(rng)
    if planned is None:
        planned = plan_analysis(plan)
    session = Session(plan, planned=planned)  # client role: privatize only
    for start in range(0, n_users, batch_size):
        size = min(batch_size, n_users - start)
        batch = {}
        for spec in plan.attributes:
            if data is not None:
                batch[spec.name] = np.asarray(
                    data[spec.name][start : start + size], dtype=np.float64
                )
            else:
                batch[spec.name] = gen.uniform(spec.low, spec.high, size=size)
        reports = session.privatize(batch, rng=gen)
        if not reports:
            continue
        feed = session.to_feed(reports, round_id, format="frame")
        assert isinstance(feed, bytes)
        yield feed, size


def percentiles(samples: Iterable[float], qs: Sequence[float]) -> list[float]:
    """Nearest-rank percentiles (each q in [0, 100]) of a latency sample.

    One ``np.quantile`` pass over a preallocated array — the per-call
    ``sorted()`` the old implementation paid (O(n log n) per percentile,
    three times per report) is gone. NaN-safe: an empty sample yields
    ``nan`` for every requested percentile instead of raising.
    """
    arr = np.fromiter(samples, dtype=np.float64)
    if arr.size == 0:
        return [float("nan")] * len(qs)
    values = np.quantile(
        arr, [q / 100.0 for q in qs], method="nearest"
    )
    return [float(v) for v in values]


def percentile(samples: Iterable[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a latency sample."""
    return percentiles(samples, (q,))[0]


@dataclass
class LoadReport:
    """Outcome of one load run, JSON-ready via :meth:`to_dict`."""

    n_users: int
    n_uploads: int
    n_reports_accepted: int
    elapsed_seconds: float
    latencies_ms: list[float] = field(repr=False, default_factory=list)
    n_throttled: int = 0
    n_errors: int = 0
    n_replayed: int = 0
    n_conn_drops: int = 0

    @property
    def reports_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return float("nan")
        return self.n_reports_accepted / self.elapsed_seconds

    def to_dict(self) -> dict:
        return {
            "n_users": self.n_users,
            "n_uploads": self.n_uploads,
            "n_reports_accepted": self.n_reports_accepted,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "reports_per_second": round(self.reports_per_second, 1),
            "latency_ms": dict(
                zip(
                    ("p50", "p95", "p99"),
                    (
                        round(v, 3)
                        for v in percentiles(self.latencies_ms, (50, 95, 99))
                    ),
                )
            ),
            "n_throttled": self.n_throttled,
            "n_errors": self.n_errors,
            "n_replayed": self.n_replayed,
            "n_conn_drops": self.n_conn_drops,
        }


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: bytes = b"",
    content_type: str = "application/x-repro-frame",
    headers: dict[str, str] | None = None,
    response_headers: dict[str, str] | None = None,
    reader: asyncio.StreamReader | None = None,
    writer: asyncio.StreamWriter | None = None,
) -> tuple[int, bytes, asyncio.StreamReader, asyncio.StreamWriter]:
    """One HTTP/1.1 request over a (reusable) keep-alive connection.

    Returns ``(status, body, reader, writer)``; pass the reader/writer
    back in to reuse the connection. ``headers`` adds request headers
    (e.g. ``Idempotency-Key``); pass a dict as ``response_headers`` to
    receive the response's headers (lower-cased names) — the retry loop
    reads ``Retry-After`` from it. The stdlib-only counterpart of the
    server's handler — the loadgen's whole client stack.
    """
    if reader is None or writer is None:
        reader, writer = await asyncio.open_connection(host, port)
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: keep-alive\r\n\r\n"
    )
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("connection closed before response")
    status = int(status_line.split(b" ", 2)[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if response_headers is not None:
            response_headers[name.strip().lower()] = value.strip()
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload, reader, writer


async def _uploader(
    host: str,
    port: int,
    path: str,
    frames: "asyncio.Queue[tuple[bytes, int, str] | None]",
    report: LoadReport,
    *,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
) -> None:
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    try:
        while True:
            item = await frames.get()
            if item is None:
                return
            frame, _n, key = item
            for attempt in range(policy.attempts):
                started = time.perf_counter()
                response_headers: dict[str, str] = {}
                try:
                    status, payload, reader, writer = await http_request(
                        host, port, "POST", path, body=frame,
                        headers={"Idempotency-Key": key},
                        response_headers=response_headers,
                        reader=reader, writer=writer,
                    )
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    # The connection died mid-request (response lost on
                    # the wire). The idempotency key makes the retry
                    # safe: if the server accepted before the drop, the
                    # retry is acked as a replay, never re-ingested.
                    if writer is not None:
                        writer.close()
                    reader = writer = None
                    report.n_conn_drops += 1
                    await asyncio.sleep(policy.delay(attempt))
                    continue
                report.latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0
                )
                if status in (200, 202):
                    # 200 = replay ack: the original accept's response was
                    # lost, so this client never counted it — count the
                    # (original) accepted total exactly once, here.
                    report.n_uploads += 1
                    report.n_reports_accepted += json.loads(payload)["accepted"]
                    if status == 200:
                        report.n_replayed += 1
                    break
                if status == 429:
                    # Backpressure: count it, back off on the shared
                    # policy (honoring the server's Retry-After when it
                    # asks for longer), retry the same frame.
                    report.n_throttled += 1
                    retry_after = response_headers.get("retry-after")
                    await asyncio.sleep(
                        policy.delay(
                            attempt,
                            retry_after=(
                                float(retry_after) if retry_after else None
                            ),
                        )
                    )
                    continue
                report.n_errors += 1
                break
            else:
                report.n_errors += 1  # attempt budget exhausted
    finally:
        if writer is not None:
            writer.close()


async def _run_load_async(
    host: str,
    port: int,
    round_id: str,
    frames: Iterable[tuple[bytes, int]],
    *,
    concurrency: int,
    policy: RetryPolicy,
) -> LoadReport:
    report = LoadReport(
        n_users=0, n_uploads=0, n_reports_accepted=0, elapsed_seconds=0.0
    )
    path = f"/v1/rounds/{round_id}/reports"
    queue: asyncio.Queue[tuple[bytes, int, str] | None] = asyncio.Queue(
        maxsize=2 * concurrency
    )
    uploaders = [
        asyncio.ensure_future(
            _uploader(host, port, path, queue, report, policy=policy)
        )
        for _ in range(concurrency)
    ]
    started = time.perf_counter()
    for index, (frame, n) in enumerate(frames):
        report.n_users += n
        # One stable key per upload, carried across every retry of it.
        await queue.put((frame, n, f"load-{round_id}-{index}"))
    for _ in uploaders:
        await queue.put(None)
    await asyncio.gather(*uploaders)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def run_load(
    host: str,
    port: int,
    plan: AnalysisPlan,
    round_id: str,
    n_users: int,
    *,
    batch_size: int = 10_000,
    concurrency: int = 8,
    rng: RngLike = None,
    planned: PlannedAnalysis | None = None,
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
) -> LoadReport:
    """Synthesize ``n_users`` clients and upload them concurrently.

    Drives :func:`synthesize_frames` through ``concurrency`` keep-alive
    uploader connections against a running service; blocks until every
    frame is accepted and returns the :class:`LoadReport`. Frame
    synthesis is streamed through a bounded queue, so generator and
    uploaders overlap without ever materializing the full feed. Retries
    (backpressure and dropped connections alike) follow ``retry_policy``
    and carry per-upload idempotency keys, so the accepted totals are
    exactly-once whatever the fault pattern.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    frames = synthesize_frames(
        plan, round_id, n_users, batch_size=batch_size, rng=rng, planned=planned
    )
    return asyncio.run(
        _run_load_async(
            host, port, round_id, frames,
            concurrency=concurrency, policy=retry_policy,
        )
    )
