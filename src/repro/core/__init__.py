"""The paper's primary contribution: Square Wave reporting + EM/EMS.

Start with :class:`~repro.core.pipeline.SWEstimator` for the end-to-end
pipeline, or use the pieces directly: :class:`SquareWave` /
:class:`GeneralWave` mechanisms, :func:`optimal_bandwidth`, the exact
transition matrices in :mod:`repro.core.transform`, and
:func:`expectation_maximization`.
"""

from repro.core.bandwidth import (
    discrete_bandwidth,
    mutual_information_bound,
    optimal_bandwidth,
)
from repro.core.em import (
    EMResult,
    em_reconstruct,
    ems_reconstruct,
    expectation_maximization,
)
from repro.core.general_wave import WAVE_SHAPES, GeneralWave
from repro.core.pipeline import (
    DiscreteSWEstimator,
    SWEstimator,
    WaveEstimator,
    estimate_distribution,
)
from repro.core.smoothing import binomial_kernel, smooth
from repro.core.square_wave import DiscreteSquareWave, SquareWave

__all__ = [
    "SquareWave",
    "DiscreteSquareWave",
    "GeneralWave",
    "WAVE_SHAPES",
    "optimal_bandwidth",
    "discrete_bandwidth",
    "mutual_information_bound",
    "EMResult",
    "expectation_maximization",
    "em_reconstruct",
    "ems_reconstruct",
    "binomial_kernel",
    "smooth",
    "WaveEstimator",
    "SWEstimator",
    "DiscreteSWEstimator",
    "estimate_distribution",
]
