"""General Wave mechanisms (paper Sections 5.1 and 6.4).

A General Wave (GW) mechanism reports ``v~ = v + Z`` where the density of
the report is a *wave* ``W(v~ - v)``: baseline ``q`` outside ``[-b, b]`` and
between ``q`` and ``e^eps q`` inside. This module implements the trapezoid
family the paper evaluates in Figure 5, parameterized by the top/bottom
length ratio ``r``:

* ``r = 1`` — square wave (the optimum, Theorem 5.3);
* ``0 < r < 1`` — trapezoids with plateau half-width ``r*b``;
* ``r = 0`` — triangle wave.

All shapes peak at ``e^eps q`` (otherwise contrast would be wasted) so

    q = 1 / (1 + 2b + (e^eps - 1) * b * (1 + r)).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bandwidth import optimal_bandwidth
from repro.core.transform import quadrature_transition_matrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_domain_size, check_epsilon, check_unit_values

__all__ = ["GeneralWave", "WAVE_SHAPES"]

#: Shape label -> trapezoid ratio, matching the paper's Figure 5 legend.
WAVE_SHAPES: dict[str, float] = {
    "square": 1.0,
    "trapezoid-0.8": 0.8,
    "trapezoid-0.6": 0.6,
    "trapezoid-0.4": 0.4,
    "trapezoid-0.2": 0.2,
    "triangle": 0.0,
}


class GeneralWave:
    """Trapezoid-family General Wave randomizer on ``[0, 1] -> [-b, 1 + b]``.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    b:
        Wave half-width, defaults to the SW optimum ``b*(epsilon)``.
    ratio:
        Plateau/base length ratio in ``[0, 1]``; see module docstring.
    """

    def __init__(
        self, epsilon: float, b: float | None = None, ratio: float = 1.0
    ) -> None:
        self.epsilon = check_epsilon(epsilon)
        if b is None:
            b = optimal_bandwidth(self.epsilon)
        if not 0.0 < b <= 0.5:
            raise ValueError(f"b must be in (0, 0.5], got {b}")
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        self.b = float(b)
        self.ratio = float(ratio)
        e_eps = math.exp(self.epsilon)
        self.q = 1.0 / (1.0 + 2.0 * self.b + (e_eps - 1.0) * self.b * (1.0 + self.ratio))
        self.peak = e_eps * self.q
        #: Height of the bump above the baseline.
        self.bump_height = self.peak - self.q
        #: Plateau half-width and leg length of the bump.
        self.plateau = self.ratio * self.b
        self.leg = self.b - self.plateau
        #: Exact square special case (no legs). Tested against the computed
        #: ``leg`` rather than ``ratio``: for ratio within half an ulp of 1
        #: the subtraction rounds to exactly 0.0, and every ``/ self.leg``
        #: below must take the square branch precisely when that happens.
        self.is_square = self.leg == 0.0  # reprolint: disable=NUM001 -- exact-zero sentinel guarding the / self.leg divisions

    @property
    def name(self) -> str:
        for label, ratio in WAVE_SHAPES.items():
            if abs(ratio - self.ratio) < 1e-12:
                return label
        return f"trapezoid-{self.ratio:g}"

    @property
    def output_low(self) -> float:
        return -self.b

    @property
    def output_high(self) -> float:
        return 1.0 + self.b

    @property
    def bump_mass(self) -> float:
        """Total probability mass of the bump: ``1 - (2b + 1) q``."""
        return self.bump_height * self.b * (1.0 + self.ratio)

    def bump_density(self, z: np.ndarray) -> np.ndarray:
        """Wave density minus baseline, as a function of offset ``z``."""
        z = np.abs(np.asarray(z, dtype=np.float64))
        if self.is_square:
            return np.where(z <= self.b, self.bump_height, 0.0)
        on_plateau = z <= self.plateau
        on_leg = (z > self.plateau) & (z <= self.b)
        leg_value = self.bump_height * (self.b - z) / self.leg
        return np.where(on_plateau, self.bump_height, np.where(on_leg, leg_value, 0.0))

    def bump_cdf(self, z: np.ndarray) -> np.ndarray:
        """CDF of the bump from ``-b``; reaches :attr:`bump_mass` at ``+b``."""
        z = np.asarray(z, dtype=np.float64)
        height = self.bump_height
        if self.is_square:
            return height * np.clip(z + self.b, 0.0, 2.0 * self.b)
        leg_mass = height * self.leg / 2.0
        # Left leg: quadratic ramp-up on [-b, -plateau].
        left_progress = np.clip(z + self.b, 0.0, self.leg)
        left = height * left_progress**2 / (2.0 * self.leg)
        # Plateau: linear on [-plateau, plateau].
        mid = height * np.clip(z + self.plateau, 0.0, 2.0 * self.plateau)
        # Right leg: total minus the symmetric ramp from the right end.
        right_progress = np.clip(self.b - z, 0.0, self.leg)
        right = leg_mass - height * right_progress**2 / (2.0 * self.leg)
        return np.where(
            z < -self.plateau,
            left,
            np.where(z <= self.plateau, leg_mass + mid, leg_mass + 2 * self.plateau * height + right),
        )

    def pdf(self, v: float, v_tilde: np.ndarray) -> np.ndarray:
        """Output density ``M_v(v~)`` (0 outside ``[-b, 1 + b]``)."""
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"v must be in [0, 1], got {v}")
        out = np.asarray(v_tilde, dtype=np.float64)
        inside = (out >= self.output_low) & (out <= self.output_high)
        return np.where(inside, self.q + self.bump_density(out - v), 0.0)

    def _sample_bump_offsets(self, count: int, gen: np.random.Generator) -> np.ndarray:
        """Draw offsets ``Z`` from the normalized bump shape."""
        if count == 0:
            return np.empty(0)
        if self.is_square:
            return gen.uniform(-self.b, self.b, size=count)
        plateau_fraction = 2.0 * self.ratio / (1.0 + self.ratio)
        u = gen.random(count)
        on_plateau = u < plateau_fraction
        offsets = np.empty(count, dtype=np.float64)
        k = int(on_plateau.sum())
        offsets[on_plateau] = gen.uniform(-self.plateau, self.plateau, size=k)
        # Legs: density decreasing linearly to 0 at distance `leg` from the
        # plateau edge; inverse-CDF sample of that distance is
        # `leg * (1 - sqrt(u))`.
        rest = count - k
        side = np.where(gen.random(rest) < 0.5, -1.0, 1.0)
        distance = self.leg * (1.0 - np.sqrt(gen.random(rest)))
        offsets[~on_plateau] = side * (self.plateau + distance)
        return offsets

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Randomize values into float reports in ``[-b, 1 + b]``.

        Mixture sampler: with probability ``q (1 + 2b)`` report uniformly on
        the whole output domain (the baseline), otherwise report ``v + Z``
        with ``Z`` from the bump shape.
        """
        vals = check_unit_values(values)
        gen = as_generator(rng)
        n = vals.size
        baseline_mass = self.q * (1.0 + 2.0 * self.b)
        baseline = gen.random(n) < baseline_mass
        out = np.empty(n, dtype=np.float64)
        k = int(baseline.sum())
        out[baseline] = gen.uniform(self.output_low, self.output_high, size=k)
        bump_values = vals[~baseline]
        out[~baseline] = bump_values + self._sample_bump_offsets(bump_values.size, gen)
        return out

    def bucketize_reports(self, reports: np.ndarray, d_out: int) -> np.ndarray:
        """Histogram counts of reports over ``d_out`` output buckets."""
        d_out = check_domain_size(d_out)
        arr = np.asarray(reports, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("reports must be a non-empty 1-d array")
        span = self.output_high - self.output_low
        idx = np.floor((arr - self.output_low) / span * d_out).astype(np.int64)
        idx = np.clip(idx, 0, d_out - 1)
        return np.bincount(idx, minlength=d_out).astype(np.float64)

    def transition_matrix(self, d: int, d_out: int | None = None) -> np.ndarray:
        """Bucket transition matrix via Gauss-Legendre quadrature.

        The square-wave special case (``ratio == 1``) routes through the
        exact closed-form integral instead of quadrature.
        """
        d = check_domain_size(d)
        d_out = d if d_out is None else check_domain_size(d_out)
        if self.is_square:
            from repro.core.transform import sw_transition_matrix

            return sw_transition_matrix((self.peak, self.q), self.b, d, d_out)
        return quadrature_transition_matrix(self.bump_cdf, self.q, self.b, d, d_out)

    def _params(self) -> dict:
        """Constructor kwargs for serialization (``repro.api`` state files)."""
        return {"epsilon": self.epsilon, "b": self.b, "ratio": self.ratio}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeneralWave(epsilon={self.epsilon}, b={self.b:.4f}, "
            f"ratio={self.ratio})"
        )
