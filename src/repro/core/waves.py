"""Additional General Wave shapes beyond the trapezoid family.

The paper's Definition 5.1 admits *any* wave function ``W: R -> [q, e^eps q]``
with baseline ``q`` outside ``[-b, b]``; its Figure 5 evaluates trapezoids
and a triangle. This module adds two smooth shapes — a raised-cosine wave
and an Epanechnikov (parabolic) wave — extending the shape study, plus a
``make_wave`` factory covering the whole family by name.

Both smooth shapes peak at ``e^eps q`` (anything lower wastes contrast) and
derive ``q`` from the normalization ``bump_mass = 1 - (2b + 1) q``:

* raised cosine: ``bump(z) = H (1 + cos(pi z / b)) / 2``, mass ``H b``;
* Epanechnikov:  ``bump(z) = H (1 - (z/b)^2)``, mass ``4 H b / 3``;

with ``H = (e^eps - 1) q`` in both cases.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bandwidth import optimal_bandwidth
from repro.core.general_wave import WAVE_SHAPES, GeneralWave
from repro.core.transform import quadrature_transition_matrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_domain_size, check_epsilon, check_unit_values

__all__ = ["SmoothWave", "CosineWave", "EpanechnikovWave", "make_wave", "ALL_WAVE_SHAPES"]


class SmoothWave:
    """Shared plumbing for smooth (rejection-sampled) wave shapes.

    Subclasses define the normalized bump profile ``_profile(z)`` in
    ``[0, 1]`` (1 at the peak), its integral over ``[-b, b]`` as a multiple
    of ``b`` (``_profile_mass_factor``), and the profile CDF.
    """

    #: Integral of the normalized profile over [-b, b], divided by b.
    _profile_mass_factor: float = float("nan")

    def __init__(self, epsilon: float, b: float | None = None) -> None:
        self.epsilon = check_epsilon(epsilon)
        if b is None:
            b = optimal_bandwidth(self.epsilon)
        if not 0.0 < b <= 0.5:
            raise ValueError(f"b must be in (0, 0.5], got {b}")
        self.b = float(b)
        e_eps = math.exp(self.epsilon)
        mass_factor = self._profile_mass_factor * self.b
        self.q = 1.0 / (1.0 + 2.0 * self.b + (e_eps - 1.0) * mass_factor)
        self.peak = e_eps * self.q
        self.bump_height = self.peak - self.q

    # -- shape definition (subclass responsibility) -------------------------

    def _profile(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _profile_cdf(self, z: np.ndarray) -> np.ndarray:
        """Integral of the profile from ``-b`` to ``z`` (in units of length)."""
        raise NotImplementedError

    # -- common interface (matches GeneralWave) ------------------------------

    @property
    def output_low(self) -> float:
        return -self.b

    @property
    def output_high(self) -> float:
        return 1.0 + self.b

    @property
    def bump_mass(self) -> float:
        return self.bump_height * self._profile_mass_factor * self.b

    def bump_density(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        inside = np.abs(z) <= self.b
        return np.where(inside, self.bump_height * self._profile(z), 0.0)

    def bump_cdf(self, z: np.ndarray) -> np.ndarray:
        z = np.clip(np.asarray(z, dtype=np.float64), -self.b, self.b)
        return self.bump_height * self._profile_cdf(z)

    def pdf(self, v: float, v_tilde: np.ndarray) -> np.ndarray:
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"v must be in [0, 1], got {v}")
        out = np.asarray(v_tilde, dtype=np.float64)
        inside = (out >= self.output_low) & (out <= self.output_high)
        return np.where(inside, self.q + self.bump_density(out - v), 0.0)

    def _sample_bump_offsets(self, count: int, gen: np.random.Generator) -> np.ndarray:
        """Rejection sampling against the uniform envelope on [-b, b]."""
        out = np.empty(count, dtype=np.float64)
        filled = 0
        while filled < count:
            need = count - filled
            # Acceptance rate is mass_factor / 2, so oversample accordingly.
            batch = max(int(need * 2.2 / self._profile_mass_factor), 64)
            z = gen.uniform(-self.b, self.b, size=batch)
            keep = z[gen.random(batch) < self._profile(z)]
            take = min(keep.size, need)
            out[filled : filled + take] = keep[:take]
            filled += take
        return out

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Randomize values into float reports in ``[-b, 1 + b]``."""
        vals = check_unit_values(values)
        gen = as_generator(rng)
        n = vals.size
        baseline_mass = self.q * (1.0 + 2.0 * self.b)
        baseline = gen.random(n) < baseline_mass
        out = np.empty(n, dtype=np.float64)
        k = int(baseline.sum())
        out[baseline] = gen.uniform(self.output_low, self.output_high, size=k)
        bump_values = vals[~baseline]
        out[~baseline] = bump_values + self._sample_bump_offsets(bump_values.size, gen)
        return out

    def bucketize_reports(self, reports: np.ndarray, d_out: int) -> np.ndarray:
        d_out = check_domain_size(d_out)
        arr = np.asarray(reports, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("reports must be a non-empty 1-d array")
        span = self.output_high - self.output_low
        idx = np.floor((arr - self.output_low) / span * d_out).astype(np.int64)
        idx = np.clip(idx, 0, d_out - 1)
        return np.bincount(idx, minlength=d_out).astype(np.float64)

    def transition_matrix(self, d: int, d_out: int | None = None) -> np.ndarray:
        d = check_domain_size(d)
        d_out = d if d_out is None else check_domain_size(d_out)
        return quadrature_transition_matrix(self.bump_cdf, self.q, self.b, d, d_out)

    def _params(self) -> dict:
        """Constructor kwargs for serialization (``repro.api`` state files)."""
        return {"epsilon": self.epsilon, "b": self.b}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(epsilon={self.epsilon}, b={self.b:.4f})"


class CosineWave(SmoothWave):
    """Raised-cosine wave: ``bump(z) = H (1 + cos(pi z / b)) / 2``."""

    name = "cosine"
    _profile_mass_factor = 1.0  # integral of (1+cos)/2 over [-b, b] is b

    def _profile(self, z: np.ndarray) -> np.ndarray:
        return (1.0 + np.cos(np.pi * z / self.b)) / 2.0

    def _profile_cdf(self, z: np.ndarray) -> np.ndarray:
        return 0.5 * (z + self.b) + (self.b / (2.0 * np.pi)) * np.sin(np.pi * z / self.b)


class EpanechnikovWave(SmoothWave):
    """Parabolic wave: ``bump(z) = H (1 - (z/b)^2)``."""

    name = "epanechnikov"
    _profile_mass_factor = 4.0 / 3.0

    def _profile(self, z: np.ndarray) -> np.ndarray:
        return 1.0 - (z / self.b) ** 2

    def _profile_cdf(self, z: np.ndarray) -> np.ndarray:
        return (z + self.b) - (z**3 + self.b**3) / (3.0 * self.b**2)


#: Every named wave shape the library can build, including the paper's
#: trapezoid family and the two smooth extensions.
ALL_WAVE_SHAPES: tuple[str, ...] = tuple(WAVE_SHAPES) + ("cosine", "epanechnikov")


def make_wave(shape: str, epsilon: float, b: float | None = None):
    """Build a wave mechanism by shape name.

    ``shape`` is one of :data:`ALL_WAVE_SHAPES`; trapezoid-family names map
    to :class:`~repro.core.general_wave.GeneralWave`, the smooth names to
    their dedicated classes. All returned objects share the wave-mechanism
    interface (``privatize`` / ``pdf`` / ``transition_matrix`` / ...), so
    they drop into :class:`~repro.core.pipeline.WaveEstimator` directly.
    """
    if shape in WAVE_SHAPES:
        return GeneralWave(epsilon, b=b, ratio=WAVE_SHAPES[shape])
    if shape == "cosine":
        return CosineWave(epsilon, b=b)
    if shape == "epanechnikov":
        return EpanechnikovWave(epsilon, b=b)
    raise ValueError(f"unknown wave shape {shape!r}; available: {ALL_WAVE_SHAPES}")
