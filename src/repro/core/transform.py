"""Exact transition matrices for wave mechanisms (paper Section 5.5).

The server-side estimator needs ``M[j, i] = Pr[out in B~_j | in in B_i]``,
assuming the input is uniform within its bucket. For Square Wave the overlap
between an output bucket and the moving high-probability band
``[v - b, v + b]`` is a *trapezoid function* of ``v``, so the bucket average
has a closed-form antiderivative and the matrix is exact to float precision.
General-wave matrices use Gauss-Legendre quadrature over the input bucket
(the integrand is piecewise quadratic, so a handful of nodes is plenty).

Matrix convention: shape ``(d_out, d)``; every column sums to 1 (tested).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "trapezoid_antiderivative",
    "sw_transition_matrix",
    "discrete_sw_transition_matrix",
    "quadrature_transition_matrix",
]

#: Input buckets processed per block when building matrices, bounding peak
#: memory at ``d_out * _BLOCK`` floats per temporary.
_BLOCK = 256


def trapezoid_antiderivative(
    t: np.ndarray, t1: np.ndarray, t3: np.ndarray, lmax: np.ndarray
) -> np.ndarray:
    """Antiderivative of the unit-slope trapezoid function.

    The trapezoid rises with slope 1 from ``t1`` to ``t1 + lmax``, stays at
    ``lmax`` until ``t3``, and falls with slope -1 to zero at ``t3 + lmax``.
    Broadcasts over all arguments.
    """
    rise_progress = np.clip(t - t1, 0.0, lmax)
    rise = 0.5 * rise_progress**2
    mid = lmax * np.clip(t - (t1 + lmax), 0.0, t3 - (t1 + lmax))
    fall_progress = np.clip(t - t3, 0.0, lmax)
    fall = lmax * fall_progress - 0.5 * fall_progress**2
    return rise + mid + fall


def sw_transition_matrix(
    epsilon_density_pair: tuple[float, float],
    b: float,
    d: int,
    d_out: int,
) -> np.ndarray:
    """Exact continuous Square Wave transition matrix.

    Parameters
    ----------
    epsilon_density_pair:
        ``(p, q)`` — the near/far densities of the mechanism.
    b:
        Wave half-width; the output domain is ``[-b, 1 + b]``.
    d, d_out:
        Input and output bucket counts.
    """
    p, q = epsilon_density_pair
    if b <= 0:
        raise ValueError(f"b must be > 0, got {b}")
    if d < 1 or d_out < 1:
        raise ValueError("d and d_out must be >= 1")
    out_width = (1.0 + 2.0 * b) / d_out
    # Output bucket edges in the input coordinate system.
    c = -b + np.arange(d_out) * out_width  # left edges
    e = c + out_width  # right edges
    lmax = np.minimum(e - c, 2.0 * b)
    t1 = c - b  # overlap starts growing
    t3 = np.maximum(e - b, c + b)  # overlap starts shrinking
    matrix = np.empty((d_out, d), dtype=np.float64)
    in_width = 1.0 / d
    for start in range(0, d, _BLOCK):
        stop = min(start + _BLOCK, d)
        a1 = np.arange(start, stop) * in_width  # (block,)
        a2 = a1 + in_width
        upper = trapezoid_antiderivative(a2[None, :], t1[:, None], t3[:, None], lmax[:, None])
        lower = trapezoid_antiderivative(a1[None, :], t1[:, None], t3[:, None], lmax[:, None])
        avg_overlap = (upper - lower) / in_width
        matrix[:, start:stop] = q * out_width + (p - q) * avg_overlap
    return matrix


def discrete_sw_transition_matrix(p: float, q: float, b: int, d: int) -> np.ndarray:
    """Discrete Square Wave matrix of shape ``(d + 2b, d)``.

    Output index ``j`` corresponds to input position ``j - b``; entry is
    ``p`` when ``|j - b - i| <= b`` and ``q`` otherwise.
    """
    if b < 0:
        raise ValueError(f"b must be >= 0, got {b}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    j = np.arange(d + 2 * b)[:, None]
    i = np.arange(d)[None, :]
    return np.where(np.abs(j - b - i) <= b, p, q).astype(np.float64)


def quadrature_transition_matrix(
    band_cdf,
    baseline_density: float,
    b: float,
    d: int,
    d_out: int,
    nodes: int = 8,
) -> np.ndarray:
    """Transition matrix for an arbitrary wave shape via quadrature.

    Parameters
    ----------
    band_cdf:
        Vectorized CDF of the *bump* (wave density minus the ``q`` baseline)
        as a function of the offset ``z = v~ - v``; must be 0 at ``-b`` and
        equal the total bump mass at ``+b``.
    baseline_density:
        The far density ``q``.
    b, d, d_out:
        Half-width and bucket counts; output domain ``[-b, 1 + b]``.
    nodes:
        Gauss-Legendre nodes per input bucket. The integrand is piecewise
        quadratic so 8 nodes give ~1e-9 accuracy; columns are renormalized
        to sum to exactly 1 afterwards.
    """
    if nodes < 2:
        raise ValueError(f"nodes must be >= 2, got {nodes}")
    out_width = (1.0 + 2.0 * b) / d_out
    c = -b + np.arange(d_out) * out_width
    e = c + out_width
    gl_x, gl_w = np.polynomial.legendre.leggauss(nodes)
    gl_w = gl_w / 2.0  # weights for averaging over a unit-length bucket
    matrix = np.empty((d_out, d), dtype=np.float64)
    in_width = 1.0 / d
    for start in range(0, d, _BLOCK):
        stop = min(start + _BLOCK, d)
        mids = (np.arange(start, stop) + 0.5) * in_width
        # Quadrature nodes for each input bucket in the block: (block, nodes)
        v = mids[:, None] + 0.5 * in_width * gl_x[None, :]
        # Bump mass inside each output bucket, averaged over the input bucket.
        upper = band_cdf(e[:, None, None] - v[None, :, :])
        lower = band_cdf(c[:, None, None] - v[None, :, :])
        bump = ((upper - lower) * gl_w[None, None, :]).sum(axis=2)
        matrix[:, start:stop] = baseline_density * out_width + bump
    matrix /= matrix.sum(axis=0, keepdims=True)
    return matrix
