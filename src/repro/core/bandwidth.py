"""Bandwidth selection for wave mechanisms (paper Section 5.3).

The wave half-width ``b`` trades sharpness (small ``b`` concentrates the high
probability band) against signal frequency (large ``b`` makes a "useful"
report more likely). The paper picks the ``b`` that maximizes an upper bound
on the mutual information between input and output:

    I(V, V~) <= log(2b + 1) - [2 b eps e^eps / (2b e^eps + 1)
                               - log(2b e^eps + 1)] ... (rearranged below)

whose unique stationary point is

    b*(eps) = (eps e^eps - e^eps + 1) / (2 e^eps (e^eps - 1 - eps)).

Reference values from the paper's Figure 6 captions (used as test anchors):
``b*(1) = 0.256``, ``b*(2) = 0.129``, ``b*(3) = 0.064``, ``b*(4) = 0.030``.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_domain_size, check_epsilon

__all__ = [
    "optimal_bandwidth",
    "discrete_bandwidth",
    "mutual_information_bound",
]


def optimal_bandwidth(epsilon: float) -> float:
    """The mutual-information-maximizing half-width ``b*`` for Square Wave.

    Non-increasing in ``epsilon``: tends to ``1/2`` as ``eps -> 0`` (output
    domain twice the input domain) and to ``0`` as ``eps -> inf`` (report the
    value itself). Uses ``expm1`` so the ``eps -> 0`` limit is numerically
    stable.
    """
    eps = check_epsilon(epsilon)
    e_eps = math.exp(eps)
    numerator = eps * e_eps - math.expm1(eps)
    denominator = 2.0 * e_eps * (math.expm1(eps) - eps)
    return numerator / denominator


def discrete_bandwidth(epsilon: float, d: int) -> int:
    """Integer half-width ``b = floor(b*(eps) * d)`` for discrete SW (§5.4).

    Can legitimately be 0 for large ``epsilon`` and small ``d``: then only the
    true bucket sits in the high-probability band.
    """
    d = check_domain_size(d)
    return int(math.floor(optimal_bandwidth(epsilon) * d))


def mutual_information_bound(epsilon: float, b: float) -> float:
    """The paper's upper bound on ``I(V, V~)`` as a function of ``b``.

    ``log((2b + 1) / (2b e^eps + 1)) + 2 b eps e^eps / (2b e^eps + 1)``.
    Exposed so tests (and Figure 6 readers) can confirm ``b*`` is the argmax.
    """
    eps = check_epsilon(epsilon)
    if b <= 0 or b > 0.5:
        raise ValueError(f"b must be in (0, 0.5], got {b}")
    e_eps = math.exp(eps)
    return math.log((2 * b + 1) / (2 * b * e_eps + 1)) + (
        2 * b * eps * e_eps / (2 * b * e_eps + 1)
    )
