"""Binomial smoothing kernels for the EMS algorithm (paper Section 5.5).

The S-step averages each estimate with its nearest neighbours using binomial
coefficients — ``(1, 2, 1)/4`` by default — which Nychka [21] showed is
equivalent to a roughness-penalizing regularizer on the EM objective.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["binomial_kernel", "smooth"]


def binomial_kernel(order: int = 2) -> np.ndarray:
    """Normalized binomial-coefficient kernel of the given even ``order``.

    ``order=2`` gives the paper's ``[1, 2, 1] / 4``; higher even orders give
    wider Pascal-row kernels (``order=4`` -> ``[1, 4, 6, 4, 1] / 16``), which
    the ablation benches use to study smoothing strength.
    """
    if order < 0 or order % 2 != 0:
        raise ValueError(f"order must be a non-negative even integer, got {order}")
    row = np.array([math.comb(order, k) for k in range(order + 1)], dtype=np.float64)
    return row / row.sum()


def smooth(x: np.ndarray, kernel: np.ndarray | None = None) -> np.ndarray:
    """Convolve with a smoothing kernel, renormalizing at the boundaries.

    Interior bins get the plain weighted average ``sum_k kernel[k] * x[i+k]``.
    At the edges the kernel taps that fall outside the domain are dropped and
    the remaining weights rescaled, so the first bin becomes
    ``(2 x_0 + x_1) / 3`` for the default kernel. The output is *not* forced
    to sum to the input's total — EMS renormalizes after the S-step.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"x must be a non-empty 1-d array, got shape {arr.shape}")
    k = binomial_kernel() if kernel is None else np.asarray(kernel, dtype=np.float64)
    if k.ndim != 1 or k.size % 2 == 0:
        raise ValueError("kernel must be 1-d with odd length")
    if k.size > 2 * arr.size - 1:
        raise ValueError("kernel wider than the signal")
    numerator = np.convolve(arr, k, mode="same")
    weight = np.convolve(np.ones_like(arr), k, mode="same")
    return numerator / weight
