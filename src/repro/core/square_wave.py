"""The Square Wave mechanism (paper Sections 5.2 and 5.4).

Continuous variant ("randomize before bucketize"): a user with ``v in [0,1]``
reports a draw from the density that equals ``p`` within ``[v - b, v + b]``
and ``q`` elsewhere on ``[-b, 1 + b]``, with ``p/q = e^eps`` and

    p = e^eps / (2b e^eps + 1),     q = 1 / (2b e^eps + 1).

Discrete variant ("bucketize before randomize"): same shape on an integer
domain of size ``d`` with integer half-width ``b``; the output domain has
``d + 2b`` positions and

    p = e^eps / ((2b + 1) e^eps + d - 1),
    q = 1 / ((2b + 1) e^eps + d - 1).

Both satisfy eps-LDP because every output's density ratio between any two
inputs is at most ``p/q = e^eps`` (Theorem 5.2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bandwidth import discrete_bandwidth, optimal_bandwidth
from repro.core.transform import discrete_sw_transition_matrix, sw_transition_matrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_domain_size, check_epsilon, check_unit_values

__all__ = ["SquareWave", "DiscreteSquareWave"]


class SquareWave:
    """Continuous Square Wave randomizer on ``[0, 1] -> [-b, 1 + b]``.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    b:
        Wave half-width; defaults to the mutual-information optimum
        ``b*(epsilon)`` from :func:`repro.core.bandwidth.optimal_bandwidth`.
    """

    name = "sw"

    def __init__(self, epsilon: float, b: float | None = None) -> None:
        self.epsilon = check_epsilon(epsilon)
        if b is None:
            b = optimal_bandwidth(self.epsilon)
        if not 0.0 < b <= 0.5:
            raise ValueError(f"b must be in (0, 0.5], got {b}")
        self.b = float(b)
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (2.0 * self.b * e_eps + 1.0)
        self.q = 1.0 / (2.0 * self.b * e_eps + 1.0)

    @property
    def output_low(self) -> float:
        return -self.b

    @property
    def output_high(self) -> float:
        return 1.0 + self.b

    def pdf(self, v: float, v_tilde: np.ndarray) -> np.ndarray:
        """Output density ``M_v(v~)`` for input ``v`` (0 outside the domain)."""
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"v must be in [0, 1], got {v}")
        out = np.asarray(v_tilde, dtype=np.float64)
        inside = (out >= self.output_low) & (out <= self.output_high)
        near = np.abs(out - v) <= self.b
        return np.where(inside, np.where(near, self.p, self.q), 0.0)

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Randomize each value into a float report in ``[-b, 1 + b]``.

        With probability ``2 b p`` the report is uniform on the near band
        ``[v - b, v + b]``; otherwise it is uniform on the complement, whose
        total length is exactly 1 regardless of ``v``.
        """
        vals = check_unit_values(values)
        gen = as_generator(rng)
        n = vals.size
        near_mass = 2.0 * self.b * self.p
        near = gen.random(n) < near_mass
        u = gen.random(n)
        near_draw = vals - self.b + u * (2.0 * self.b)
        # Far region = [-b, v - b) U (v + b, 1 + b]; the left piece has
        # length v, so u < v lands left and u >= v lands right.
        far_draw = np.where(u < vals, -self.b + u, vals + self.b + (u - vals))
        return np.where(near, near_draw, far_draw)

    def bucketize_reports(self, reports: np.ndarray, d_out: int) -> np.ndarray:
        """Histogram counts of reports over ``d_out`` output buckets."""
        d_out = check_domain_size(d_out)
        arr = np.asarray(reports, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("reports must be a non-empty 1-d array")
        if arr.min() < self.output_low - 1e-9 or arr.max() > self.output_high + 1e-9:
            raise ValueError("reports outside the SW output domain")
        span = self.output_high - self.output_low
        idx = np.floor((arr - self.output_low) / span * d_out).astype(np.int64)
        idx = np.clip(idx, 0, d_out - 1)
        return np.bincount(idx, minlength=d_out).astype(np.float64)

    def transition_matrix(self, d: int, d_out: int | None = None) -> np.ndarray:
        """Exact ``(d_out, d)`` bucket transition matrix (columns sum to 1)."""
        d = check_domain_size(d)
        d_out = d if d_out is None else check_domain_size(d_out)
        return sw_transition_matrix((self.p, self.q), self.b, d, d_out)

    def channel_operator(self, d: int, d_out: int | None = None):
        """Structured ``O(d)``-per-product view of :meth:`transition_matrix`.

        The trapezoid overlap kernel is translation-invariant in the
        continuous coordinate, so the channel runs as uniform + boxcar +
        narrow ramp windows (:class:`repro.engine.operators.
        UniformPlusToeplitzChannel`). Returns ``None`` — telling the engine
        cache to fall back to the dense matrix — when the ramp windows
        would cover most of the input domain (very coarse output grids),
        where the structured form has no advantage.
        """
        from repro.engine.operators import UniformPlusToeplitzChannel

        d = check_domain_size(d)
        d_out = d if d_out is None else check_domain_size(d_out)
        operator = UniformPlusToeplitzChannel(self.p, self.q, self.b, d, d_out)
        if 4 * operator.window_width >= max(d, 1):
            return None
        return operator

    def _params(self) -> dict:
        """Constructor kwargs for serialization (``repro.api`` state files)."""
        return {"epsilon": self.epsilon, "b": self.b}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SquareWave(epsilon={self.epsilon}, b={self.b:.4f})"


class DiscreteSquareWave:
    """Discrete Square Wave randomizer on ``{0..d-1} -> {0..d+2b-1}``.

    Output index ``j`` corresponds to input position ``j - b``; the near set
    of input ``v`` is ``{v, ..., v + 2b}`` in output indices (always ``2b+1``
    positions thanks to the domain extension).
    """

    name = "sw-discrete"

    def __init__(self, epsilon: float, d: int, b: int | None = None) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.d = check_domain_size(d)
        if b is None:
            b = discrete_bandwidth(self.epsilon, self.d)
        if b < 0 or 2 * b + 1 > self.d + 2 * b:
            raise ValueError(f"b must be a non-negative int, got {b}")
        self.b = int(b)
        e_eps = math.exp(self.epsilon)
        denom = (2.0 * self.b + 1.0) * e_eps + self.d - 1.0
        self.p = e_eps / denom
        self.q = 1.0 / denom

    @property
    def d_out(self) -> int:
        return self.d + 2 * self.b

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Randomize integer values into output indices.

        With probability ``(2b + 1) p`` the report is uniform over the near
        set; otherwise the shift trick ``(v + 2b + r) mod d_out`` with
        ``r ~ Uniform{1..d-1}`` lands uniformly on the ``d - 1`` far indices.
        """
        vals = np.asarray(values, dtype=np.int64)
        if vals.ndim != 1 or vals.size == 0:
            raise ValueError("values must be a non-empty 1-d array")
        if vals.min() < 0 or vals.max() >= self.d:
            raise ValueError(f"values must be in [0, {self.d - 1}]")
        gen = as_generator(rng)
        n = vals.size
        near_mass = (2.0 * self.b + 1.0) * self.p
        near = gen.random(n) < near_mass
        near_offset = gen.integers(0, 2 * self.b + 1, size=n)
        near_draw = vals + near_offset
        far_shift = gen.integers(1, self.d, size=n)
        far_draw = (vals + 2 * self.b + far_shift) % self.d_out
        return np.where(near, near_draw, far_draw).astype(np.int64)

    def bucketize_reports(self, reports: np.ndarray) -> np.ndarray:
        """Counts over the ``d + 2b`` output positions."""
        arr = np.asarray(reports, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("reports must be a non-empty 1-d array")
        if arr.min() < 0 or arr.max() >= self.d_out:
            raise ValueError("reports outside the discrete SW output domain")
        return np.bincount(arr, minlength=self.d_out).astype(np.float64)

    def transition_matrix(self) -> np.ndarray:
        """Exact ``(d + 2b, d)`` transition matrix (columns sum to 1)."""
        return discrete_sw_transition_matrix(self.p, self.q, self.b, self.d)

    def channel_operator(self):
        """Structured view of :meth:`transition_matrix`: uniform + 0/1 band.

        Output row ``j`` carries ``p`` on input positions ``j - 2b .. j``
        (clipped to the domain) and ``q`` elsewhere, so both EM products
        run as cumulative-sum boxcars
        (:class:`repro.engine.operators.UniformPlusBandedChannel`) —
        exact by construction, ``O(d)`` per product regardless of ``b``.
        """
        from repro.engine.operators import UniformPlusBandedChannel

        rows = np.arange(self.d_out, dtype=np.int64)
        lo = np.clip(rows - 2 * self.b, 0, self.d)
        hi = np.clip(rows + 1, 0, self.d)
        return UniformPlusBandedChannel(
            self.d, lo, hi, inside=self.p, outside=self.q
        )

    def _params(self) -> dict:
        """Constructor kwargs for serialization (``repro.api`` state files)."""
        return {"epsilon": self.epsilon, "d": self.d, "b": self.b}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteSquareWave(epsilon={self.epsilon}, d={self.d}, b={self.b})"
