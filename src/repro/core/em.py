"""Expectation Maximization, with and without smoothing (paper Section 5.5).

Given the aggregated report histogram ``n_j`` and the transition matrix
``M[j, i] = Pr[out in B~_j | in in B_i]``, plain EM converges to the MLE of
the input distribution (Theorem 5.6: the log-likelihood is concave). One
fully vectorized iteration is

    E-step:  P = x ⊙ Mᵀ (n ⊘ (M x))
    M-step:  x = P / sum(P)

EMS inserts an S-step after the M-step — binomial-kernel smoothing followed
by renormalization — which regularizes against fitting the LDP noise and
removes the delicate stopping-threshold tuning that plain EM needs.

Stopping: iterate until the log-likelihood improvement drops below ``tol``.
Paper defaults (Section 6.1): ``tol = 1e-3 * e^eps`` for EM and
``tol = 1e-3`` for EMS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import DEFAULT_MAX_ITER
from repro.core.smoothing import binomial_kernel, smooth

__all__ = [
    "EMResult",
    "DEFAULT_MAX_ITER",
    "expectation_maximization",
    "em_reconstruct",
    "ems_reconstruct",
]

#: Floor applied to predicted report probabilities before dividing/logging.
_DENSITY_FLOOR = 1e-300


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM/EMS run.

    Attributes
    ----------
    estimate:
        Reconstructed input histogram (non-negative, sums to 1).
    iterations:
        Number of completed iterations.
    converged:
        Whether the tolerance was met before ``max_iter``.
    log_likelihood:
        Final data log-likelihood ``sum_j n_j log (M x)_j``.
    history:
        Log-likelihood after every iteration (length ``iterations``).
    """

    estimate: np.ndarray
    iterations: int
    converged: bool
    log_likelihood: float
    history: np.ndarray = field(repr=False)


def _log_likelihood(counts: np.ndarray, predicted: np.ndarray) -> float:
    mask = counts > 0
    return float(counts[mask] @ np.log(predicted[mask]))


def expectation_maximization(
    matrix: np.ndarray,
    counts: np.ndarray,
    *,
    tol: float = 1e-3,
    max_iter: int = DEFAULT_MAX_ITER,
    smoothing_kernel: np.ndarray | None = None,
    x0: np.ndarray | None = None,
) -> EMResult:
    """Run EM (or EMS when ``smoothing_kernel`` is given) to reconstruct ``x``.

    Parameters
    ----------
    matrix:
        ``(d_out, d)`` transition matrix; columns must sum to 1.
    counts:
        Length-``d_out`` histogram of observed reports (non-negative).
    tol:
        Stop when the per-iteration log-likelihood improvement falls below
        this value.
    max_iter:
        Hard iteration cap; the result is flagged ``converged=False`` if hit.
    smoothing_kernel:
        Odd-length kernel applied after each M-step (EMS). ``None`` disables
        smoothing (plain EM).
    x0:
        Starting histogram; defaults to uniform.

    Returns
    -------
    EMResult
    """
    m = np.asarray(matrix, dtype=np.float64)
    n = np.asarray(counts, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"matrix must be 2-d, got shape {m.shape}")
    d_out, d = m.shape
    if n.shape != (d_out,):
        raise ValueError(f"counts must have shape ({d_out},), got {n.shape}")
    if n.min() < 0:
        raise ValueError("counts must be non-negative")
    if n.sum() == 0:
        raise ValueError("counts must contain at least one report")
    if not np.allclose(m.sum(axis=0), 1.0, atol=1e-6):
        raise ValueError("matrix columns must sum to 1")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")

    if x0 is None:
        x = np.full(d, 1.0 / d)
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        if x.shape != (d,) or x.min() < 0 or x.sum() <= 0:
            raise ValueError("x0 must be a non-negative length-d vector with positive sum")
        x = x / x.sum()

    history: list[float] = []
    previous = _log_likelihood(n, np.maximum(m @ x, _DENSITY_FLOOR))
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        predicted = np.maximum(m @ x, _DENSITY_FLOOR)
        weights = m.T @ (n / predicted)
        x = x * weights
        total = x.sum()
        if total <= 0:  # pragma: no cover - defensive; cannot occur with valid M
            x = np.full(d, 1.0 / d)
        else:
            x /= total
        if smoothing_kernel is not None:
            x = smooth(x, smoothing_kernel)
            x /= x.sum()
        current = _log_likelihood(n, np.maximum(m @ x, _DENSITY_FLOOR))
        history.append(current)
        if current - previous < tol:
            converged = True
            break
        previous = current

    return EMResult(
        estimate=x,
        iterations=iterations,
        converged=converged,
        log_likelihood=history[-1],
        history=np.asarray(history),
    )


def em_reconstruct(
    matrix: np.ndarray,
    counts: np.ndarray,
    epsilon: float,
    *,
    max_iter: int = DEFAULT_MAX_ITER,
) -> EMResult:
    """Plain EM with the paper's epsilon-scaled tolerance ``1e-3 * e^eps``."""
    return expectation_maximization(
        matrix, counts, tol=1e-3 * math.exp(epsilon), max_iter=max_iter
    )


def ems_reconstruct(
    matrix: np.ndarray,
    counts: np.ndarray,
    *,
    tol: float = 1e-3,
    max_iter: int = DEFAULT_MAX_ITER,
    smoothing_order: int = 2,
) -> EMResult:
    """EMS with the paper's fixed tolerance and (1, 2, 1)/4 kernel."""
    return expectation_maximization(
        matrix,
        counts,
        tol=tol,
        max_iter=max_iter,
        smoothing_kernel=binomial_kernel(smoothing_order),
    )
