"""Expectation Maximization, with and without smoothing (paper Section 5.5).

Given the aggregated report histogram ``n_j`` and the transition matrix
``M[j, i] = Pr[out in B~_j | in in B_i]``, plain EM converges to the MLE of
the input distribution (Theorem 5.6: the log-likelihood is concave). One
fully vectorized iteration is

    E-step:  P = x ⊙ Mᵀ (n ⊘ (M x))
    M-step:  x = P / sum(P)

EMS inserts an S-step after the M-step — binomial-kernel smoothing followed
by renormalization — which regularizes against fitting the LDP noise and
removes the delicate stopping-threshold tuning that plain EM needs.

Stopping: iterate until the log-likelihood improvement drops below ``tol``.
Paper defaults (Section 6.1): ``tol = 1e-3 * e^eps`` for EM and
``tol = 1e-3`` for EMS.

This module is the single-problem view of the batched solver in
:mod:`repro.engine.solver` — ``expectation_maximization`` wraps one count
vector into a one-column batch, so the sequential and batched paths share
one implementation (and one :class:`EMResult` diagnostics type). Call the
engine directly to solve many count vectors against the same matrix in one
BLAS-batched pass.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.config import DEFAULT_MAX_ITER
from repro.core.smoothing import binomial_kernel
from repro.engine.operators import ChannelOperator
from repro.engine.solver import EMResult, batched_expectation_maximization

__all__ = [
    "EMResult",
    "DEFAULT_MAX_ITER",
    "expectation_maximization",
    "em_reconstruct",
    "ems_reconstruct",
]


def expectation_maximization(
    matrix: np.ndarray,
    counts: np.ndarray,
    *,
    tol: float = 1e-3,
    max_iter: int = DEFAULT_MAX_ITER,
    smoothing_kernel: np.ndarray | None = None,
    x0: np.ndarray | None = None,
) -> EMResult:
    """Run EM (or EMS when ``smoothing_kernel`` is given) to reconstruct ``x``.

    Parameters
    ----------
    matrix:
        ``(d_out, d)`` transition matrix (columns must sum to 1) or a
        :class:`repro.engine.operators.ChannelOperator`.
    counts:
        Length-``d_out`` histogram of observed reports (non-negative).
    tol:
        Stop when the per-iteration log-likelihood improvement falls below
        this value.
    max_iter:
        Hard iteration cap; the result is flagged ``converged=False`` if hit.
    smoothing_kernel:
        Odd-length kernel applied after each M-step (EMS). ``None`` disables
        smoothing (plain EM).
    x0:
        Starting histogram; defaults to uniform.

    Returns
    -------
    EMResult
    """
    if isinstance(matrix, ChannelOperator):
        m = matrix
        d_out = m.shape[0]
    else:
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2:
            raise ValueError(f"matrix must be 2-d, got shape {m.shape}")
        d_out = m.shape[0]
    n = np.asarray(counts, dtype=np.float64)
    if n.shape != (d_out,):
        raise ValueError(f"counts must have shape ({d_out},), got {n.shape}")
    if x0 is not None:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.ndim != 1:
            raise ValueError(
                "x0 must be a non-negative length-d vector with positive sum"
            )
    return batched_expectation_maximization(
        m,
        n[:, None],
        tol=tol,
        max_iter=max_iter,
        smoothing_kernel=smoothing_kernel,
        x0=x0,
    ).column(0)


def em_reconstruct(
    matrix: np.ndarray,
    counts: np.ndarray,
    epsilon: float,
    *,
    max_iter: int = DEFAULT_MAX_ITER,
) -> EMResult:
    """Plain EM with the paper's epsilon-scaled tolerance ``1e-3 * e^eps``."""
    return expectation_maximization(
        matrix, counts, tol=1e-3 * math.exp(epsilon), max_iter=max_iter
    )


def ems_reconstruct(
    matrix: np.ndarray,
    counts: np.ndarray,
    *,
    tol: float = 1e-3,
    max_iter: int = DEFAULT_MAX_ITER,
    smoothing_order: int = 2,
) -> EMResult:
    """EMS with the paper's fixed tolerance and (1, 2, 1)/4 kernel."""
    return expectation_maximization(
        matrix,
        counts,
        tol=tol,
        max_iter=max_iter,
        smoothing_kernel=binomial_kernel(smoothing_order),
    )
