"""High-level estimators: the public entry point for SW + EM/EMS.

``SWEstimator`` wires the full paper pipeline together: Square Wave
randomization on the client, report bucketization on the server, and EM or
EMS reconstruction. ``WaveEstimator`` accepts any wave mechanism (used by the
Figure 5 wave-shape study), and ``DiscreteSWEstimator`` is the
"bucketize before randomize" variant from Section 5.4.

Typical usage::

    est = SWEstimator(epsilon=1.0, d=256)
    histogram = est.fit(values)          # simulate all users + aggregate

    # Or split across trust boundaries:
    reports = est.privatize(values)      # client side
    histogram = est.aggregate(reports)   # server side
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.em import DEFAULT_MAX_ITER, EMResult, expectation_maximization
from repro.core.general_wave import GeneralWave
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.utils.validation import check_domain_size

__all__ = ["WaveEstimator", "SWEstimator", "DiscreteSWEstimator", "estimate_distribution"]

_POSTPROCESS_CHOICES = ("ems", "em")


def _default_tolerance(postprocess: str, epsilon: float) -> float:
    """Paper Section 6.1: ``1e-3 * e^eps`` for EM, fixed ``1e-3`` for EMS."""
    if postprocess == "em":
        return 1e-3 * math.exp(epsilon)
    return 1e-3


class WaveEstimator:
    """Distribution estimator around any continuous wave mechanism.

    Parameters
    ----------
    mechanism:
        A :class:`~repro.core.square_wave.SquareWave` or
        :class:`~repro.core.general_wave.GeneralWave` instance.
    d:
        Granularity of the reconstructed input histogram.
    d_out:
        Report bucket count; defaults to ``d`` (the paper's choice, close to
        the ``sqrt(N)`` guideline for its datasets).
    postprocess:
        ``"ems"`` (default) or ``"em"``.
    tol, max_iter, smoothing_order:
        EM/EMS controls; ``tol=None`` selects the paper default for the
        chosen post-processing.

    After :meth:`fit` or :meth:`aggregate`, the EM diagnostics are available
    as :attr:`result_`.
    """

    def __init__(
        self,
        mechanism,
        d: int = 1024,
        *,
        d_out: int | None = None,
        postprocess: str = "ems",
        tol: float | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        smoothing_order: int = 2,
    ) -> None:
        if postprocess not in _POSTPROCESS_CHOICES:
            raise ValueError(
                f"postprocess must be one of {_POSTPROCESS_CHOICES}, got {postprocess!r}"
            )
        self.mechanism = mechanism
        self.d = check_domain_size(d)
        self.d_out = self.d if d_out is None else check_domain_size(d_out)
        self.postprocess = postprocess
        self.tol = _default_tolerance(postprocess, mechanism.epsilon) if tol is None else float(tol)
        self.max_iter = int(max_iter)
        self.smoothing_order = int(smoothing_order)
        self._matrix: np.ndarray | None = None
        self.result_: EMResult | None = None

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    @property
    def transition_matrix(self) -> np.ndarray:
        """The ``(d_out, d)`` matrix, built lazily and cached per estimator."""
        if self._matrix is None:
            self._matrix = self.mechanism.transition_matrix(self.d, self.d_out)
        return self._matrix

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Client-side: randomize raw values in ``[0, 1]`` into reports."""
        return self.mechanism.privatize(values, rng=rng)

    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        """Server-side: bucketize reports and reconstruct the histogram."""
        counts = self.mechanism.bucketize_reports(reports, self.d_out)
        return self.aggregate_counts(counts)

    def aggregate_counts(self, counts: np.ndarray) -> np.ndarray:
        """Reconstruct from an already-bucketized report histogram."""
        kernel = (
            binomial_kernel(self.smoothing_order) if self.postprocess == "ems" else None
        )
        self.result_ = expectation_maximization(
            self.transition_matrix,
            counts,
            tol=self.tol,
            max_iter=self.max_iter,
            smoothing_kernel=kernel,
        )
        return self.result_.estimate

    def fit(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Simulate the whole collection round and return the histogram."""
        return self.aggregate(self.privatize(values, rng=rng))


class SWEstimator(WaveEstimator):
    """Square Wave + EM/EMS — the paper's headline method.

    ``b`` defaults to the mutual-information optimum ``b*(epsilon)``.
    """

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        *,
        b: float | None = None,
        **kwargs,
    ) -> None:
        super().__init__(SquareWave(epsilon, b=b), d, **kwargs)


class DiscreteSWEstimator:
    """Discrete SW + EM/EMS — "bucketize before randomize" (Section 5.4).

    Users bucketize their value into ``{0..d-1}`` first; randomization happens
    on the discrete domain. Interface mirrors :class:`WaveEstimator` except
    reports are integers.
    """

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        *,
        b: int | None = None,
        postprocess: str = "ems",
        tol: float | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        smoothing_order: int = 2,
    ) -> None:
        if postprocess not in _POSTPROCESS_CHOICES:
            raise ValueError(
                f"postprocess must be one of {_POSTPROCESS_CHOICES}, got {postprocess!r}"
            )
        self.mechanism = DiscreteSquareWave(epsilon, d, b=b)
        self.d = self.mechanism.d
        self.postprocess = postprocess
        self.tol = _default_tolerance(postprocess, self.mechanism.epsilon) if tol is None else float(tol)
        self.max_iter = int(max_iter)
        self.smoothing_order = int(smoothing_order)
        self._matrix: np.ndarray | None = None
        self.result_: EMResult | None = None

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    @property
    def transition_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = self.mechanism.transition_matrix()
        return self._matrix

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Client-side: bucketize unit values, then discrete-SW randomize."""
        from repro.utils.histograms import bucketize

        buckets = bucketize(values, self.d)
        return self.mechanism.privatize(buckets, rng=rng)

    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        counts = self.mechanism.bucketize_reports(reports)
        kernel = (
            binomial_kernel(self.smoothing_order) if self.postprocess == "ems" else None
        )
        self.result_ = expectation_maximization(
            self.transition_matrix,
            counts,
            tol=self.tol,
            max_iter=self.max_iter,
            smoothing_kernel=kernel,
        )
        return self.result_.estimate

    def fit(self, values: np.ndarray, rng=None) -> np.ndarray:
        return self.aggregate(self.privatize(values, rng=rng))


def estimate_distribution(
    values: np.ndarray,
    epsilon: float,
    d: int = 1024,
    *,
    method: str = "sw-ems",
    rng=None,
    **kwargs,
) -> np.ndarray:
    """One-call distribution estimation.

    Parameters
    ----------
    values:
        Private values in ``[0, 1]`` (one per user).
    epsilon:
        Privacy budget.
    d:
        Histogram granularity.
    method:
        ``"sw-ems"`` (paper default), ``"sw-em"``, or ``"sw-discrete-ems"``.
    kwargs:
        Forwarded to the underlying estimator.
    """
    if method == "sw-ems":
        estimator = SWEstimator(epsilon, d, postprocess="ems", **kwargs)
    elif method == "sw-em":
        estimator = SWEstimator(epsilon, d, postprocess="em", **kwargs)
    elif method == "sw-discrete-ems":
        estimator = DiscreteSWEstimator(epsilon, d, postprocess="ems", **kwargs)
    else:
        raise ValueError(
            "method must be 'sw-ems', 'sw-em', or 'sw-discrete-ems', "
            f"got {method!r}"
        )
    return estimator.fit(values, rng=rng)
