"""High-level estimators: the public entry point for SW + EM/EMS.

``SWEstimator`` wires the full paper pipeline together: Square Wave
randomization on the client, report bucketization on the server, and EM or
EMS reconstruction. ``WaveEstimator`` accepts any wave mechanism (used by the
Figure 5 wave-shape study), and ``DiscreteSWEstimator`` is the
"bucketize before randomize" variant from Section 5.4.

All three implement the :class:`repro.api.Estimator` contract: the
aggregation state is the O(d_out) report-count vector, so shards can
``partial_fit`` independently, ``merge`` exactly, and serialize through
``to_state()``/``from_state()``.

Typical usage::

    est = SWEstimator(epsilon=1.0, d=256)
    histogram = est.fit(values)          # simulate all users + aggregate

    # Or split across trust boundaries:
    reports = est.privatize(values)      # client side
    histogram = est.aggregate(reports)   # server side

    # Or stream shards and estimate mid-round:
    est.partial_fit(values_monday)
    est.partial_fit(values_tuesday)
    histogram = est.estimate()
"""

from __future__ import annotations

import numpy as np

from repro.api.base import Estimator, mechanism_spec
from repro.api.config import DEFAULT_MAX_ITER, EMConfig
from repro.api.errors import EmptyAggregateError
from repro.core.em import EMResult
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.engine.cache import cached_channel_operator, cached_transition_matrix
from repro.engine.operators import channel_mode
from repro.utils.validation import check_domain_size

__all__ = ["WaveEstimator", "SWEstimator", "DiscreteSWEstimator", "estimate_distribution"]


class WaveEstimator(Estimator):
    """Distribution estimator around any continuous wave mechanism.

    Parameters
    ----------
    mechanism:
        A :class:`~repro.core.square_wave.SquareWave` or
        :class:`~repro.core.general_wave.GeneralWave` instance.
    d:
        Granularity of the reconstructed input histogram.
    d_out:
        Report bucket count; defaults to ``d`` (the paper's choice, close to
        the ``sqrt(N)`` guideline for its datasets).
    postprocess, tol, max_iter, smoothing_order, backend:
        EM/EMS controls; ``tol=None`` selects the paper default for the
        chosen post-processing, ``backend=None`` the process-wide compute
        backend. Equivalently pass a pre-built ``config``
        (:class:`repro.api.EMConfig`), which takes precedence.

    After :meth:`fit`, :meth:`aggregate`, or :meth:`estimate`, the EM
    diagnostics are available as :attr:`result_`.
    """

    kind = "distribution"
    wire_codec = "float"

    def __init__(
        self,
        mechanism,
        d: int = 1024,
        *,
        d_out: int | None = None,
        postprocess: str = "ems",
        tol: float | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        smoothing_order: int = 2,
        backend: str | None = None,
        config: EMConfig | None = None,
    ) -> None:
        if config is None:
            config = EMConfig(
                postprocess=postprocess,
                tol=tol,
                max_iter=max_iter,
                smoothing_order=smoothing_order,
                backend=backend,
            )
        self.mechanism = mechanism
        self.d = check_domain_size(d)
        self.d_out = self.d if d_out is None else check_domain_size(d_out)
        self.config = config
        self._matrix: np.ndarray | None = None
        self.result_: EMResult | None = None
        self.reset()

    # -- configuration views (kept as attributes of record) ---------------
    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    @property
    def postprocess(self) -> str:
        return self.config.postprocess

    @property
    def tol(self) -> float:
        """Effective stopping tolerance (always a plain ``float``)."""
        return self.config.resolve_tolerance(self.epsilon)

    @property
    def max_iter(self) -> int:
        return self.config.max_iter

    @property
    def smoothing_order(self) -> int:
        return self.config.smoothing_order

    @property
    def name(self) -> str:
        return f"{self.mechanism.name}-{self.config.postprocess}"

    @property
    def n_reports(self) -> int:
        """Reports ingested into the current aggregation state."""
        return int(round(self._counts.sum()))

    @property
    def transition_matrix(self) -> np.ndarray:
        """The ``(d_out, d)`` matrix, served read-only from the engine cache.

        Identically-parameterized estimators across the process share one
        immutable array (see :mod:`repro.engine.cache`); its column-sum
        invariant is validated once at insert, so EM runs skip the check.
        """
        if self._matrix is None:
            self._matrix = self._build_matrix()
        return self._matrix

    def _build_matrix(self) -> np.ndarray:
        return cached_transition_matrix(self.mechanism, self.d, self.d_out)

    @property
    def channel(self):
        """What EM/EMS runs against: a structured operator, or the matrix.

        With the engine's default ``"structured"`` channel mode this is the
        mechanism's :class:`~repro.engine.operators.ChannelOperator`
        (``O(d)`` per product for the wave channels); after
        ``repro.engine.set_channel_mode("dense")`` — or inside the
        :func:`repro.engine.dense_channels` context — it is the cached
        dense matrix, restoring the historical solver path bit for bit.
        """
        if channel_mode() == "dense":
            return self.transition_matrix
        return self._build_operator()

    def _build_operator(self):
        return cached_channel_operator(self.mechanism, self.d, self.d_out)

    # -- lifecycle ---------------------------------------------------------
    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Client-side: randomize raw values in ``[0, 1]`` into reports."""
        return self.mechanism.privatize(values, rng=rng)

    def _bucketize(self, reports: np.ndarray) -> np.ndarray:
        return self.mechanism.bucketize_reports(reports, self.d_out)

    def ingest(self, reports: np.ndarray) -> None:
        """Server-side: fold randomized reports into the count vector.

        An empty batch is a no-op (a shard with no users is routine in
        distributed collection).
        """
        if np.asarray(reports).size == 0:
            return
        self._counts += self._bucketize(reports)

    def ingest_counts(self, counts: np.ndarray) -> None:
        """Fold an already-bucketized report histogram into the state."""
        arr = np.asarray(counts, dtype=np.float64)
        if arr.shape != (self.d_out,):
            raise ValueError(
                f"counts must have shape ({self.d_out},), got {arr.shape}"
            )
        if arr.min() < 0:
            raise ValueError("counts must be non-negative")
        self._counts += arr

    def estimate(self, *, x0: np.ndarray | None = None) -> np.ndarray:
        """Reconstruct the input histogram from all reports ingested so far.

        ``x0`` warm-starts EM/EMS from a previous posterior instead of the
        uniform prior — same fixed point, far fewer iterations when the
        counts changed only a little since that posterior was computed
        (the incremental-serving path of
        :class:`repro.protocol.server.CollectionServer`).
        """
        if self._counts.sum() <= 0:
            raise EmptyAggregateError("no reports ingested yet")
        self.result_ = self.config.run(
            self.channel, self._counts, self.epsilon,
            validated=True, x0=x0,
        )
        return self.result_.estimate

    def reset(self) -> None:
        self._counts = np.zeros(self.d_out, dtype=np.float64)
        self.result_ = None

    def aggregate_counts(self, counts: np.ndarray) -> np.ndarray:
        """Reconstruct from one report histogram (resets prior state)."""
        self.reset()
        self.ingest_counts(counts)
        return self.estimate()

    def confidence_bands(
        self,
        *,
        coverage: float = 0.9,
        n_bootstrap: int = 100,
        rng=None,
    ):
        """Parametric-bootstrap bands from the *current* aggregation state.

        Unlike :func:`repro.core.confidence.estimator_confidence_bands`,
        which simulates a fresh collection from raw values, this works from
        the report counts already ingested — the only form of the data a
        streaming server (or a task :class:`~repro.tasks.session.Session`)
        still holds. Returns
        :class:`~repro.core.confidence.ConfidenceBands`.
        """
        from repro.core.confidence import bootstrap_confidence_bands

        if self._counts.sum() <= 0:
            raise EmptyAggregateError("no reports ingested yet")
        smoothing = (
            self.smoothing_order if self.postprocess == "ems" else None
        )
        return bootstrap_confidence_bands(
            self.transition_matrix,
            self._counts,
            coverage=coverage,
            n_bootstrap=n_bootstrap,
            tol=self.tol,
            max_iter=self.max_iter,
            smoothing_order=smoothing,
            rng=rng,
        )

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "WaveEstimator") -> None:
        self._counts += other._counts
        self.result_ = None

    def _params(self) -> dict:
        return {
            "mechanism": mechanism_spec(self.mechanism),
            "d": self.d,
            "d_out": self.d_out,
            **self.config.to_dict(),
        }

    def _state(self) -> dict:
        return {"counts": self._counts.tolist()}

    def _load_state(self, state: dict) -> None:
        self.reset()
        self.ingest_counts(state["counts"])

    def _repr_fields(self) -> dict:
        return {
            "mechanism": self.mechanism,
            "d": self.d,
            "d_out": self.d_out,
            "postprocess": self.postprocess,
            "tol": self.tol,
        }


class SWEstimator(WaveEstimator):
    """Square Wave + EM/EMS — the paper's headline method.

    ``b`` defaults to the mutual-information optimum ``b*(epsilon)``.
    """

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        *,
        b: float | None = None,
        **kwargs,
    ) -> None:
        super().__init__(SquareWave(epsilon, b=b), d, **kwargs)

    @property
    def b(self) -> float:
        return self.mechanism.b

    def _params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "b": self.mechanism.b,
            "d": self.d,
            "d_out": self.d_out,
            **self.config.to_dict(),
        }

    def _repr_fields(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "d_out": self.d_out,
            "postprocess": self.postprocess,
            "b": round(self.b, 6),
        }


class DiscreteSWEstimator(WaveEstimator):
    """Discrete SW + EM/EMS — "bucketize before randomize" (Section 5.4).

    Users bucketize their value into ``{0..d-1}`` first; randomization
    happens on the discrete domain, so reports are integers over the
    ``d + 2b`` extended output positions.
    """

    wire_codec = "category"

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        *,
        b: int | None = None,
        **kwargs,
    ) -> None:
        mechanism = DiscreteSquareWave(epsilon, d, b=b)
        super().__init__(mechanism, mechanism.d, d_out=mechanism.d_out, **kwargs)

    @property
    def b(self) -> int:
        return self.mechanism.b

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Client-side: bucketize unit values, then discrete-SW randomize."""
        from repro.utils.histograms import bucketize

        buckets = bucketize(values, self.d)
        return self.mechanism.privatize(buckets, rng=rng)

    def _bucketize(self, reports: np.ndarray) -> np.ndarray:
        return self.mechanism.bucketize_reports(reports)

    def _build_matrix(self) -> np.ndarray:
        # The discrete mechanism owns its geometry: cache key on params only.
        return cached_transition_matrix(self.mechanism)

    def _build_operator(self):
        return cached_channel_operator(self.mechanism)

    def _params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "b": self.mechanism.b,
            **self.config.to_dict(),
        }

    def _repr_fields(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "postprocess": self.postprocess,
            "b": self.b,
        }


def estimate_distribution(
    values: np.ndarray,
    epsilon: float,
    d: int = 1024,
    *,
    method: str = "sw-ems",
    rng=None,
    **kwargs,
) -> np.ndarray:
    """One-call distribution estimation through the central registry.

    Parameters
    ----------
    values:
        Private values in ``[0, 1]`` (one per user).
    epsilon:
        Privacy budget.
    d:
        Histogram granularity.
    method:
        Any registered distribution method (``"sw-ems"`` is the paper
        default; see ``repro.api.list_estimators`` for the full set).
    kwargs:
        Forwarded to the underlying estimator factory.
    """
    from repro.api.registry import get_spec, list_estimators, make_estimator

    try:
        spec = get_spec(method)
    except ValueError:
        available = sorted(
            s.name for s in list_estimators(kind="distribution")
        )
        raise ValueError(
            f"unknown method {method!r}; registered methods: {available}"
        ) from None
    if spec.kind != "distribution":
        raise ValueError(
            f"method {method!r} estimates a {spec.kind}, not a probability "
            "distribution; use make_estimator for leaf-signed/frequency/"
            "scalar methods"
        )
    estimator = make_estimator(method, epsilon, d, **kwargs)
    return estimator.fit(values, rng=rng)
