"""Bootstrap confidence bands for reconstructed distributions.

The EM/EMS point estimate carries no uncertainty information, but a
deployment reporting "15.9% of users fall in this range" needs error bars.
This module provides a *parametric bootstrap*: treat the fitted model
``M @ x_hat`` as the report-generating distribution, resample report
histograms from it, re-run the reconstruction on each resample, and read
percentile bands off the bootstrap distribution.

The bootstrap captures the multinomial sampling noise of the reports pushed
through the (non-linear) EM/EMS inversion — i.e. the *reproducibility* of
the estimate: rerunning the same collection would land inside the bands.
It deliberately does **not** account for reconstruction bias: EMS trades
variance for a smoothing bias, so on spiky truths the bands can sit tightly
around a biased point estimate. Bands therefore answer "how much would this
estimate move under fresh randomness", not "how far is it from the truth";
the latter gap is bounded empirically in EXPERIMENTS.md per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.em import expectation_maximization
from repro.core.smoothing import binomial_kernel
from repro.utils.rng import as_generator

__all__ = ["ConfidenceBands", "bootstrap_confidence_bands", "estimator_confidence_bands"]


@dataclass(frozen=True)
class ConfidenceBands:
    """Percentile bootstrap bands around a histogram estimate.

    ``lower``/``upper`` bound each bucket's mass at the requested coverage;
    ``point`` is the original estimate; ``samples`` the bootstrap matrix
    (one reconstruction per row) for custom post-processing.
    """

    point: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    coverage: float
    samples: np.ndarray

    @property
    def width(self) -> np.ndarray:
        """Per-bucket band width — a direct uncertainty readout."""
        return self.upper - self.lower


def bootstrap_confidence_bands(
    matrix: np.ndarray,
    counts: np.ndarray,
    *,
    coverage: float = 0.9,
    n_bootstrap: int = 100,
    tol: float = 1e-3,
    max_iter: int = 10_000,
    smoothing_order: int | None = 2,
    method: str = "centered",
    rng=None,
) -> ConfidenceBands:
    """Parametric-bootstrap bands for an EM/EMS reconstruction.

    Parameters
    ----------
    matrix, counts:
        The transition matrix and observed report histogram (as passed to
        :func:`~repro.core.em.expectation_maximization`).
    coverage:
        Two-sided band coverage, e.g. 0.9 for a 5%-95% band.
    n_bootstrap:
        Bootstrap resamples; 100 gives percentile bands stable to ~1%.
    smoothing_order:
        EMS kernel order, or ``None`` for plain EM. Must match how the point
        estimate was produced.
    method:
        ``"centered"`` (default): re-run the reconstruction once on the
        *exact* expected counts to locate the resampling attractor, then
        form bands as ``point + quantiles(samples - attractor)``. This
        removes the systematic drift that re-applying a regularized
        estimator to model-generated counts introduces, leaving pure
        sampling variability. ``"percentile"`` uses the raw resample
        quantiles (can sit off the point estimate when the drift is large).
    """
    if not 0.0 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    if n_bootstrap < 2:
        raise ValueError(f"n_bootstrap must be >= 2, got {n_bootstrap}")
    if method not in ("centered", "percentile"):
        raise ValueError(f"method must be 'centered' or 'percentile', got {method!r}")
    gen = as_generator(rng)
    kernel = binomial_kernel(smoothing_order) if smoothing_order is not None else None

    def reconstruct(observed: np.ndarray) -> np.ndarray:
        result = expectation_maximization(
            matrix, observed, tol=tol, max_iter=max_iter, smoothing_kernel=kernel
        )
        return result.estimate

    point = reconstruct(np.asarray(counts, dtype=np.float64))
    n_reports = int(np.asarray(counts).sum())
    report_model = np.maximum(np.asarray(matrix) @ point, 0.0)
    report_model /= report_model.sum()

    samples = np.empty((n_bootstrap, point.size))
    for i in range(n_bootstrap):
        resampled = gen.multinomial(n_reports, report_model).astype(np.float64)
        samples[i] = reconstruct(resampled)

    tail = (1.0 - coverage) / 2.0
    if method == "centered":
        attractor = reconstruct(n_reports * report_model)
        deviations = samples - attractor
        lower = np.clip(point + np.quantile(deviations, tail, axis=0), 0.0, 1.0)
        upper = np.clip(point + np.quantile(deviations, 1.0 - tail, axis=0), 0.0, 1.0)
    else:
        lower = np.quantile(samples, tail, axis=0)
        upper = np.quantile(samples, 1.0 - tail, axis=0)
    return ConfidenceBands(
        point=point, lower=lower, upper=upper, coverage=coverage, samples=samples
    )


def estimator_confidence_bands(
    estimator,
    values: np.ndarray,
    *,
    coverage: float = 0.9,
    n_bootstrap: int = 100,
    rng=None,
) -> ConfidenceBands:
    """One-call bands for a :class:`~repro.core.pipeline.WaveEstimator`.

    Runs the estimator's own privatization once, then bootstraps the
    reconstruction. The estimator's post-processing choice (EM vs EMS) is
    respected.
    """
    gen = as_generator(rng)
    reports = estimator.privatize(values, rng=gen)
    counts = estimator.mechanism.bucketize_reports(reports, estimator.d_out)
    smoothing = (
        estimator.smoothing_order if estimator.postprocess == "ems" else None
    )
    return bootstrap_confidence_bands(
        estimator.transition_matrix,
        counts,
        coverage=coverage,
        n_bootstrap=n_bootstrap,
        tol=estimator.tol,
        max_iter=estimator.max_iter,
        smoothing_order=smoothing,
        rng=gen,
    )
