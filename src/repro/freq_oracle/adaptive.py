"""Variance-based choice between GRR and OLH (paper Section 2.1).

GRR's per-user variance is ``(d - 2 + e^eps) / (e^eps - 1)^2`` and OLH's is
``4 e^eps / (e^eps - 1)^2``, so GRR wins exactly when ``d - 2 < 3 e^eps``.
Hierarchical methods and CFO-binning call this at every (sub)domain size.
"""

from __future__ import annotations

import math

from repro.freq_oracle.base import FrequencyOracle
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["choose_oracle", "best_oracle_name"]


def best_oracle_name(epsilon: float, d: int) -> str:
    """``"grr"`` when GRR has lower variance than OLH, else ``"olh"``."""
    epsilon = check_epsilon(epsilon)
    d = check_domain_size(d)
    return "grr" if d - 2 < 3.0 * math.exp(epsilon) else "olh"


def choose_oracle(epsilon: float, d: int) -> FrequencyOracle:
    """Instantiate the lower-variance oracle through the central registry."""
    from repro.api.registry import make_estimator

    return make_estimator(best_oracle_name(epsilon, d), epsilon, d)
