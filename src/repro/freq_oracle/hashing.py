"""Universal hash family used by Optimized Local Hashing.

OLH needs, per user, a uniformly chosen hash function mapping the value
domain ``{0..d-1}`` into ``{0..g-1}``. We use the classic Carter-Wegman
construction ``((a*v + b) mod P) mod g`` with a Mersenne prime ``P``; drawing
``(a, b)`` per user gives a pairwise-independent family, which is all OLH's
analysis requires, and it evaluates as two vectorized integer ops.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["PRIME", "sample_hash_params", "evaluate_hash"]

#: Mersenne prime 2^31 - 1. With d <= 2^20 and a < P the products stay well
#: inside int64, so the modular arithmetic below never overflows.
PRIME: int = 2**31 - 1


def sample_hash_params(n: int, rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Draw per-user hash coefficients ``a in [1, P)`` and ``b in [0, P)``."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    gen = as_generator(rng)
    a = gen.integers(1, PRIME, size=n, dtype=np.int64)
    b = gen.integers(0, PRIME, size=n, dtype=np.int64)
    return a, b


def evaluate_hash(
    a: np.ndarray,
    b: np.ndarray,
    values: np.ndarray,
    g: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate ``h_{a,b}(v) = ((a*v + b) mod P) mod g`` elementwise.

    Broadcasting rules apply: pass ``a[:, None]`` and a row of candidate
    values to evaluate every user's hash on the whole domain at once.
    ``out`` (an int64 array of the broadcast shape) makes every step run
    in place — the hot aggregation loops reuse one buffer per chunk
    instead of materializing four temporaries, while client and server
    keep this single definition of the hash.
    """
    if g < 2:
        raise ValueError(f"g must be >= 2, got {g}")
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if out is None:
        return ((a * values + b) % PRIME) % g
    np.multiply(a, values, out=out)
    np.add(out, b, out=out)
    np.remainder(out, PRIME, out=out)
    np.remainder(out, g, out=out)
    return out
