"""Common interface for categorical frequency oracles (paper Section 2.1).

A frequency oracle (FO) runs in two halves:

* client side — ``privatize`` maps each user's value in ``{0..d-1}`` to a
  randomized report satisfying epsilon-LDP;
* server side — ``aggregate`` turns one batch of reports into *unbiased*
  frequency estimates (which may be negative; constraint restoration is a
  separate post-processing step).

``estimate_from_values`` chains both halves, which is what simulations use.

Frequency oracles implement the full :class:`repro.api.Estimator` lifecycle
(kind ``"frequency"``): because each batch estimate is an affine function of
per-report counts, a user-weighted running mean over batches is an *exact*
sufficient statistic — ``ingest`` accumulates it, ``merge`` combines shards,
and ``estimate`` returns the combined unbiased frequency vector.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.api.base import Estimator
from repro.api.errors import EmptyAggregateError
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["FrequencyOracle"]


class FrequencyOracle(Estimator):
    """Abstract base class for categorical frequency oracles."""

    #: Short protocol name used by registries and reports.
    name: str = "fo"

    kind = "frequency"

    #: Smallest usable domain size. HRR overrides this to 1: the top Haar
    #: layer has a single coefficient and degenerates to binary randomized
    #: response over its sign.
    min_domain: int = 2

    def __init__(self, epsilon: float, d: int) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.d = check_domain_size(d, minimum=self.min_domain)
        self.reset()

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"values must be a non-empty 1-d array, got shape {arr.shape}")
        if not np.issubdtype(arr.dtype, np.integer):
            if not np.all(np.equal(np.mod(arr, 1), 0)):
                raise ValueError("values must be integers in {0..d-1}")
            arr = arr.astype(np.int64)
        else:
            arr = arr.astype(np.int64)
        if arr.min() < 0 or arr.max() >= self.d:
            raise ValueError(
                f"values must be in [0, {self.d - 1}], got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    @abc.abstractmethod
    def privatize(self, values: np.ndarray, rng=None) -> Any:
        """Randomize a vector of private values into LDP reports."""

    @abc.abstractmethod
    def aggregate_batch(self, reports: Any) -> np.ndarray:
        """Unbiased frequency estimates (length ``d``) from one batch.

        A pure function of the batch (streaming state untouched); raises
        ``ValueError`` on an empty or malformed batch.
        """

    @property
    @abc.abstractmethod
    def estimate_variance(self) -> float:
        """Per-frequency estimator variance for a *single* user report.

        Divide by the number of users ``n`` to get the variance of the
        aggregated estimate; this is the quantity compared when choosing
        between GRR and OLH.
        """

    @staticmethod
    def _report_count(reports: Any) -> int:
        """Number of users behind a batch of reports."""
        n = getattr(reports, "n", None)
        if n is not None:
            return int(n)
        return int(np.asarray(reports).shape[0])

    # -- streaming lifecycle ----------------------------------------------
    def ingest(self, reports: Any) -> None:
        """Fold one batch into the user-weighted running estimate.

        An empty batch is a no-op (a shard with no users is routine in
        distributed collection).
        """
        n = self._report_count(reports)
        if n == 0:
            return
        self._weighted += n * self.aggregate_batch(reports)
        self._n += n

    def aggregate(self, reports: Any) -> np.ndarray:
        """Unbiased estimates from exactly these reports.

        Follows the :class:`repro.api.Estimator` contract: the streaming
        state is reset to this batch (so a subsequent ``to_state()`` carries
        it); the returned vector equals :meth:`aggregate_batch`.
        """
        batch = self.aggregate_batch(reports)  # validates before any reset
        self.reset()
        n = self._report_count(reports)
        self._weighted += n * batch
        self._n += n
        return batch

    def estimate(self) -> np.ndarray:
        """Combined unbiased frequency estimate over all ingested batches."""
        if self._n == 0:
            raise EmptyAggregateError("no reports ingested yet")
        return self._weighted / self._n

    def reset(self) -> None:
        self._n = 0
        self._weighted = np.zeros(self.d, dtype=np.float64)

    @property
    def n_reports(self) -> int:
        """Reports ingested into the current aggregation state."""
        return self._n

    def estimate_from_values(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Privatize then aggregate — one full simulated collection round.

        Pure (does not touch the streaming state).
        """
        return self.aggregate_batch(self.privatize(values, rng=rng))

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "FrequencyOracle") -> None:
        self._n += other._n
        self._weighted += other._weighted

    def _params(self) -> dict:
        return {"epsilon": self.epsilon, "d": self.d}

    def _state(self) -> dict:
        return {"n": int(self._n), "weighted": self._weighted.tolist()}

    def _load_state(self, state: dict) -> None:
        weighted = np.asarray(state["weighted"], dtype=np.float64)
        if weighted.shape != (self.d,):
            raise ValueError(
                f"state 'weighted' must have shape ({self.d},), got {weighted.shape}"
            )
        self._n = int(state["n"])
        self._weighted = weighted
