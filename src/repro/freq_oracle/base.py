"""Common interface for categorical frequency oracles (paper Section 2.1).

A frequency oracle (FO) runs in two halves:

* client side — ``privatize`` maps each user's value in ``{0..d-1}`` to a
  randomized report satisfying epsilon-LDP;
* server side — ``aggregate`` turns the collected reports into *unbiased*
  frequency estimates (which may be negative; constraint restoration is a
  separate post-processing step).

``estimate_from_values`` chains both halves, which is what simulations use.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["FrequencyOracle"]


class FrequencyOracle(abc.ABC):
    """Abstract base class for categorical frequency oracles."""

    #: Short protocol name used by registries and reports.
    name: str = "fo"

    #: Smallest usable domain size. HRR overrides this to 1: the top Haar
    #: layer has a single coefficient and degenerates to binary randomized
    #: response over its sign.
    min_domain: int = 2

    def __init__(self, epsilon: float, d: int) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.d = check_domain_size(d, minimum=self.min_domain)

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"values must be a non-empty 1-d array, got shape {arr.shape}")
        if not np.issubdtype(arr.dtype, np.integer):
            if not np.all(np.equal(np.mod(arr, 1), 0)):
                raise ValueError("values must be integers in {0..d-1}")
            arr = arr.astype(np.int64)
        else:
            arr = arr.astype(np.int64)
        if arr.min() < 0 or arr.max() >= self.d:
            raise ValueError(
                f"values must be in [0, {self.d - 1}], got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    @abc.abstractmethod
    def privatize(self, values: np.ndarray, rng=None) -> Any:
        """Randomize a vector of private values into LDP reports."""

    @abc.abstractmethod
    def aggregate(self, reports: Any) -> np.ndarray:
        """Unbiased frequency estimates (length ``d``) from reports."""

    @property
    @abc.abstractmethod
    def estimate_variance(self) -> float:
        """Per-frequency estimator variance for a *single* user report.

        Divide by the number of users ``n`` to get the variance of the
        aggregated estimate; this is the quantity compared when choosing
        between GRR and OLH.
        """

    def estimate_from_values(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Privatize then aggregate — one full simulated collection round."""
        return self.aggregate(self.privatize(values, rng=rng))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(epsilon={self.epsilon}, d={self.d})"
