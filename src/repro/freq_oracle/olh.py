"""Optimized Local Hashing (paper Section 2.1, following Wang et al. [34]).

Each user hashes their value into a small domain of size ``g = e^eps + 1``
(rounded), then runs GRR on the hashed value. Aggregation counts, for every
candidate value, how many users' reports "support" it (their hash of the
candidate equals their reported hash output) and debiases. The resulting
variance ``4 e^eps / (e^eps - 1)^2`` per user is independent of ``d``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.freq_oracle.base import FrequencyOracle
from repro.freq_oracle.hashing import evaluate_hash, sample_hash_params
from repro.utils.rng import as_generator

__all__ = ["OLH", "OLHReports"]

#: Users per chunk during aggregation. Keeps the n-by-d support matrix at
#: ~chunk*d int64 entries regardless of n. 1024 keeps the two work buffers
#: cache-resident and measured fastest in the chunk sweep of
#: ``benchmarks/bench_perf_solver.py`` (see BENCH_solver.json).
_AGGREGATE_CHUNK = 1024


@dataclass(frozen=True)
class OLHReports:
    """Collected OLH reports: per-user hash coefficients and perturbed hash."""

    a: np.ndarray
    b: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if not (self.a.shape == self.b.shape == self.y.shape) or self.a.ndim != 1:
            raise ValueError("a, b, y must be equal-length 1-d arrays")

    @property
    def n(self) -> int:
        return int(self.a.size)


class OLH(FrequencyOracle):
    """Optimized Local Hashing frequency oracle.

    Parameters
    ----------
    epsilon, d:
        Privacy budget and value-domain size.
    g:
        Hash range; defaults to the variance-optimal ``round(e^eps) + 1``.
    """

    name = "olh"
    wire_codec = "olh"

    def __init__(self, epsilon: float, d: int, g: int | None = None) -> None:
        super().__init__(epsilon, d)
        e_eps = math.exp(self.epsilon)
        if g is None:
            g = int(round(e_eps)) + 1
        if g < 2:
            raise ValueError(f"g must be >= 2, got {g}")
        self.g = g
        self.p = e_eps / (e_eps + g - 1)

    def privatize(self, values: np.ndarray, rng=None) -> OLHReports:
        """Hash each value into ``{0..g-1}`` then apply GRR over that range."""
        vals = self._check_values(values)
        gen = as_generator(rng)
        n = vals.size
        a, b = sample_hash_params(n, rng=gen)
        hashed = evaluate_hash(a, b, vals, self.g)
        keep = gen.random(n) < self.p
        shift = gen.integers(1, self.g, size=n)
        y = np.where(keep, hashed, (hashed + shift) % self.g)
        return OLHReports(a=a, b=b, y=y.astype(np.int64))

    def support_counts(
        self, reports: OLHReports, *, chunk_size: int | None = None
    ) -> np.ndarray:
        """``C(v) = |{j : H_j(v) = y_j}|`` for every value ``v``.

        The aggregation runs through the active compute backend
        (:func:`repro.engine.backend.backend`) — the NumPy backend is the
        historical chunked loop (the in-place form of
        :func:`~repro.freq_oracle.hashing.evaluate_hash` plus the support
        comparison in two preallocated ``(chunk, d)`` buffers), the
        threaded backend fans user spans across its worker pool (int64
        partial counts sum exactly, so the result is identical), and the
        numba backend runs a JIT-compiled Carter-Wegman loop.

        ``chunk_size`` bounds memory at ``chunk_size * d`` hash
        evaluations per worker; resolution order is the explicit argument,
        then the backend's ``olh_chunk_size``, then the module default
        ``_AGGREGATE_CHUNK`` (tuned by the chunk sweep in
        ``benchmarks/bench_perf_solver.py``).
        """
        from repro.engine.backend import backend

        bk = backend()
        if chunk_size is None:
            chunk_size = bk.olh_chunk_size
        if chunk_size is None:
            chunk_size = _AGGREGATE_CHUNK
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        return bk.olh_support_counts(
            reports.a, reports.b, reports.y, self.d, self.g,
            chunk_size=int(chunk_size),
        )

    def aggregate_batch(self, reports: OLHReports) -> np.ndarray:
        """Unbiased frequencies ``((C(v)/n) - 1/g) / (p - 1/g)``."""
        n = reports.n
        if n == 0:
            raise ValueError("no reports to aggregate")
        counts = self.support_counts(reports).astype(np.float64)
        return (counts / n - 1.0 / self.g) / (self.p - 1.0 / self.g)

    @property
    def estimate_variance(self) -> float:
        """Approximate per-user variance ``4 e^eps / (e^eps - 1)^2`` [34]."""
        e_eps = math.exp(self.epsilon)
        return 4.0 * e_eps / (e_eps - 1) ** 2

    def _params(self) -> dict:
        return {"epsilon": self.epsilon, "d": self.d, "g": self.g}
