"""Generalized Randomized Response (paper Section 2.1).

The user reports their true value with probability
``p = e^eps / (e^eps + d - 1)`` and any other value uniformly otherwise.
Estimation variance grows linearly with ``d`` (Equation 1), so GRR is only
competitive on small domains.
"""

from __future__ import annotations

import math

import numpy as np

from repro.freq_oracle.base import FrequencyOracle
from repro.utils.rng import as_generator

__all__ = ["GRR"]


class GRR(FrequencyOracle):
    """Generalized Randomized Response frequency oracle."""

    name = "grr"
    wire_codec = "category"

    def __init__(self, epsilon: float, d: int) -> None:
        super().__init__(epsilon, d)
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (e_eps + self.d - 1)
        self.q = 1.0 / (e_eps + self.d - 1)

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Report the true value w.p. ``p``, else a uniform *other* value.

        The "other" draw uses the shift trick ``(v + r) mod d`` with
        ``r ~ Uniform{1..d-1}``, which is exactly uniform over the d-1
        non-true values and fully vectorized.
        """
        vals = self._check_values(values)
        gen = as_generator(rng)
        n = vals.size
        keep = gen.random(n) < self.p
        shift = gen.integers(1, self.d, size=n)
        reports = np.where(keep, vals, (vals + shift) % self.d)
        return reports.astype(np.int64)

    def aggregate_batch(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequencies: ``((C(v)/n) - q) / (p - q)``."""
        arr = np.asarray(reports, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("reports must be a non-empty 1-d array")
        if arr.min() < 0 or arr.max() >= self.d:
            raise ValueError("reports outside the output domain")
        counts = np.bincount(arr, minlength=self.d).astype(np.float64)
        return (counts / arr.size - self.q) / (self.p - self.q)

    @property
    def estimate_variance(self) -> float:
        """Equation (1): ``(d - 2 + e^eps) / (e^eps - 1)^2`` per user."""
        e_eps = math.exp(self.epsilon)
        return (self.d - 2 + e_eps) / (e_eps - 1) ** 2
