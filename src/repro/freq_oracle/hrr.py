"""Hadamard Randomized Response (paper Section 4.2, following Kulkarni [18]).

Local hashing with ``g = 2`` where the hash family is the rows of a
Sylvester-ordered Hadamard matrix: user ``u`` with value ``k`` picks a random
row ``j``, computes the bit ``H[j, k] in {-1, +1}``, flips it with
probability ``1/(e^eps + 1)``, and reports ``(j, bit)``. The aggregator
recovers unbiased Hadamard-spectrum coefficients groupwise and inverts with a
fast Walsh-Hadamard transform.

Reports may carry a *sign*: HaarHRR users contribute ``-1`` or ``+1`` times a
one-hot vector, and the same estimator recovers the signed frequency vector.
That generalization is why this module, not the Haar code, owns the HRR
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.freq_oracle.base import FrequencyOracle
from repro.utils.rng import as_generator

__all__ = ["HRR", "HRRReports", "fwht", "next_power_of_two"]


def next_power_of_two(d: int) -> int:
    """Smallest power of two >= ``d`` (>= 1)."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return 1 << (int(d) - 1).bit_length()


def fwht(vec: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh-Hadamard transform (Sylvester ordering).

    Returns ``H @ vec`` for the un-normalized +-1 Hadamard matrix; applying
    it twice multiplies by ``len(vec)``. Length must be a power of two.
    """
    arr = np.asarray(vec, dtype=np.float64).copy()
    m = arr.size
    if m == 0 or m & (m - 1):
        raise ValueError(f"length must be a power of two, got {m}")
    h = 1
    while h < m:
        blocks = arr.reshape(-1, 2 * h)
        left = blocks[:, :h].copy()
        right = blocks[:, h:].copy()
        blocks[:, :h] = left + right
        blocks[:, h:] = left - right
        h *= 2
    return arr


@dataclass(frozen=True)
class HRRReports:
    """Collected HRR reports: Hadamard row index and perturbed bit."""

    row: np.ndarray
    bit: np.ndarray

    def __post_init__(self) -> None:
        if self.row.shape != self.bit.shape or self.row.ndim != 1:
            raise ValueError("row and bit must be equal-length 1-d arrays")

    @property
    def n(self) -> int:
        return int(self.row.size)


class HRR(FrequencyOracle):
    """Hadamard Randomized Response oracle over ``{0..d-1}``.

    The domain is padded to the next power of two ``m`` internally;
    aggregation truncates back to ``d``.
    """

    name = "hrr"
    min_domain = 1
    wire_codec = "hrr"

    def __init__(self, epsilon: float, d: int) -> None:
        super().__init__(epsilon, d)
        self.m = next_power_of_two(self.d)
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (e_eps + 1.0)

    def _hadamard_bits(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """``H[row, col] = (-1)^popcount(row & col)`` elementwise."""
        parity = np.bitwise_count(np.bitwise_and(rows, cols)) & 1
        return 1 - 2 * parity.astype(np.int64)

    def privatize(self, values: np.ndarray, rng=None, signs=None) -> HRRReports:
        """Randomize values (optionally signed) into (row, bit) reports.

        Parameters
        ----------
        values:
            Integer values in ``{0..d-1}``.
        signs:
            Optional array of ``-1``/``+1`` multipliers (HaarHRR layers).
        """
        vals = self._check_values(values)
        gen = as_generator(rng)
        n = vals.size
        if signs is None:
            sign_arr = np.ones(n, dtype=np.int64)
        else:
            sign_arr = np.asarray(signs, dtype=np.int64)
            if sign_arr.shape != vals.shape:
                raise ValueError("signs must match values in shape")
            if not np.isin(sign_arr, (-1, 1)).all():
                raise ValueError("signs must be -1 or +1")
        rows = gen.integers(0, self.m, size=n, dtype=np.int64)
        true_bits = self._hadamard_bits(rows, vals) * sign_arr
        flip = gen.random(n) >= self.p
        bits = np.where(flip, -true_bits, true_bits)
        return HRRReports(row=rows, bit=bits.astype(np.int64))

    def aggregate_batch(self, reports: HRRReports) -> np.ndarray:
        """Unbiased signed-frequency estimates of length ``d``.

        Per-row sums give unbiased Hadamard coefficients
        ``theta_j = m * S_j / (n * (2p - 1))``; the inverse transform
        ``f = H theta / m`` is computed with the FWHT.
        """
        n = reports.n
        if n == 0:
            raise ValueError("no reports to aggregate")
        if reports.row.min() < 0 or reports.row.max() >= self.m:
            raise ValueError("report rows outside the Hadamard order")
        sums = np.bincount(reports.row, weights=reports.bit, minlength=self.m)
        theta = self.m * sums / (n * (2.0 * self.p - 1.0))
        freqs = fwht(theta) / self.m
        return freqs[: self.d]

    @property
    def estimate_variance(self) -> float:
        """Approximate per-user variance ``(e^eps + 1)^2 / (e^eps - 1)^2``."""
        e_eps = math.exp(self.epsilon)
        return (e_eps + 1.0) ** 2 / (e_eps - 1.0) ** 2
