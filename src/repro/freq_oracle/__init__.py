"""Categorical frequency oracles — the CFO substrate (paper Sections 2, 4).

GRR and OLH are the workhorses; HRR backs the Haar hierarchy; ``choose_oracle``
picks between GRR and OLH by variance at a given domain size.
"""

from repro.freq_oracle.adaptive import best_oracle_name, choose_oracle
from repro.freq_oracle.base import FrequencyOracle
from repro.freq_oracle.grr import GRR
from repro.freq_oracle.hrr import HRR, HRRReports, fwht, next_power_of_two
from repro.freq_oracle.olh import OLH, OLHReports

__all__ = [
    "FrequencyOracle",
    "GRR",
    "OLH",
    "OLHReports",
    "HRR",
    "HRRReports",
    "fwht",
    "next_power_of_two",
    "choose_oracle",
    "best_oracle_name",
]
