"""Alternative constraint-restoring post-processors from Wang et al. [35].

The paper adopts Norm-Sub; its source ([35], *Consistent and accurate
frequency oracles under LDP*) studies a family of alternatives. Three are
implemented here so the choice can be ablated (see
``benchmarks/bench_ablation_postprocess.py``):

* ``norm_full`` — additive normalization only: shift every estimate equally
  so the total matches. Unbiased, preserves differences, but keeps
  negatives. (Called "Norm" in [35].)
* ``norm_mul`` — multiplicative: clamp negatives to zero and rescale the
  positives to the target total. Biased toward large estimates.
* ``norm_cut`` — cut: zero out negatives and everything below a threshold
  chosen so the kept mass is close to the target, without touching the
  large estimates. Good for heavy-hitter-style tails; here the threshold is
  simply 0 and the excess/deficit is left unnormalized unless rescaled.
* ``base_cut`` — zero everything below a significance threshold (default:
  one standard deviation of the oracle noise) and leave the rest unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = ["norm_full", "norm_mul", "norm_cut", "base_cut"]


def _check(estimates: np.ndarray) -> np.ndarray:
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("estimates must be a non-empty 1-d array")
    if not np.isfinite(arr).all():
        raise ValueError("estimates must be finite")
    return arr


def norm_full(estimates: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Additive normalization: ``x_i + (total - sum x) / d``.

    Keeps every pairwise difference (and hence unbiasedness) but can leave
    negative entries; use when downstream code tolerates signed estimates.
    """
    arr = _check(estimates)
    return arr + (total - arr.sum()) / arr.size


def norm_mul(estimates: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Multiplicative normalization: clamp negatives, rescale positives.

    Returns the uniform distribution when nothing is positive.
    """
    arr = _check(estimates)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    clamped = np.maximum(arr, 0.0)
    mass = clamped.sum()
    if mass == 0:
        return np.full(arr.size, total / arr.size)
    # Divide before scaling: every entry is <= mass, so the ratio stays in
    # [0, 1] even when mass is subnormal (total / mass would overflow).
    return clamped / mass * total


def norm_cut(estimates: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Cut normalization: keep the largest entries whose sum reaches
    ``total``, zero the rest, and trim the marginal entry so the result is
    an exact distribution.

    Unlike Norm-Sub this never *shifts* kept estimates, so large values
    (spikes) pass through exactly; the cost is that the tail is zeroed.
    """
    arr = _check(estimates)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    clamped = np.maximum(arr, 0.0)
    if clamped.sum() <= total:
        # Not enough mass to cut; fall back to multiplicative rescaling.
        return norm_mul(arr, total)
    order = np.argsort(clamped)[::-1]
    kept = np.zeros_like(clamped)
    running = 0.0
    for idx in order:
        value = clamped[idx]
        if value <= 0:
            break
        if running + value >= total:
            kept[idx] = total - running
            running = total
            break
        kept[idx] = value
        running += value
    return kept


def base_cut(estimates: np.ndarray, threshold: float) -> np.ndarray:
    """Zero every estimate below ``threshold`` (significance cut).

    ``threshold`` should be a multiple of the oracle's noise standard
    deviation, e.g. ``2 * sqrt(oracle.estimate_variance / n)``. The output
    is *not* renormalized — compose with another variant if a distribution
    is needed.
    """
    arr = _check(estimates)
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    return np.where(arr >= threshold, arr, 0.0)
