"""Constraint-restoring post-processing for noisy LDP estimates."""

from repro.postprocess.norm_sub import norm_sub
from repro.postprocess.projections import project_nonnegative, project_simplex
from repro.postprocess.variants import base_cut, norm_cut, norm_full, norm_mul

__all__ = [
    "norm_sub",
    "project_simplex",
    "project_nonnegative",
    "norm_full",
    "norm_mul",
    "norm_cut",
    "base_cut",
]
