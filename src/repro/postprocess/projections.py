"""Euclidean projections used by post-processing algorithms.

``project_simplex`` is the exact L2 projection onto the probability simplex
(water-filling). In the mass-surplus regime it coincides with Norm-Sub's
fixpoint; it is exposed separately because HH-ADMM's analysis is in terms of
Euclidean projections.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_simplex", "project_nonnegative"]


def project_simplex(v: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Exact Euclidean projection of ``v`` onto ``{x >= 0, sum x = total}``.

    Uses the sort-based water-filling algorithm: find the largest threshold
    ``theta`` such that ``sum max(v_i - theta, 0) = total``.
    """
    arr = np.asarray(v, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"v must be a non-empty 1-d array, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError("v must be finite")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if total == 0:
        return np.zeros_like(arr)
    sorted_desc = np.sort(arr)[::-1]
    cumulative = np.cumsum(sorted_desc)
    ranks = np.arange(1, arr.size + 1)
    thresholds = (cumulative - total) / ranks
    # rho: last index where the sorted value still exceeds its threshold.
    rho = np.nonzero(sorted_desc > thresholds)[0][-1]
    theta = thresholds[rho]
    return np.maximum(arr - theta, 0.0)


def project_nonnegative(v: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the non-negative orthant (elementwise clamp)."""
    arr = np.asarray(v, dtype=np.float64)
    if not np.isfinite(arr).all():
        raise ValueError("v must be finite")
    return np.maximum(arr, 0.0)
