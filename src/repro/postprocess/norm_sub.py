"""Norm-Sub post-processing (paper Section 4.1, following Wang et al. [35]).

Noisy frequency estimates under LDP are unbiased but can be negative and
need not sum to 1. Norm-Sub restores both constraints: zero out negatives,
then shift every positive entry by the same amount so the total matches, and
repeat if the shift created new negatives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["norm_sub"]


def norm_sub(estimates: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Project noisy estimates onto {non-negative, sums to ``total``}.

    Implements the iterative procedure from the paper verbatim: negatives are
    clamped to zero and the surplus/deficit is spread uniformly over the
    currently-positive entries; iteration continues until no positive entry
    is pushed below zero. Terminates in at most ``d`` rounds because the
    positive support shrinks monotonically.

    Parameters
    ----------
    estimates:
        1-d array of (possibly negative) frequency estimates.
    total:
        Target sum, 1.0 for probability vectors and ``n`` for raw counts.

    Returns
    -------
    numpy.ndarray
        Non-negative vector of the same length summing to ``total``. When no
        entry is positive (all estimates drowned in noise) the uniform
        vector is returned as the noninformative fallback.
    """
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"estimates must be a non-empty 1-d array, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError("estimates must be finite")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")

    work = arr.copy()
    support = work > 0
    if not support.any():
        return np.full(arr.size, total / arr.size)
    for _ in range(arr.size):
        shift = (work[support].sum() - total) / support.sum()
        candidate = work - shift
        still_positive = support & (candidate > 0)
        if still_positive.sum() == support.sum():
            out = np.where(support, candidate, 0.0)
            # Guard against float drift so downstream code can rely on the sum.
            if out.sum() > 0 and total > 0:
                out *= total / out.sum()
            return out
        support = still_positive
        if not support.any():
            return np.full(arr.size, total / arr.size)
    raise AssertionError("norm_sub failed to converge; this is a bug")
