"""Pluggable array-compute backends — saturate the hardware under one seam.

Every hot loop in the package bottoms out in a handful of array primitives:
the dense channel products ``M x`` / ``Mᵀ y`` of the EM/EMS solver, the
padded-cumsum boxcar behind the structured wave operators, and the chunked
Carter-Wegman support count of OLH aggregation. Historically those were
inlined NumPy calls, which pins the whole system to one core no matter how
many the machine has (the checked-in BENCH files record exactly that). This
module narrows them into a :class:`ComputeBackend` seam with three
implementations:

* :class:`NumpyBackend` — the default; every primitive is the literal NumPy
  expression the callers used to inline, so routing through it is
  bitwise-identical to the historical path.
* :class:`ThreadedBackend` — shards batched work (EM/EMS problem columns,
  OLH user chunks, frame blocks) across a thread pool. NumPy releases the
  GIL inside its kernels, so contiguous-slice shards scale near-linearly
  with cores. Shard boundaries depend only on the *data shape* (a fixed
  ``column_chunk``), never on the worker count, so results are bit-identical
  whether one worker or sixteen drain the queue.
* :class:`NumbaBackend` — JIT-compiles the cumsum-boxcar operator product
  and the Carter-Wegman hash loop when ``numba`` is importable; construction
  raises :class:`BackendUnavailableError` otherwise, and everything not
  worth JIT-ing (BLAS matmuls) inherits the NumPy implementation.

The active backend is process-wide state mirroring
:func:`repro.engine.operators.set_channel_mode`: read it with
:func:`backend`, replace it with :func:`set_backend`, scope it with the
:func:`use_backend` context manager, or preselect it for a whole process
with the ``REPRO_BACKEND`` environment variable (``"threaded"``,
``"threaded:4"``, ``"numba"``, ...). Like the channel mode, the backend is
a performance knob: it is never part of an estimator's serialized identity.
"""

from __future__ import annotations

import contextlib
import os
import threading
import warnings
from collections.abc import Callable, Iterator, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any, TypeVar

import numpy as np

from repro.utils.typing import FloatArray, IntArray

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendUnavailableError",
    "ComputeBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "available_backends",
    "backend",
    "effective_cpu_count",
    "make_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted once at import to pick the initial backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Fallback OLH aggregation chunk when neither the caller nor the backend
#: pins one; mirrors ``repro.freq_oracle.olh._AGGREGATE_CHUNK``.
_DEFAULT_OLH_CHUNK = 1024


class BackendUnavailableError(RuntimeError):
    """A backend's optional dependency is not importable in this process."""


def effective_cpu_count() -> int:
    """Cores this *process* may run on, not cores the machine has.

    ``os.cpu_count()`` reports the machine; containers and ``taskset``-pinned
    CI runners routinely grant far fewer. ``sched_getaffinity`` reflects the
    actual allowance where the platform supports it (Linux), which is what
    worker-pool sizing and the BENCH skip-with-reason logic must key on.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def _olh_numpy_kernel(
    a: IntArray,
    b: IntArray,
    y: IntArray,
    d: int,
    g: int,
    chunk_size: int,
) -> IntArray:
    """Chunked, buffer-reusing OLH support count over one user span.

    The in-place form of :func:`repro.freq_oracle.hashing.evaluate_hash`
    and the support comparison run in two preallocated ``(chunk, d)``
    buffers reused across chunks — the PR-5 hot loop, verbatim, so the
    NumPy backend stays byte-for-byte the historical aggregation.
    """
    from repro.freq_oracle.hashing import evaluate_hash

    counts = np.zeros(d, dtype=np.int64)
    n = int(a.size)
    if n == 0:
        return counts
    domain = np.arange(d, dtype=np.int64)[None, :]
    chunk = max(1, min(chunk_size, n))
    work = np.empty((chunk, d), dtype=np.int64)
    match = np.empty((chunk, d), dtype=bool)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        rows = stop - start
        hashes = evaluate_hash(
            a[start:stop, None],
            b[start:stop, None],
            domain,
            g,
            out=work[:rows],
        )
        np.equal(hashes, y[start:stop, None], out=match[:rows])
        counts += match[:rows].sum(axis=0)
    return counts


class ComputeBackend:
    """The array primitives every engine hot path is written against.

    Implementations must be *value-equivalent* to :class:`NumpyBackend` to
    1e-12 on probability-scale inputs and deterministic for a fixed
    configuration (same instance parameters → bit-identical outputs,
    regardless of how much hardware parallelism is actually available).
    ``workers`` advertises the parallelism level so schedulers
    (:func:`repro.protocol.server.estimate_rounds`, the frame decoder) can
    decide whether fanning out is worth the dispatch overhead.
    """

    #: Registry name of the backend family (``"numpy"``, ``"threaded"``, ...).
    name: str = ""

    #: Parallelism the backend can actually exploit (1 = serial).
    workers: int = 1

    #: Per-worker OLH aggregation chunk; ``None`` defers to the caller's
    #: default (``repro.freq_oracle.olh._AGGREGATE_CHUNK``).
    olh_chunk_size: int | None = None

    def matmul(self, m: FloatArray, x: FloatArray) -> FloatArray:
        """``m @ x`` for ``x`` of shape ``(d,)`` or ``(d, B)``."""
        raise NotImplementedError

    def rmatmul(self, m: FloatArray, y: FloatArray) -> FloatArray:
        """``m.T @ y`` for ``y`` of shape ``(d_out,)`` or ``(d_out, B)``."""
        raise NotImplementedError

    def padded_cumsum(self, v: FloatArray) -> FloatArray:
        """``S`` with ``S[k] = v[:k].sum()`` along axis 0 (batch-aware)."""
        raise NotImplementedError

    def banded_product(
        self,
        v: FloatArray,
        lo: IntArray,
        hi: IntArray,
        delta: float,
        outside: float,
    ) -> FloatArray:
        """The cumsum-boxcar product of the uniform-plus-band channels.

        ``out[j] = outside * v.sum() + delta * v[lo[j]:hi[j]].sum()`` along
        axis 0 — the whole structured matvec/rmatvec for two-valued band
        channels, and the plateau term of the Toeplitz channel.
        """
        s = self.padded_cumsum(v)
        total = s[-1]
        return outside * total + delta * (s[hi] - s[lo])

    def olh_support_counts(
        self,
        a: IntArray,
        b: IntArray,
        y: IntArray,
        d: int,
        g: int,
        *,
        chunk_size: int,
    ) -> IntArray:
        """``C(v) = |{j : H_j(v) = y_j}|`` over the whole value domain."""
        raise NotImplementedError

    def map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        """``[fn(item) for item in items]``, possibly evaluated concurrently.

        Results come back in input order; any exception propagates. Items
        must be independent — this is the scheduling primitive behind
        multi-attribute solves and parallel frame-block decode.
        """
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """JSON-serializable identity for BENCH headers and diagnostics."""
        return {"name": self.name, "workers": int(self.workers)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class NumpyBackend(ComputeBackend):
    """Single-core NumPy: every primitive is the historical inline call."""

    name = "numpy"

    def matmul(self, m: FloatArray, x: FloatArray) -> FloatArray:
        return m @ x

    def rmatmul(self, m: FloatArray, y: FloatArray) -> FloatArray:
        return m.T @ y

    def padded_cumsum(self, v: FloatArray) -> FloatArray:
        shape = (v.shape[0] + 1,) + v.shape[1:]
        out = np.zeros(shape, dtype=np.float64)
        np.cumsum(v, axis=0, out=out[1:])
        return out

    def olh_support_counts(
        self,
        a: IntArray,
        b: IntArray,
        y: IntArray,
        d: int,
        g: int,
        *,
        chunk_size: int,
    ) -> IntArray:
        return _olh_numpy_kernel(a, b, y, d, g, chunk_size)

    def map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        return [fn(item) for item in items]


class ThreadedBackend(NumpyBackend):
    """Shards batched primitives across a thread pool (GIL-releasing slices).

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`effective_cpu_count`.
    column_chunk:
        Problem columns per matmul/cumsum shard. Shard boundaries are a
        pure function of the input width — *not* of ``workers`` — so a
        solve's float result is bit-identical under any worker count; the
        pool only changes who computes each shard.
    olh_chunk_size:
        Per-worker OLH aggregation chunk (rows of the ``(chunk, d)`` hash
        buffer). Defaults to the OLH module's tuned serial chunk, which
        keeps each worker's two buffers cache-resident.
    """

    name = "threaded"

    def __init__(
        self,
        workers: int | None = None,
        *,
        column_chunk: int = 8,
        olh_chunk_size: int | None = None,
    ) -> None:
        resolved = effective_cpu_count() if workers is None else int(workers)
        if resolved < 1:
            raise ValueError(f"workers must be >= 1, got {resolved}")
        if column_chunk < 1:
            raise ValueError(f"column_chunk must be >= 1, got {column_chunk}")
        self.workers = resolved
        self.column_chunk = int(column_chunk)
        self.olh_chunk_size = (
            None if olh_chunk_size is None else int(olh_chunk_size)
        )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-backend",
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (tests; long-lived apps can skip it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- sharding helpers --------------------------------------------------
    def _column_spans(self, width: int) -> list[tuple[int, int]] | None:
        """Fixed-width column shards, or ``None`` when sharding can't pay.

        Spans depend only on ``width`` and ``column_chunk`` — NEVER on
        ``workers``. Sliced BLAS products round differently than one
        whole-array call, so a worker-count-dependent shard layout would
        make the same solve drift across pool sizes; a shape-only layout
        keeps every ``ThreadedBackend(w)`` bit-identical to every other.
        """
        if width < 2 * self.column_chunk:
            return None
        step = self.column_chunk
        return [(lo, min(lo + step, width)) for lo in range(0, width, step)]

    def _sharded_columns(
        self, compute: Callable[[int, int], FloatArray], spans: list[tuple[int, int]]
    ) -> list[FloatArray]:
        futures = [
            self._executor().submit(compute, lo, hi) for lo, hi in spans
        ]
        return [future.result() for future in futures]

    # -- primitives --------------------------------------------------------
    def matmul(self, m: FloatArray, x: FloatArray) -> FloatArray:
        spans = self._column_spans(x.shape[1]) if x.ndim == 2 else None
        if spans is None:
            return m @ x
        blocks = self._sharded_columns(lambda lo, hi: m @ x[:, lo:hi], spans)
        return np.concatenate(blocks, axis=1)

    def rmatmul(self, m: FloatArray, y: FloatArray) -> FloatArray:
        spans = self._column_spans(y.shape[1]) if y.ndim == 2 else None
        if spans is None:
            return m.T @ y
        blocks = self._sharded_columns(lambda lo, hi: m.T @ y[:, lo:hi], spans)
        return np.concatenate(blocks, axis=1)

    def padded_cumsum(self, v: FloatArray) -> FloatArray:
        spans = self._column_spans(v.shape[1]) if v.ndim == 2 else None
        if spans is None:
            return super().padded_cumsum(v)
        out = np.zeros((v.shape[0] + 1,) + v.shape[1:], dtype=np.float64)

        def fill(lo: int, hi: int) -> FloatArray:
            # Disjoint output slices: safe to fill concurrently. Per-column
            # cumsum order matches the whole-array call exactly.
            np.cumsum(v[:, lo:hi], axis=0, out=out[1:, lo:hi])
            return out

        self._sharded_columns(fill, spans)
        return out

    def olh_support_counts(
        self,
        a: IntArray,
        b: IntArray,
        y: IntArray,
        d: int,
        g: int,
        *,
        chunk_size: int,
    ) -> IntArray:
        n = int(a.size)
        span = max(chunk_size, -(-n // max(self.workers, 1)))
        if self.workers < 2 or n <= span:
            return _olh_numpy_kernel(a, b, y, d, g, chunk_size)
        futures = [
            self._executor().submit(
                _olh_numpy_kernel,
                a[lo : lo + span],
                b[lo : lo + span],
                y[lo : lo + span],
                d,
                g,
                chunk_size,
            )
            for lo in range(0, n, span)
        ]
        # int64 partial counts: summation order cannot change the result.
        counts = np.zeros(d, dtype=np.int64)
        for future in futures:
            counts += future.result()
        return counts

    def map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        if self.workers < 2 or len(items) < 2:
            return [fn(item) for item in items]
        return list(self._executor().map(fn, items))

    def describe(self) -> dict[str, Any]:
        info = super().describe()
        info["column_chunk"] = self.column_chunk
        return info


class NumbaBackend(NumpyBackend):
    """JIT-compiled kernels for the loops BLAS cannot help with.

    Compiles the cumsum-boxcar band product and the Carter-Wegman support
    loop with ``numba.njit`` on first use (compilation is cached per
    process); dense matmuls stay on BLAS via the inherited NumPy
    implementations. Constructing the backend without numba importable
    raises :class:`BackendUnavailableError` — callers get a clean fallback
    story instead of an ImportError deep inside a solve.
    """

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba  # noqa: F401
        except ImportError as exc:  # pragma: no cover - numba-less CI leg
            raise BackendUnavailableError(
                "the 'numba' backend needs the optional numba package "
                "(pip install numba); use 'numpy' or 'threaded' instead"
            ) from exc
        self._kernel_lock = threading.Lock()
        self._banded: Callable[..., FloatArray] | None = None
        self._support: Callable[..., IntArray] | None = None

    def _compile(self) -> None:
        with self._kernel_lock:
            if self._banded is not None:
                return
            import numba

            from repro.freq_oracle.hashing import PRIME

            @numba.njit(cache=True)
            def banded(
                v: FloatArray,
                lo: IntArray,
                hi: IntArray,
                delta: float,
                outside: float,
            ) -> FloatArray:  # pragma: no cover - requires numba
                d, batch = v.shape
                rows = lo.shape[0]
                s = np.zeros((d + 1, batch))
                for i in range(d):
                    for j in range(batch):
                        s[i + 1, j] = s[i, j] + v[i, j]
                out = np.empty((rows, batch))
                for r in range(rows):
                    for j in range(batch):
                        out[r, j] = outside * s[d, j] + delta * (
                            s[hi[r], j] - s[lo[r], j]
                        )
                return out

            @numba.njit(cache=True)
            def support(
                a: IntArray, b: IntArray, y: IntArray, d: int, g: int
            ) -> IntArray:  # pragma: no cover - requires numba
                counts = np.zeros(d, dtype=np.int64)
                for j in range(a.shape[0]):
                    aj, bj, yj = a[j], b[j], y[j]
                    for v in range(d):
                        if ((aj * v + bj) % PRIME) % g == yj:
                            counts[v] += 1
                return counts

            self._banded = banded
            self._support = support

    def banded_product(
        self,
        v: FloatArray,
        lo: IntArray,
        hi: IntArray,
        delta: float,
        outside: float,
    ) -> FloatArray:
        self._compile()
        assert self._banded is not None
        squeeze = v.ndim == 1
        v2 = np.ascontiguousarray(
            v[:, None] if squeeze else v, dtype=np.float64
        )
        out = self._banded(
            v2,
            np.ascontiguousarray(lo),
            np.ascontiguousarray(hi),
            float(delta),
            float(outside),
        )
        return out[:, 0] if squeeze else out

    def olh_support_counts(
        self,
        a: IntArray,
        b: IntArray,
        y: IntArray,
        d: int,
        g: int,
        *,
        chunk_size: int,
    ) -> IntArray:
        self._compile()
        assert self._support is not None
        return self._support(
            np.ascontiguousarray(a),
            np.ascontiguousarray(b),
            np.ascontiguousarray(y),
            int(d),
            int(g),
        )


# ----------------------------------------------------------------------
# registry + process-wide active backend
# ----------------------------------------------------------------------

_FACTORIES: dict[str, Callable[[int | None], ComputeBackend]] = {
    "numpy": lambda workers: NumpyBackend(),
    "threaded": lambda workers: ThreadedBackend(workers),
    "numba": lambda workers: NumbaBackend(),
}

_instances: dict[str, ComputeBackend] = {}
_backend_lock = threading.Lock()


def available_backends() -> tuple[str, ...]:
    """Registered backend names (availability is checked at construction)."""
    return tuple(sorted(_FACTORIES))


def make_backend(spec: str | ComputeBackend) -> ComputeBackend:
    """Resolve a backend spec: an instance, a name, or ``"name:workers"``.

    Named specs are memoized process-wide (``"threaded:4"`` always returns
    the same instance, so its thread pool is shared rather than rebuilt per
    solve). Raises :class:`BackendUnavailableError` when the named
    backend's optional dependency is missing and ``ValueError`` for an
    unknown name.
    """
    if isinstance(spec, ComputeBackend):
        return spec
    key = str(spec)
    with _backend_lock:
        cached = _instances.get(key)
    if cached is not None:
        return cached
    name, _, suffix = key.partition(":")
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()} "
            f"(optionally 'threaded:<workers>')"
        )
    workers: int | None = None
    if suffix:
        if name != "threaded":
            raise ValueError(
                f"backend {name!r} does not take a ':<workers>' suffix"
            )
        try:
            workers = int(suffix)
        except ValueError:
            raise ValueError(
                f"worker count in backend spec {key!r} must be an integer"
            ) from None
    built = factory(workers)
    with _backend_lock:
        return _instances.setdefault(key, built)


def _initial_backend(environ: Mapping[str, str] | None = None) -> ComputeBackend:
    """The import-time default: ``REPRO_BACKEND`` or plain NumPy.

    A broken value (typo, numba not installed) degrades to NumPy with a
    warning — an env var must never make ``import repro`` raise.
    """
    env = os.environ if environ is None else environ
    spec = env.get(BACKEND_ENV_VAR, "").strip()
    if not spec:
        return make_backend("numpy")
    try:
        return make_backend(spec)
    except (ValueError, BackendUnavailableError) as exc:
        warnings.warn(
            f"{BACKEND_ENV_VAR}={spec!r} is unusable ({exc}); "
            "falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return make_backend("numpy")


_active: ComputeBackend = _initial_backend()


def backend() -> ComputeBackend:
    """The process-wide active compute backend."""
    return _active


def resolve_backend(spec: str | ComputeBackend | None) -> ComputeBackend:
    """``None`` → the active backend; otherwise :func:`make_backend`."""
    if spec is None:
        return _active
    return make_backend(spec)


def set_backend(spec: str | ComputeBackend) -> ComputeBackend:
    """Install a new process-wide backend; returns the previous one.

    Like :func:`repro.engine.operators.set_channel_mode`, this is a
    performance knob — estimates through any backend agree to 1e-12, and
    nothing about the backend enters serialized estimator state.
    """
    global _active
    resolved = make_backend(spec)
    with _backend_lock:
        previous = _active
        _active = resolved
    return previous


@contextlib.contextmanager
def use_backend(spec: str | ComputeBackend) -> Iterator[ComputeBackend]:
    """Context manager scoping :func:`set_backend` to a block."""
    resolved = make_backend(spec)
    previous = set_backend(resolved)
    try:
        yield resolved
    finally:
        set_backend(previous)
