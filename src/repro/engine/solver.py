"""Batched EM/EMS reconstruction (paper Section 5.5, vectorized over problems).

EM against a fixed channel matrix is the hot path of every estimator family
in this package: per-attribute marginals, streaming server rounds, and
every sweep repetition solve ``argmax_x sum_j n_j log (M x)_j`` for a fresh
count vector ``n`` against the *same* ``M``. This module stacks ``B`` such
problems into an ``(d_out, B)`` count matrix and runs the E/M/S steps as
single BLAS matmuls:

    E-step:  W = Mᵀ (N ⊘ (M X))
    M-step:  X = normalize(X ⊙ W)          (column-wise)
    S-step:  X = normalize(smooth(X))      (EMS only; binomial kernel)

Columns converge independently: a per-column mask freezes finished problems
(their iteration counts and log-likelihood histories match a sequential run
column by column) while the remaining ones keep iterating, so the batch
stops exactly when the slowest problem does. Stopping follows the paper's
Section 6.1 rule — iterate until the per-column log-likelihood improvement
drops below ``tol``.

:func:`repro.core.em.expectation_maximization` is the single-problem
wrapper around this solver; :class:`EMResult` lives here so both views
share one diagnostics type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.config import DEFAULT_MAX_ITER

__all__ = [
    "EMResult",
    "BatchEMResult",
    "batched_expectation_maximization",
]

#: Floor applied to predicted report probabilities before dividing/logging.
_DENSITY_FLOOR = 1e-300


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM/EMS run.

    Attributes
    ----------
    estimate:
        Reconstructed input histogram (non-negative, sums to 1).
    iterations:
        Number of completed iterations.
    converged:
        Whether the tolerance was met before ``max_iter``.
    log_likelihood:
        Final data log-likelihood ``sum_j n_j log (M x)_j``.
    history:
        Log-likelihood after every iteration (length ``iterations``).
    """

    estimate: np.ndarray
    iterations: int
    converged: bool
    log_likelihood: float
    history: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class BatchEMResult:
    """Outcome of one batched EM/EMS solve over ``B`` stacked problems.

    Attributes
    ----------
    estimates:
        ``(d, B)`` reconstructed histograms, one column per problem.
    iterations:
        ``(B,)`` completed iterations per column.
    converged:
        ``(B,)`` convergence flags per column.
    log_likelihood:
        ``(B,)`` final data log-likelihoods.
    histories:
        Per-column log-likelihood trajectories (ragged: columns stop at
        different iterations).
    """

    estimates: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    log_likelihood: np.ndarray
    histories: tuple[np.ndarray, ...] = field(repr=False)

    @property
    def batch_size(self) -> int:
        return int(self.estimates.shape[1])

    def column(self, j: int) -> EMResult:
        """The ``j``-th problem's outcome as a sequential-style EMResult."""
        return EMResult(
            estimate=self.estimates[:, j].copy(),
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
            log_likelihood=float(self.log_likelihood[j]),
            history=self.histories[j],
        )

    def __iter__(self):
        return (self.column(j) for j in range(self.batch_size))


def _log_likelihood_columns(counts: np.ndarray, predicted: np.ndarray) -> np.ndarray:
    """Per-column ``sum_j n_j log p_j`` (zero-count terms contribute 0)."""
    return np.where(counts > 0.0, counts * np.log(predicted), 0.0).sum(axis=0)


def _smooth_columns(x: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Column-wise :func:`repro.core.smoothing.smooth` (edge-renormalized).

    Same semantics as the 1-d version: kernel taps that fall outside the
    domain are dropped and the surviving weights rescaled, applied to every
    column at once via shifted-slice accumulation instead of ``B`` separate
    convolutions.
    """
    d = x.shape[0]
    if kernel.ndim != 1 or kernel.size % 2 == 0:
        raise ValueError("kernel must be 1-d with odd length")
    if kernel.size > 2 * d - 1:
        raise ValueError("kernel wider than the signal")
    half = kernel.size // 2
    numerator = np.zeros_like(x)
    weight = np.zeros((d, 1))
    for j, tap in enumerate(kernel):
        # Convolution orientation: output[i] += kernel[j] * x[i + half - j].
        offset = half - j
        lo = max(0, -offset)
        hi = min(d, d - offset)
        numerator[lo:hi] += tap * x[lo + offset : hi + offset]
        weight[lo:hi, 0] += tap
    return numerator / weight


def batched_expectation_maximization(
    matrix: np.ndarray,
    counts: np.ndarray,
    *,
    tol: float = 1e-3,
    max_iter: int = DEFAULT_MAX_ITER,
    smoothing_kernel: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    validate_matrix: bool = True,
) -> BatchEMResult:
    """Reconstruct ``B`` input histograms sharing one transition matrix.

    Parameters
    ----------
    matrix:
        ``(d_out, d)`` transition matrix; columns must sum to 1.
    counts:
        ``(d_out, B)`` stacked report histograms, one problem per column
        (non-negative; every column needs at least one report).
    tol:
        Per-column stop: freeze a column when its log-likelihood
        improvement falls below this value.
    max_iter:
        Hard iteration cap; columns still active at the cap are flagged
        ``converged=False``.
    smoothing_kernel:
        Odd-length kernel applied column-wise after each M-step (EMS);
        ``None`` disables smoothing (plain EM).
    x0:
        Starting histogram — ``(d,)`` shared by every column or ``(d, B)``
        per-column; defaults to uniform.
    validate_matrix:
        Skip the column-stochastic check when the matrix comes from the
        engine cache (already validated at insert).

    Returns
    -------
    BatchEMResult
    """
    m = np.asarray(matrix, dtype=np.float64)
    n = np.asarray(counts, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"matrix must be 2-d, got shape {m.shape}")
    d_out, d = m.shape
    if n.ndim != 2 or n.shape[0] != d_out:
        raise ValueError(f"counts must have shape ({d_out}, B), got {n.shape}")
    batch = n.shape[1]
    if batch < 1:
        raise ValueError("counts must contain at least one problem column")
    if n.min() < 0:
        raise ValueError("counts must be non-negative")
    if not (n.sum(axis=0) > 0).all():
        raise ValueError("counts must contain at least one report")
    if validate_matrix and not np.allclose(m.sum(axis=0), 1.0, atol=1e-6):
        raise ValueError("matrix columns must sum to 1")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    kernel = (
        None
        if smoothing_kernel is None
        else np.asarray(smoothing_kernel, dtype=np.float64)
    )

    if x0 is None:
        x = np.full((d, batch), 1.0 / d)
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.ndim == 1:
            x = np.repeat(x[:, None], batch, axis=1)
        else:
            x = x.copy()
        if (
            x.shape != (d, batch)
            or x.min() < 0
            or not (x.sum(axis=0) > 0).all()
        ):
            raise ValueError(
                "x0 must be a non-negative length-d vector with positive sum"
            )
        x = x / x.sum(axis=0, keepdims=True)

    active = np.ones(batch, dtype=bool)
    iterations = np.zeros(batch, dtype=np.int64)
    converged = np.zeros(batch, dtype=bool)
    histories: list[list[float]] = [[] for _ in range(batch)]
    previous = _log_likelihood_columns(n, np.maximum(m @ x, _DENSITY_FLOOR))

    for iteration in range(1, max_iter + 1):
        idx = np.flatnonzero(active)
        xa = x[:, idx]
        na = n[:, idx]
        predicted = np.maximum(m @ xa, _DENSITY_FLOOR)
        weights = m.T @ (na / predicted)
        xa = xa * weights
        totals = xa.sum(axis=0)
        dead = totals <= 0  # defensive; cannot occur with a valid matrix
        if dead.any():  # pragma: no cover
            xa[:, dead] = 1.0 / d
            totals = np.where(dead, 1.0, totals)
        xa = xa / totals
        if kernel is not None:
            xa = _smooth_columns(xa, kernel)
            xa = xa / xa.sum(axis=0, keepdims=True)
        current = _log_likelihood_columns(na, np.maximum(m @ xa, _DENSITY_FLOOR))
        x[:, idx] = xa
        iterations[idx] = iteration
        for j_local, j in enumerate(idx):
            histories[j].append(float(current[j_local]))
        finished = current - previous[idx] < tol
        converged[idx[finished]] = True
        active[idx[finished]] = False
        previous[idx] = current
        if not active.any():
            break

    log_likelihood = np.array(
        [history[-1] for history in histories], dtype=np.float64
    )
    return BatchEMResult(
        estimates=x,
        iterations=iterations,
        converged=converged,
        log_likelihood=log_likelihood,
        histories=tuple(np.asarray(h) for h in histories),
    )
