"""Batched EM/EMS reconstruction (paper Section 5.5, vectorized over problems).

EM against a fixed channel is the hot path of every estimator family in
this package: per-attribute marginals, streaming server rounds, and every
sweep repetition solve ``argmax_x sum_j n_j log (M x)_j`` for a fresh count
vector ``n`` against the *same* channel. This module stacks ``B`` such
problems into an ``(d_out, B)`` count matrix and runs the E/M/S steps as
single whole-batch products:

    E-step:  W = Mᵀ (N ⊘ (M X))
    M-step:  X = normalize(X ⊙ W)          (column-wise)
    S-step:  X = normalize(smooth(X))      (EMS only; binomial kernel)

The channel may be a dense ``(d_out, d)`` matrix — the products are BLAS
matmuls, and this path is bitwise-identical to the historical solver — or a
:class:`repro.engine.operators.ChannelOperator`, whose structured
``matvec``/``rmatvec`` turn each iteration into ``O(d · B)`` cumsum/window
work for the wave channels. On the structured path the ``M X`` product
computed for the log-likelihood is reused as the next iteration's E-step
densities, so each iteration costs one ``matvec`` + one ``rmatvec``.

Columns converge independently: a per-column mask freezes finished problems
(their iteration counts and log-likelihood histories match a sequential run
column by column) while the remaining ones keep iterating, so the batch
stops exactly when the slowest problem does. Stopping follows the paper's
Section 6.1 rule — iterate until the per-column log-likelihood improvement
drops below ``tol``.

:func:`repro.core.em.expectation_maximization` is the single-problem
wrapper around this solver; :class:`EMResult` lives here so both views
share one diagnostics type.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import DEFAULT_MAX_ITER
from repro.engine.backend import ComputeBackend, resolve_backend
from repro.engine.operators import ChannelOperator
from repro.utils.typing import ArrayLike, BoolArray, FloatArray, IntArray

__all__ = [
    "EMResult",
    "BatchEMResult",
    "batched_expectation_maximization",
]

#: Floor applied to predicted report probabilities before dividing/logging.
_DENSITY_FLOOR = 1e-300

#: Initial row capacity of the log-likelihood history buffer; doubled on
#: demand so a ``max_iter`` of 10k with a wide batch does not preallocate
#: a huge mostly-unused array.
_HISTORY_CHUNK = 128


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM/EMS run.

    Attributes
    ----------
    estimate:
        Reconstructed input histogram (non-negative, sums to 1).
    iterations:
        Number of completed iterations.
    converged:
        Whether the tolerance was met before ``max_iter``.
    log_likelihood:
        Final data log-likelihood ``sum_j n_j log (M x)_j``.
    history:
        Log-likelihood after every iteration (length ``iterations``).
    """

    estimate: FloatArray
    iterations: int
    converged: bool
    log_likelihood: float
    history: FloatArray = field(repr=False)


@dataclass(frozen=True)
class BatchEMResult:
    """Outcome of one batched EM/EMS solve over ``B`` stacked problems.

    Attributes
    ----------
    estimates:
        ``(d, B)`` reconstructed histograms, one column per problem.
    iterations:
        ``(B,)`` completed iterations per column.
    converged:
        ``(B,)`` convergence flags per column.
    log_likelihood:
        ``(B,)`` final data log-likelihoods.
    histories:
        Per-column log-likelihood trajectories (ragged: columns stop at
        different iterations).
    """

    estimates: FloatArray
    iterations: IntArray
    converged: BoolArray
    log_likelihood: FloatArray
    histories: tuple[FloatArray, ...] = field(repr=False)

    @property
    def batch_size(self) -> int:
        return int(self.estimates.shape[1])

    def column(self, j: int) -> EMResult:
        """The ``j``-th problem's outcome as a sequential-style EMResult."""
        return EMResult(
            estimate=self.estimates[:, j].copy(),
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
            log_likelihood=float(self.log_likelihood[j]),
            history=self.histories[j],
        )

    def __iter__(self) -> Iterator[EMResult]:
        return (self.column(j) for j in range(self.batch_size))


def _log_likelihood_columns(
    counts: FloatArray, predicted: FloatArray, positive: BoolArray | None = None
) -> FloatArray:
    """Per-column ``sum_j n_j log p_j`` (zero-count terms contribute 0).

    ``positive`` is the precomputed ``counts > 0`` mask; the log is
    evaluated only on those cells (zero-count cells never touch
    ``predicted``, so nothing rides on the ``1e-300`` floor there), while
    the summation still runs over the full column in the historical order —
    the result is bitwise-identical to the old mask-after-log version.
    """
    if positive is None:
        positive = counts > 0.0
    log_predicted = np.zeros_like(predicted)
    np.log(predicted, out=log_predicted, where=positive)
    return (counts * log_predicted).sum(axis=0)


def _smooth_columns(x: FloatArray, kernel: FloatArray) -> FloatArray:
    """Column-wise :func:`repro.core.smoothing.smooth` (edge-renormalized).

    Same semantics as the 1-d version: kernel taps that fall outside the
    domain are dropped and the surviving weights rescaled, applied to every
    column at once via shifted-slice accumulation instead of ``B`` separate
    convolutions.
    """
    d = x.shape[0]
    if kernel.ndim != 1 or kernel.size % 2 == 0:
        raise ValueError("kernel must be 1-d with odd length")
    if kernel.size > 2 * d - 1:
        raise ValueError("kernel wider than the signal")
    half = kernel.size // 2
    numerator = np.zeros_like(x)
    weight = np.zeros((d, 1))
    for j, tap in enumerate(kernel):
        # Convolution orientation: output[i] += kernel[j] * x[i + half - j].
        offset = half - j
        lo = max(0, -offset)
        hi = min(d, d - offset)
        numerator[lo:hi] += tap * x[lo + offset : hi + offset]
        weight[lo:hi, 0] += tap
    return numerator / weight


def batched_expectation_maximization(
    matrix: FloatArray | ChannelOperator,
    counts: ArrayLike,
    *,
    tol: float = 1e-3,
    max_iter: int = DEFAULT_MAX_ITER,
    smoothing_kernel: ArrayLike | None = None,
    x0: ArrayLike | None = None,
    validate_matrix: bool = True,
    backend: ComputeBackend | str | None = None,
) -> BatchEMResult:
    """Reconstruct ``B`` input histograms sharing one channel.

    Parameters
    ----------
    matrix:
        ``(d_out, d)`` transition matrix (columns must sum to 1) or a
        :class:`~repro.engine.operators.ChannelOperator`. Dense matrices
        take the historical BLAS path (bitwise-unchanged output);
        structured operators run each iteration in ``O(d · B)`` and reuse
        the log-likelihood product as the next E-step's densities.
    counts:
        ``(d_out, B)`` stacked report histograms, one problem per column
        (non-negative; every column needs at least one report).
    tol:
        Per-column stop: freeze a column when its log-likelihood
        improvement falls below this value.
    max_iter:
        Hard iteration cap; columns still active at the cap are flagged
        ``converged=False``.
    smoothing_kernel:
        Odd-length kernel applied column-wise after each M-step (EMS);
        ``None`` disables smoothing (plain EM).
    x0:
        Starting histogram — ``(d,)`` shared by every column or ``(d, B)``
        per-column; defaults to uniform.
    validate_matrix:
        Skip the column-stochastic check when the channel comes from the
        engine cache (already validated at insert).
    backend:
        Compute backend for the channel products — an instance, a registry
        name (``"numpy"``, ``"threaded"``, ``"threaded:4"``, ``"numba"``),
        or ``None`` for the process-wide active backend
        (:func:`repro.engine.backend.backend`). Backends are
        value-equivalent to 1e-12; the default NumPy backend is
        bitwise-identical to the historical inline products.

    Returns
    -------
    BatchEMResult
    """
    bk = resolve_backend(backend)
    operator: ChannelOperator | None
    if isinstance(matrix, ChannelOperator):
        operator = matrix
        structured = operator.structured
        d_out, d = operator.shape
        op = operator

        def product(v: FloatArray) -> FloatArray:
            return op.matvec(v, backend=bk)

        def transpose_product(v: FloatArray) -> FloatArray:
            return op.rmatvec(v, backend=bk)

        column_sums = op.column_sums
    else:
        operator = None
        m = np.asarray(matrix, dtype=np.float64)
        structured = False
        if m.ndim != 2:
            raise ValueError(f"matrix must be 2-d, got shape {m.shape}")
        d_out, d = m.shape

        def product(v: FloatArray) -> FloatArray:
            return bk.matmul(m, v)

        def transpose_product(v: FloatArray) -> FloatArray:
            return bk.rmatmul(m, v)

        def column_sums() -> FloatArray:
            return m.sum(axis=0)
    n = np.asarray(counts, dtype=np.float64)
    if n.ndim != 2 or n.shape[0] != d_out:
        raise ValueError(f"counts must have shape ({d_out}, B), got {n.shape}")
    batch = n.shape[1]
    if batch < 1:
        raise ValueError("counts must contain at least one problem column")
    if n.min() < 0:
        raise ValueError("counts must be non-negative")
    if not (n.sum(axis=0) > 0).all():
        raise ValueError("counts must contain at least one report")
    if validate_matrix:
        if not np.allclose(column_sums(), 1.0, atol=1e-6):
            raise ValueError("matrix columns must sum to 1")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    kernel = (
        None
        if smoothing_kernel is None
        else np.asarray(smoothing_kernel, dtype=np.float64)
    )

    if x0 is None:
        x = np.full((d, batch), 1.0 / d)
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.ndim == 1:
            x = np.repeat(x[:, None], batch, axis=1)
        else:
            x = x.copy()
        if (
            x.shape != (d, batch)
            or x.min() < 0
            or not (x.sum(axis=0) > 0).all()
        ):
            raise ValueError(
                "x0 must be a non-negative length-d vector with positive sum"
            )
        x = x / x.sum(axis=0, keepdims=True)

    active = np.ones(batch, dtype=bool)
    iterations = np.zeros(batch, dtype=np.int64)
    converged = np.zeros(batch, dtype=bool)
    positive = n > 0.0  # fixed across iterations: counts never change
    ll_buffer = np.zeros((min(max_iter, _HISTORY_CHUNK), batch))
    initial = np.maximum(product(x), _DENSITY_FLOOR)
    previous = _log_likelihood_columns(n, initial, positive)
    # Structured channels reuse the log-likelihood product as the next
    # E-step's predicted densities (columns tracked alongside `active`).
    carried: FloatArray | None = initial if structured else None

    for iteration in range(1, max_iter + 1):
        idx = np.flatnonzero(active)
        xa = x[:, idx]
        na = n[:, idx]
        if carried is not None:
            predicted = carried
        else:
            predicted = np.maximum(product(xa), _DENSITY_FLOOR)
        weights = transpose_product(na / predicted)
        xa = xa * weights
        totals = xa.sum(axis=0)
        dead = totals <= 0  # defensive; cannot occur with a valid matrix
        if dead.any():  # pragma: no cover
            xa[:, dead] = 1.0 / d
            totals = np.where(dead, 1.0, totals)
        xa = xa / totals
        if kernel is not None:
            xa = _smooth_columns(xa, kernel)
            xa = xa / xa.sum(axis=0, keepdims=True)
        refreshed = np.maximum(product(xa), _DENSITY_FLOOR)
        current = _log_likelihood_columns(na, refreshed, positive[:, idx])
        x[:, idx] = xa
        iterations[idx] = iteration
        if iteration > ll_buffer.shape[0]:
            grown = np.zeros((min(max_iter, 2 * ll_buffer.shape[0]), batch))
            grown[: ll_buffer.shape[0]] = ll_buffer
            ll_buffer = grown
        ll_buffer[iteration - 1, idx] = current
        finished = current - previous[idx] < tol
        converged[idx[finished]] = True
        active[idx[finished]] = False
        previous[idx] = current
        if not active.any():
            break
        if structured:
            carried = refreshed[:, ~finished]

    log_likelihood = ll_buffer[iterations - 1, np.arange(batch)].copy()
    return BatchEMResult(
        estimates=x,
        iterations=iterations,
        converged=converged,
        log_likelihood=log_likelihood,
        histories=tuple(
            ll_buffer[: iterations[j], j].copy() for j in range(batch)
        ),
    )
