"""Process-wide cache of transition matrices and derived solver objects.

Every estimator family needs the mechanism's bucket transition matrix
``M[j, i] = Pr[out in B~_j | in in B_i]`` (paper Section 5.5) before it can
run EM/EMS, and experiment sweeps construct the *same* matrix once per
trial — for the continuous Square Wave at ``d = 1024`` that is an exact
trapezoid-integral build of a million entries, repeated hundreds of times
per figure. The matrices are pure functions of the mechanism parameters and
the bucketization ``(d, d_out)``, so this module memoizes them process-wide.

Three properties make the cache safe to share:

* **Immutability** — cached arrays are returned with ``writeable=False``;
  an accidental in-place mutation raises instead of silently corrupting
  every other estimator in the process.
* **Insert-time validation** — the column-stochastic invariant (columns sum
  to 1) is checked once when a matrix enters the cache, so hot EM paths can
  skip the O(d * d_out) re-validation on every reconstruction.
* **Keyed identity** — keys combine the mechanism's class path with its
  serialized constructor parameters (the same ``_params()`` contract the
  ``repro.api`` state files use) plus ``(d, d_out)``, so two estimators
  configured identically share one array.

A small generic object cache (:func:`cached_object`) rides along for other
expensive pure derivations keyed the same way — e.g. the Cholesky-factored
tree-consistency projector that HH-ADMM rebuilds per estimator.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.utils.typing import ArrayLike, FloatArray

__all__ = [
    "MatrixCacheInfo",
    "cached_channel_operator",
    "cached_matrix",
    "cached_object",
    "cached_transition_matrix",
    "clear_caches",
    "freeze_matrix",
    "matrix_cache_info",
    "mechanism_cache_key",
    "set_matrix_cache_limit",
    "validated_channel_operator",
]

#: Default byte budget for cached matrices. 1 GiB holds ~128 distinct
#: d=1024 Square Wave matrices — far beyond any sweep, while bounding a
#: long-lived server that meets unboundedly many (epsilon, b, d) configs.
_DEFAULT_MAX_BYTES = 1 << 30

_lock = threading.Lock()
_matrices: OrderedDict[tuple[Any, ...], FloatArray] = OrderedDict()  # LRU order
_matrix_bytes = 0
_max_bytes = _DEFAULT_MAX_BYTES
_objects: dict[tuple[Any, ...], Any] = {}
_hits = 0
_misses = 0


@dataclass(frozen=True)
class MatrixCacheInfo:
    """Snapshot of the matrix cache: hit/miss counters, entries, and bytes."""

    hits: int
    misses: int
    entries: int
    nbytes: int


def freeze_matrix(matrix: ArrayLike) -> FloatArray:
    """Return a C-contiguous float64 copy with the write flag cleared."""
    arr = np.ascontiguousarray(matrix, dtype=np.float64).copy()
    arr.setflags(write=False)
    return arr


def _class_path(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}:{cls.__qualname__}"


def mechanism_cache_key(mechanism: Any) -> tuple[Any, ...]:
    """Hashable identity of a mechanism: class path + sorted ``_params()``.

    ``_params()`` is the same JSON-serializable constructor description the
    ``repro.api`` state files persist, so mechanisms that deserialize equal
    also share cache entries.
    """
    params = mechanism._params()
    return (_class_path(mechanism), tuple(sorted(params.items())))


def cached_matrix(
    key: tuple[Any, ...],
    builder: Callable[[], ArrayLike],
    *,
    column_stochastic: bool = True,
) -> FloatArray:
    """Fetch (or build, validate, freeze, and insert) a matrix by key.

    The returned array is shared and read-only. ``column_stochastic``
    enables the insert-time check that every column sums to 1 — the matrix
    invariant EM relies on (Theorem 5.6 needs a proper channel matrix) —
    letting every later solve skip it.
    """
    global _hits, _misses, _matrix_bytes
    with _lock:
        cached = _matrices.get(key)
        if cached is not None:
            _hits += 1
            _matrices.move_to_end(key)
            return cached
    # Build outside the lock: builders can be expensive and are pure, so a
    # rare duplicate build is cheaper than serializing all constructions.
    built = np.asarray(builder(), dtype=np.float64)
    if built.ndim != 2:
        raise ValueError(f"matrix must be 2-d, got shape {built.shape}")
    if column_stochastic and not np.allclose(built.sum(axis=0), 1.0, atol=1e-6):
        raise ValueError("matrix columns must sum to 1")
    frozen = freeze_matrix(built)
    with _lock:
        existing = _matrices.get(key)
        if existing is not None:  # lost a build race; share the winner
            _hits += 1
            _matrices.move_to_end(key)
            return existing
        _misses += 1
        _matrices[key] = frozen
        _matrix_bytes += frozen.nbytes
        _evict_lru_locked()
        return frozen


def _evict_lru_locked() -> None:
    """Drop least-recently-used matrices until under the byte budget.

    Callers holding a previously-returned array keep it alive (eviction
    only drops the cache's reference); the newest entry is always kept so
    a single over-budget matrix still caches.
    """
    global _matrix_bytes
    while _matrix_bytes > _max_bytes and len(_matrices) > 1:
        _, evicted = _matrices.popitem(last=False)
        _matrix_bytes -= evicted.nbytes


def set_matrix_cache_limit(max_bytes: int) -> None:
    """Set the matrix cache byte budget (evicting LRU entries if needed)."""
    global _max_bytes
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
    with _lock:
        _max_bytes = int(max_bytes)
        _evict_lru_locked()


def cached_transition_matrix(
    mechanism: Any, d: int | None = None, d_out: int | None = None
) -> FloatArray:
    """Shared, validated, read-only transition matrix for a mechanism.

    ``d``/``d_out`` follow the :class:`repro.api.Mechanism` convention:
    continuous mechanisms take the bucketization explicitly, while discrete
    mechanisms (``d is None``) own their geometry and build without
    arguments.
    """
    key = (mechanism_cache_key(mechanism), d, d_out)
    if d is None:
        return cached_matrix(key, mechanism.transition_matrix)
    return cached_matrix(key, lambda: mechanism.transition_matrix(d, d_out))


#: Sentinel memoized for mechanisms whose geometry yields no structured
#: operator. The DenseChannel itself is *not* memoized: it would pin the
#: dense array in the unbounded object cache, escaping the matrix cache's
#: LRU byte budget — the wrapper is free to rebuild around the shared array.
_DENSE_FALLBACK = object()


def validated_channel_operator(operator: Any) -> Any:
    """Insert-time check for a structured operator: columns must sum to 1.

    ``column_sums`` is an O(d) product, so this is the operator analogue of
    the matrix cache's column-stochastic check — done once at insert so hot
    solver runs can pass ``validated=True``.
    """
    if not np.allclose(operator.column_sums(), 1.0, atol=1e-6):
        raise ValueError("operator columns must sum to 1")
    return operator


def cached_channel_operator(
    mechanism: Any, d: int | None = None, d_out: int | None = None
) -> Any:
    """Shared, validated channel operator for a mechanism.

    Asks the mechanism's ``channel_operator`` hook for a structured
    :class:`~repro.engine.operators.ChannelOperator` (the hook may return
    ``None`` when its geometry has no exploitable structure) and falls back
    to a :class:`~repro.engine.operators.DenseChannel` around the cached
    dense matrix. Structured operators are memoized under the same
    mechanism identity keys as matrices — an ``"operator"`` tag apart —
    and their column-stochastic invariant is checked once at insert (via
    ``column_sums``, an O(d) product), so solver runs can skip it. Dense
    fallbacks memoize only the *decision*: the array stays governed by the
    matrix cache's LRU budget and remains retrievable through
    :func:`cached_transition_matrix` either way.
    """
    key = ("operator", mechanism_cache_key(mechanism), d, d_out)

    def build() -> Any:
        hook = getattr(mechanism, "channel_operator", None)
        operator = None
        if hook is not None:
            operator = hook() if d is None else hook(d, d_out)
        if operator is None:
            return _DENSE_FALLBACK
        return validated_channel_operator(operator)

    cached = cached_object(key, build)
    if cached is _DENSE_FALLBACK:
        from repro.engine.operators import DenseChannel

        return DenseChannel(cached_transition_matrix(mechanism, d, d_out))
    return cached


def cached_object(key: tuple[Any, ...], builder: Callable[[], Any]) -> Any:
    """Memoize any expensive pure derivation (no matrix validation/freeze)."""
    with _lock:
        if key in _objects:
            return _objects[key]
    built = builder()
    with _lock:
        return _objects.setdefault(key, built)


def matrix_cache_info() -> MatrixCacheInfo:
    """Hit/miss counters and footprint of the process-wide matrix cache."""
    with _lock:
        return MatrixCacheInfo(
            hits=_hits,
            misses=_misses,
            entries=len(_matrices),
            nbytes=_matrix_bytes,
        )


def clear_caches() -> None:
    """Drop every cached matrix and object and reset the counters.

    Mainly for benchmarks (cold-start timing) and test isolation; running
    estimators keep working because they re-fetch lazily.
    """
    global _hits, _misses, _matrix_bytes
    with _lock:
        _matrices.clear()
        _objects.clear()
        _matrix_bytes = 0
        _hits = 0
        _misses = 0
