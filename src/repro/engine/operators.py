"""Structured channel operators — near-linear EM/EMS matvecs (paper §5.5).

Every EM/EMS iteration applies the channel matrix twice: ``M x`` for the
E-step densities and ``Mᵀ w`` for the weights. With a dense ``(d_out, d)``
matrix that is ``O(d_out · d · B)`` per iteration, even though the wave
channels this package revolves around are *uniform-plus-band*:

    M = q_eff · J  +  K           (J the all-ones matrix)

where ``K`` vanishes outside a sliding band of output positions. The
uniform part collapses to a column sum; the band part collapses to a
sliding-window sum computable from one cumulative sum — ``O(d · B)`` per
product, independent of the band width.

Three operator implementations cover the package's channels:

* :class:`DenseChannel` — wraps any dense matrix; the universal fallback.
  Its products are the same BLAS calls the solver always made, so routing
  a dense matrix through it is bitwise-identical to the historical path.
* :class:`UniformPlusBandedChannel` — channels whose entries take exactly
  two values, ``inside`` on a per-row contiguous column band and
  ``outside`` elsewhere: the discrete Square Wave (§5.4) and the
  CFO-binning GRR chunk channel (§4.1). Exact by construction.
* :class:`UniformPlusToeplitzChannel` — the continuous Square Wave (§5.2).
  The trapezoid overlap kernel is translation-invariant in the *continuous*
  coordinate, but the input grid (width ``1/d``) and output grid (width
  ``(1+2b)/d_out``) are incommensurate, so an index-space convolution (FFT)
  would only be approximate. Instead the invariance is exploited exactly:
  every output bucket sees a *constant plateau* of height
  ``min(out_width, 2b)`` wherever an input bucket lies fully inside the
  high-probability band, leaving only ``O(1)`` "ramp" columns per row where
  the trapezoid rises or falls. The plateau runs as a cumsum boxcar and the
  ramps as narrow gather windows whose values come from the same
  closed-form antiderivative the dense builder uses — matvecs match the
  dense matrix to float rounding (~1e-14 relative, verified by the
  hypothesis suite in ``tests/engine/test_operators.py``).

Selection is automatic: estimators ask the engine cache
(:func:`repro.engine.cache.cached_channel_operator`) which consults the
mechanism's ``channel_operator`` hook and falls back to dense. Force the
historical dense path globally with :func:`set_channel_mode` or locally
with the :func:`dense_channels` context manager.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.engine.backend import ComputeBackend, resolve_backend
from repro.utils.typing import ArrayLike, FloatArray, IntArray

__all__ = [
    "ChannelOperator",
    "DenseChannel",
    "UniformPlusBandedChannel",
    "UniformPlusToeplitzChannel",
    "channel_mode",
    "dense_channels",
    "set_channel_mode",
]

_CHANNEL_MODES = ("structured", "dense")
_mode_lock = threading.Lock()
_channel_mode = "structured"


def channel_mode() -> str:
    """The process-wide operator policy: ``"structured"`` or ``"dense"``."""
    return _channel_mode


def set_channel_mode(mode: str) -> str:
    """Set the operator policy; returns the previous mode.

    ``"structured"`` (the default) lets estimators run EM/EMS against the
    structured operators below; ``"dense"`` restores the historical dense
    matrix path everywhere (bitwise-identical plain-EM output). The policy
    is a performance knob, not part of any estimator's serialized identity.
    """
    global _channel_mode
    if mode not in _CHANNEL_MODES:
        raise ValueError(f"mode must be one of {_CHANNEL_MODES}, got {mode!r}")
    with _mode_lock:
        previous = _channel_mode
        _channel_mode = mode
    return previous


@contextlib.contextmanager
def dense_channels() -> Iterator[None]:
    """Context manager forcing the dense matrix path (benchmarks, debugging)."""
    previous = set_channel_mode("dense")
    try:
        yield
    finally:
        set_channel_mode(previous)


def _freeze(arr: ArrayLike, dtype: Any = np.float64) -> Any:
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out is arr:
        out = out.copy()
    out.setflags(write=False)
    return out


class ChannelOperator:
    """A transition matrix exposed through its action, not its entries.

    Subclasses implement :meth:`matvec` (``M x``) and :meth:`rmatvec`
    (``Mᵀ y``) for 1-d vectors and ``(·, B)`` stacked batches, plus
    :meth:`to_dense` for tests and interoperability. ``structured`` tells
    the solver whether the operator earns the product-reuse fast loop
    (``False`` only for :class:`DenseChannel`, which must stay bitwise
    compatible with the raw-ndarray path).
    """

    #: Whether the solver may take the structured (product-reusing) loop.
    structured: bool = True

    shape: tuple[int, int]

    @property
    def d_out(self) -> int:
        return self.shape[0]

    @property
    def d(self) -> int:
        return self.shape[1]

    def matvec(
        self, x: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        """``M @ x`` for ``x`` of shape ``(d,)`` or ``(d, B)``.

        ``backend`` selects the compute backend for the product; ``None``
        uses the process-wide active one (:func:`repro.engine.backend.backend`).
        """
        raise NotImplementedError

    def rmatvec(
        self, y: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        """``M.T @ y`` for ``y`` of shape ``(d_out,)`` or ``(d_out, B)``."""
        raise NotImplementedError

    def to_dense(self) -> FloatArray:
        """Materialize the ``(d_out, d)`` matrix this operator represents."""
        raise NotImplementedError

    def column_sums(self) -> FloatArray:
        """Per-input-bucket total mass ``Mᵀ 1`` (1 for a proper channel)."""
        return self.rmatvec(np.ones(self.d_out))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shape={self.shape})"


class DenseChannel(ChannelOperator):
    """Dense fallback: any matrix, applied through the usual BLAS products.

    ``matvec``/``rmatvec`` are exactly ``m @ x`` / ``m.T @ y``, so the
    solver's output through this wrapper is bitwise-identical to passing
    the raw array.
    """

    structured: bool = False

    def __init__(self, matrix: ArrayLike) -> None:
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2:
            raise ValueError(f"matrix must be 2-d, got shape {m.shape}")
        self._m = m
        self.shape = (int(m.shape[0]), int(m.shape[1]))

    @property
    def matrix(self) -> FloatArray:
        return self._m

    def matvec(
        self, x: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        return resolve_backend(backend).matmul(
            self._m, np.asarray(x, dtype=np.float64)
        )

    def rmatvec(
        self, y: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        return resolve_backend(backend).rmatmul(
            self._m, np.asarray(y, dtype=np.float64)
        )

    def to_dense(self) -> FloatArray:
        return self._m


def _transpose_bands(
    lo: IntArray, hi: IntArray, n_cols: int
) -> tuple[IntArray, IntArray]:
    """Per-column contiguous row ranges of the band set ``lo_j <= i < hi_j``.

    Requires ``lo`` and ``hi`` nondecreasing (true for every sliding band
    here); then ``{j : lo_j <= i < hi_j}`` is the contiguous range
    ``[searchsorted(hi, i, 'right'), searchsorted(lo, i, 'right'))``.
    """
    cols = np.arange(n_cols)
    rlo = np.searchsorted(hi, cols, side="right")
    rhi = np.searchsorted(lo, cols, side="right")
    return rlo.astype(np.int64), np.maximum(rhi, rlo).astype(np.int64)


class UniformPlusBandedChannel(ChannelOperator):
    """Two-valued channel: ``inside`` on a sliding column band, ``outside`` off.

    ``M[j, i] = inside`` when ``lo[j] <= i < hi[j]`` and ``outside``
    elsewhere. Covers the discrete Square Wave (band = the ``2b+1`` wide
    moving window) and the CFO-binning GRR chunk channel (band = the chunk's
    fine buckets). Both products run off one cumulative sum — ``O(d · B)``
    regardless of band width, vs ``O(d_out · d · B)`` dense.

    ``lo``/``hi`` must be nondecreasing so the transposed band is also
    contiguous per column.
    """

    def __init__(
        self,
        d: int,
        lo: ArrayLike,
        hi: ArrayLike,
        *,
        inside: float,
        outside: float,
    ) -> None:
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        if lo.ndim != 1 or lo.shape != hi.shape:
            raise ValueError("lo and hi must be equal-length 1-d index arrays")
        d = int(d)
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if (lo < 0).any() or (hi > d).any() or (lo > hi).any():
            raise ValueError("band bounds must satisfy 0 <= lo <= hi <= d")
        if (np.diff(lo) < 0).any() or (np.diff(hi) < 0).any():
            raise ValueError("band bounds must be nondecreasing")
        self.shape = (int(lo.size), d)
        self._lo = _freeze(lo, np.int64)
        self._hi = _freeze(hi, np.int64)
        self.inside = float(inside)
        self.outside = float(outside)
        self._delta = self.inside - self.outside
        rlo, rhi = _transpose_bands(lo, hi, d)
        self._rlo = _freeze(rlo, np.int64)
        self._rhi = _freeze(rhi, np.int64)

    def matvec(
        self, x: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        return resolve_backend(backend).banded_product(
            x, self._lo, self._hi, self._delta, self.outside
        )

    def rmatvec(
        self, y: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        y = np.asarray(y, dtype=np.float64)
        return resolve_backend(backend).banded_product(
            y, self._rlo, self._rhi, self._delta, self.outside
        )

    def to_dense(self) -> FloatArray:
        cols = np.arange(self.d)[None, :]
        in_band = (cols >= self._lo[:, None]) & (cols < self._hi[:, None])
        return np.where(in_band, self.inside, self.outside)

    def column_sums(self) -> FloatArray:
        height = (self._rhi - self._rlo).astype(np.float64)
        return self.outside * (self.d_out - height) + self.inside * height


class _CorrectionWindows:
    """A rectangular gather/sum of sparse per-row (or per-column) corrections.

    ``starts[k]`` is the first index of row/column ``k``'s window into the
    opposing axis; ``values`` is ``(width, n)`` with zero padding beyond
    each window's true extent, so padded cells contribute nothing and the
    gather indices can be safely clipped into range.
    """

    __slots__ = ("starts", "values", "_idx")

    def __init__(self, starts: IntArray, values: FloatArray, limit: int) -> None:
        self.starts = _freeze(starts, np.int64)
        self.values = _freeze(values)
        width = values.shape[0]
        idx = starts[None, :] + np.arange(width, dtype=np.int64)[:, None]
        np.clip(idx, 0, max(limit - 1, 0), out=idx)
        self._idx = _freeze(idx, np.int64)

    def apply(self, v: FloatArray) -> FloatArray:
        """``out[k] = sum_r values[r, k] * v[idx[r, k]]`` (batch-aware)."""
        gathered = v[self._idx]  # (width, n) or (width, n, B)
        if gathered.ndim == 3:
            return np.einsum("rk,rkb->kb", self.values, gathered)
        return (self.values * gathered).sum(axis=0)


class UniformPlusToeplitzChannel(ChannelOperator):
    """Continuous Square Wave channel applied in ``O(d · B)`` per product.

    The exact §5.5 matrix is ``M[j, i] = q·w_out + (p − q)·T[j, i]`` with
    ``T`` the band/bucket trapezoid overlap averaged over input bucket
    ``i``. ``T`` is a fixed kernel evaluated at ``i·w_in − j·w_out`` —
    Toeplitz in the continuous coordinate — and because every output bucket
    has the same width, ``T`` equals the constant ``lmax = min(w_out, 2b)``
    wherever an input bucket sits fully inside the band plateau, and ``0``
    outside the band. Only the rise/fall ramps (a few columns per row)
    carry non-constant values, computed here from the same closed-form
    antiderivative as the dense builder.

    The products therefore decompose into a column sum (uniform part), a
    cumulative-sum boxcar (plateau band), and two narrow correction-window
    gathers (ramps) — no ``O(d_out · d)`` work anywhere, including
    construction.
    """

    def __init__(self, p: float, q: float, b: float, d: int, d_out: int) -> None:
        if b <= 0:
            raise ValueError(f"b must be > 0, got {b}")
        if d < 1 or d_out < 1:
            raise ValueError("d and d_out must be >= 1")
        self.p = float(p)
        self.q = float(q)
        self.b = float(b)
        self.shape = (int(d_out), int(d))
        w_out = (1.0 + 2.0 * b) / d_out
        w_in = 1.0 / d
        self.out_width = w_out
        self.in_width = w_in
        # Same per-row geometry as repro.core.transform.sw_transition_matrix.
        c = -b + np.arange(d_out) * w_out
        e = c + w_out
        lmax = min(w_out, 2.0 * b)
        t1 = c - b
        t3 = np.maximum(e - b, c + b)
        self._lmax = lmax
        self._baseline = self.q * w_out  # entry value outside the band
        self._plateau = (self.p - self.q) * lmax  # band boxcar height
        self._t1 = t1
        self._t3 = t3

        # Conservative integer bounds (±1-index margins absorb float
        # rounding of the divisions; misclassified cells land in a ramp
        # window, where the exact closed form is used anyway).
        band_lo = np.clip(np.floor(t1 / w_in).astype(np.int64) - 1, 0, d)
        band_hi = np.clip(
            np.ceil((t3 + lmax) / w_in).astype(np.int64) + 2, band_lo, d
        )
        plat_lo = np.ceil((t1 + lmax) / w_in).astype(np.int64) + 2
        plat_hi = np.floor(t3 / w_in).astype(np.int64) - 2
        plat_lo = np.clip(plat_lo, band_lo, band_hi)
        plat_hi = np.clip(plat_hi, plat_lo, band_hi)
        self._band_lo = _freeze(band_lo, np.int64)
        self._band_hi = _freeze(band_hi, np.int64)

        self._rise = self._row_windows(band_lo, plat_lo)
        self._fall = self._row_windows(plat_hi, band_hi)

        rlo, rhi = _transpose_bands(band_lo, band_hi, d)
        self._col_band_lo = _freeze(rlo, np.int64)
        self._col_band_hi = _freeze(rhi, np.int64)
        self._col_rise = self._col_windows(plat_lo, band_lo)
        self._col_fall = self._col_windows(band_hi, plat_hi)

    # -- exact band values -------------------------------------------------
    def _band_overlap(self, rows: IntArray, cols: IntArray) -> FloatArray:
        """Exact trapezoid overlap ``T[j, i]`` for broadcastable index arrays."""
        from repro.core.transform import trapezoid_antiderivative

        a1 = cols * self.in_width
        a2 = a1 + self.in_width
        t1 = self._t1[rows]
        t3 = self._t3[rows]
        upper = trapezoid_antiderivative(a2, t1, t3, self._lmax)
        lower = trapezoid_antiderivative(a1, t1, t3, self._lmax)
        return (upper - lower) / self.in_width

    def _correction(self, rows: IntArray, cols: IntArray) -> FloatArray:
        """Entry minus the boxcar height: ``(p−q)·(T[j,i] − lmax)``."""
        return (self.p - self.q) * (self._band_overlap(rows, cols) - self._lmax)

    def _row_windows(self, start: IntArray, stop: IntArray) -> _CorrectionWindows:
        d_out, d = self.shape
        widths = stop - start
        k = int(widths.max()) if widths.size else 0
        if k == 0:
            return _CorrectionWindows(
                np.zeros(d_out, np.int64), np.zeros((0, d_out)), d
            )
        offsets = np.arange(k, dtype=np.int64)[:, None]
        cols = np.clip(start[None, :] + offsets, 0, d - 1)
        rows = np.broadcast_to(np.arange(d_out, dtype=np.int64)[None, :], cols.shape)
        values = self._correction(rows, cols)
        values = np.where(offsets < widths[None, :], values, 0.0)
        return _CorrectionWindows(start, values, d)

    def _col_windows(
        self, upper_bound: IntArray, lower_bound: IntArray
    ) -> _CorrectionWindows:
        """Column-oriented windows for rows with ``lower_j <= i < upper_j``."""
        d_out, d = self.shape
        cols = np.arange(d, dtype=np.int64)
        start = np.searchsorted(upper_bound, cols, side="right").astype(np.int64)
        stop = np.searchsorted(lower_bound, cols, side="right").astype(np.int64)
        stop = np.maximum(stop, start)
        widths = stop - start
        k = int(widths.max()) if widths.size else 0
        if k == 0:
            return _CorrectionWindows(np.zeros(d, np.int64), np.zeros((0, d)), d_out)
        offsets = np.arange(k, dtype=np.int64)[:, None]
        rows = np.clip(start[None, :] + offsets, 0, d_out - 1)
        col_idx = np.broadcast_to(cols[None, :], rows.shape)
        values = self._correction(rows, col_idx)
        values = np.where(offsets < widths[None, :], values, 0.0)
        return _CorrectionWindows(start, values, d_out)

    @property
    def window_width(self) -> int:
        """Widest ramp window — the ``k`` in the O(d·k·B) product cost."""
        return max(self._rise.values.shape[0], self._fall.values.shape[0])

    # -- products ----------------------------------------------------------
    def matvec(
        self, x: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        out = resolve_backend(backend).banded_product(
            x, self._band_lo, self._band_hi, self._plateau, self._baseline
        )
        out += self._rise.apply(x)
        out += self._fall.apply(x)
        return out

    def rmatvec(
        self, y: ArrayLike, *, backend: ComputeBackend | None = None
    ) -> FloatArray:
        y = np.asarray(y, dtype=np.float64)
        out = resolve_backend(backend).banded_product(
            y, self._col_band_lo, self._col_band_hi, self._plateau, self._baseline
        )
        out += self._col_rise.apply(y)
        out += self._col_fall.apply(y)
        return out

    def to_dense(self) -> FloatArray:
        """The represented matrix (matches the §5.5 builder to float rounding)."""
        d_out, d = self.shape
        rows = np.arange(d_out, dtype=np.int64)[:, None]
        cols = np.arange(d, dtype=np.int64)[None, :]
        in_band = (cols >= self._band_lo[:, None]) & (cols < self._band_hi[:, None])
        matrix = np.full((d_out, d), self._baseline)
        matrix += np.where(in_band, self._plateau + self._correction(rows, cols), 0.0)
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformPlusToeplitzChannel(shape={self.shape}, b={self.b:.4f}, "
            f"window_width={self.window_width})"
        )
