"""repro.engine — the shared compute substrate under every estimator.

Three pieces, all pure infrastructure (no estimator logic lives here):

* :mod:`repro.engine.cache` — a process-wide, keyed, immutable cache of
  bucket transition matrices (validated once at insert, served read-only)
  plus channel operators and a generic object cache for other expensive
  pure derivations;
* :mod:`repro.engine.operators` — structured channel operators: the wave
  channels are uniform-plus-band, so ``M x`` / ``Mᵀ y`` run as
  cumsum/window passes in ``O(d · B)`` instead of dense ``O(d_out · d · B)``
  matmuls (:class:`DenseChannel` is the exact fallback);
* :mod:`repro.engine.solver` — the batched EM/EMS solver (paper §5.5):
  ``B`` independent reconstruction problems sharing one channel run as
  whole-batch products with a per-column convergence mask.

plus :mod:`repro.engine.backend` — the pluggable array-compute seam those
solves and products run through (``numpy`` default, ``threaded`` worker
pool, optional ``numba`` kernels; select with :func:`set_backend` /
:func:`use_backend` or the ``REPRO_BACKEND`` environment variable).

Every EM-backed estimator (``repro.core.pipeline``, the EM mode of
``repro.binning``, ``repro.multidim``, the streaming ``repro.protocol``
server) and the experiment sweep runner route through this package; the
single-problem API in :mod:`repro.core.em` is a thin compatibility wrapper.
Force the historical dense path with :func:`set_channel_mode` /
:func:`dense_channels`.
"""

from repro.engine.backend import (
    BACKEND_ENV_VAR,
    BackendUnavailableError,
    ComputeBackend,
    NumbaBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    backend,
    effective_cpu_count,
    make_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.engine.cache import (
    MatrixCacheInfo,
    cached_channel_operator,
    cached_matrix,
    cached_object,
    cached_transition_matrix,
    clear_caches,
    freeze_matrix,
    matrix_cache_info,
    mechanism_cache_key,
    set_matrix_cache_limit,
)
from repro.engine.operators import (
    ChannelOperator,
    DenseChannel,
    UniformPlusBandedChannel,
    UniformPlusToeplitzChannel,
    channel_mode,
    dense_channels,
    set_channel_mode,
)
from repro.engine.solver import (
    BatchEMResult,
    EMResult,
    batched_expectation_maximization,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendUnavailableError",
    "ComputeBackend",
    "NumbaBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "available_backends",
    "backend",
    "effective_cpu_count",
    "make_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "MatrixCacheInfo",
    "cached_channel_operator",
    "cached_matrix",
    "cached_object",
    "cached_transition_matrix",
    "clear_caches",
    "freeze_matrix",
    "matrix_cache_info",
    "mechanism_cache_key",
    "set_matrix_cache_limit",
    "ChannelOperator",
    "DenseChannel",
    "UniformPlusBandedChannel",
    "UniformPlusToeplitzChannel",
    "channel_mode",
    "dense_channels",
    "set_channel_mode",
    "EMResult",
    "BatchEMResult",
    "batched_expectation_maximization",
]
