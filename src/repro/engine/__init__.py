"""repro.engine — the shared compute substrate under every estimator.

Two pieces, both pure infrastructure (no estimator logic lives here):

* :mod:`repro.engine.cache` — a process-wide, keyed, immutable cache of
  bucket transition matrices (validated once at insert, served read-only)
  plus a generic object cache for other expensive pure derivations;
* :mod:`repro.engine.solver` — the batched EM/EMS solver (paper §5.5):
  ``B`` independent reconstruction problems sharing one matrix run as
  single BLAS matmuls with a per-column convergence mask.

Every EM-backed estimator (``repro.core.pipeline``, the EM mode of
``repro.binning``, ``repro.multidim``, the streaming ``repro.protocol``
server) and the experiment sweep runner route through this package; the
single-problem API in :mod:`repro.core.em` is a thin compatibility wrapper.
"""

from repro.engine.cache import (
    MatrixCacheInfo,
    cached_matrix,
    cached_object,
    cached_transition_matrix,
    clear_caches,
    freeze_matrix,
    matrix_cache_info,
    mechanism_cache_key,
    set_matrix_cache_limit,
)
from repro.engine.solver import (
    BatchEMResult,
    EMResult,
    batched_expectation_maximization,
)

__all__ = [
    "MatrixCacheInfo",
    "cached_matrix",
    "cached_object",
    "cached_transition_matrix",
    "clear_caches",
    "freeze_matrix",
    "matrix_cache_info",
    "mechanism_cache_key",
    "set_matrix_cache_limit",
    "EMResult",
    "BatchEMResult",
    "batched_expectation_maximization",
]
