"""Synthetic drifting streams for examples, benchmarks, and the CLI.

Real longitudinal deployments watch populations whose distribution moves:
incomes creep up, taxi pickups shift with the season, telemetry mixes
change as software rolls out. These generators produce seeded,
reproducible streams with that character so the streaming layer's
warm-start and drift machinery can be exercised end to end without any
real data. Values are on the mechanism domain ``[0, 1]``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.typing import FloatArray

__all__ = ["drifting_stream", "shifting_mixture_stream"]


def drifting_stream(
    n_ticks: int,
    n_users: int,
    *,
    start: float = 0.3,
    end: float = 0.7,
    spread: float = 0.08,
    rng: RngLike = None,
) -> Iterator[FloatArray]:
    """Unimodal population whose center drifts linearly across the stream.

    Yields ``n_ticks`` arrays of ``n_users`` values each; the mode moves
    from ``start`` to ``end`` over the stream (income-creep shaped).
    """
    n_ticks = int(n_ticks)
    n_users = int(n_users)
    if n_ticks < 1 or n_users < 1:
        raise ValueError("n_ticks and n_users must be >= 1")
    gen = as_generator(rng)
    for t in range(n_ticks):
        frac = t / max(1, n_ticks - 1)
        center = start + (end - start) * frac
        values = gen.normal(center, spread, size=n_users)
        yield np.clip(values, 0.0, 1.0)


def shifting_mixture_stream(
    n_ticks: int,
    n_users: int,
    *,
    modes: tuple[float, float] = (0.33, 0.75),
    spread: float = 0.05,
    rng: RngLike = None,
) -> Iterator[FloatArray]:
    """Bimodal population whose mixture weight swings across the stream.

    Taxi-pickup shaped: two rush-hour modes, with the population mass
    moving from the first mode to the second as the stream advances
    (morning fading into evening).
    """
    n_ticks = int(n_ticks)
    n_users = int(n_users)
    if n_ticks < 1 or n_users < 1:
        raise ValueError("n_ticks and n_users must be >= 1")
    gen = as_generator(rng)
    first, second = modes
    for t in range(n_ticks):
        frac = t / max(1, n_ticks - 1)
        weight_second = 0.2 + 0.6 * frac
        pick = gen.random(n_users) < weight_second
        values = np.where(
            pick,
            gen.normal(second, spread, size=n_users),
            gen.normal(first, spread, size=n_users),
        )
        yield np.clip(values, 0.0, 1.0)
