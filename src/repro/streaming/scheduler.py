"""Warm-start tick scheduler: continuous estimation over window states.

:class:`StreamingCollector` owns one window state per attribute
(:mod:`repro.streaming.window`) and turns "a new round arrived" into fresh
estimates with three amortizations layered on the one-shot pipeline:

1. **Fingerprint skip** — each window keys a posterior cache on a stable
   fingerprint of its contents; a tick whose window did not change costs
   zero solves.
2. **Warm start** — EM-backed attributes start from the previous tick's
   posterior (mixed with a drop of uniform so no coordinate is exactly
   zero), via the estimator's existing ``estimate(x0=)`` plumbing. Same
   fixed point, far fewer iterations when the window moved by one round.
3. **Fusion** — wave-mechanism attributes that share a channel operator
   and EM configuration are stacked into one ``(d_out, B)``
   :meth:`repro.api.EMConfig.run_many` batch, so a multi-attribute tick
   pays one solver dispatch through the backend seam instead of B.

Drift is the failure mode of warm starting: on a sampled cadence the
scheduler cross-checks the warm posterior against a cold solve
(:class:`repro.streaming.drift.DriftMonitor`) and invalidates the cache
when the divergence crosses the threshold, adopting the fresh posterior.

Privacy accounting for the stream lives in
:func:`repro.privacy.audit_stream_budget`; :meth:`StreamingCollector.audit`
reports the per-window effective epsilon for the collector's own window
length and per-attribute allocation.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.base import Estimator
from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import WaveEstimator
from repro.streaming.drift import DriftMonitor
from repro.streaming.window import (
    CumulativeState,
    DecayedState,
    SlidingWindowState,
    _WindowBase,
    clone_template,
)
from repro.utils.rng import RngLike, as_generator

__all__ = ["AttributeTick", "StreamingCollector", "TickResult"]

#: Uniform-mixing weight applied to a cached posterior before it seeds the
#: next warm start (EM cannot move a coordinate off exactly zero). Matches
#: the incremental-serving constant in :mod:`repro.protocol.server`.
_WARM_START_MIX = 1e-6


@dataclass(frozen=True)
class AttributeTick:
    """One attribute's outcome within a tick."""

    attribute: str
    estimate: Any
    iterations: int | None = None
    converged: bool | None = None
    warm: bool = False
    fused: bool = False
    skipped: bool = False
    empty: bool = False
    drift: float | None = None
    drifted: bool = False

    def to_dict(self) -> dict[str, Any]:
        estimate = self.estimate
        if isinstance(estimate, np.ndarray):
            estimate = estimate.tolist()
        return {
            "attribute": self.attribute,
            "estimate": estimate,
            "iterations": self.iterations,
            "converged": self.converged,
            "warm": self.warm,
            "fused": self.fused,
            "skipped": self.skipped,
            "empty": self.empty,
            "drift": self.drift,
            "drifted": self.drifted,
        }


@dataclass(frozen=True)
class TickResult:
    """Everything one call to :meth:`StreamingCollector.tick` produced."""

    tick: int
    attributes: dict[str, AttributeTick] = field(default_factory=dict)
    fused_groups: int = 0
    solved: int = 0
    skipped: int = 0

    @property
    def total_iterations(self) -> int:
        return sum(
            t.iterations or 0 for t in self.attributes.values() if not t.skipped
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tick": self.tick,
            "fused_groups": self.fused_groups,
            "solved": self.solved,
            "skipped": self.skipped,
            "total_iterations": self.total_iterations,
            "attributes": {
                name: t.to_dict() for name, t in self.attributes.items()
            },
        }


def _warm_startable(estimator: Estimator) -> bool:
    """EM-backed families whose ``estimate`` accepts ``x0=``."""
    if isinstance(estimator, WaveEstimator):
        return True
    return isinstance(estimator, CFOBinning) and estimator.em is not None


def _mixed(posterior: np.ndarray) -> np.ndarray:
    """Cached posterior nudged strictly positive for the next warm start."""
    return (
        1.0 - _WARM_START_MIX
    ) * posterior + _WARM_START_MIX / posterior.size


class StreamingCollector:
    """Continuous-collection engine over per-attribute window states.

    Parameters
    ----------
    templates:
        ``{attribute: estimator}`` defining family and parameters per
        attribute; templates are cloned, never mutated.
    window:
        Sliding-window length in rounds (``SlidingWindowState``).
    decay:
        Exponential forgetting factor in ``(0, 1)`` (``DecayedState``).
        Mutually exclusive with ``window``; with neither, the collector
        aggregates everything since the start (``CumulativeState``).
    warm_start:
        Seed EM from the previous tick's posterior (default). ``False``
        forces cold solves — mainly for benchmarking the amortization.
    drift_every / drift_threshold / drift_statistic:
        Cadence-sampled warm-vs-cold cross-check
        (:class:`repro.streaming.drift.DriftMonitor`); ``drift_every=0``
        disables it.
    """

    def __init__(
        self,
        templates: Mapping[str, Estimator],
        *,
        window: int | None = None,
        decay: float | None = None,
        warm_start: bool = True,
        drift_every: int = 0,
        drift_threshold: float = 0.05,
        drift_statistic: str = "tv",
    ) -> None:
        if not templates:
            raise ValueError("templates must be non-empty")
        if window is not None and decay is not None:
            raise ValueError("window and decay are mutually exclusive")
        self.window = int(window) if window is not None else None
        self.decay = float(decay) if decay is not None else None
        self.warm_start = bool(warm_start)
        self.drift = DriftMonitor(
            every=drift_every,
            threshold=drift_threshold,
            statistic=drift_statistic,
        )
        self._windows: dict[str, _WindowBase] = {
            str(name): self._make_window(template)
            for name, template in templates.items()
        }
        #: attribute -> (window fingerprint, posterior) of the last solve.
        self._cache: dict[str, tuple[str, np.ndarray]] = {}
        self._last: dict[str, AttributeTick] = {}
        self._ticks = 0

    def _make_window(self, template: Estimator) -> _WindowBase:
        if self.window is not None:
            return SlidingWindowState(template, self.window)
        if self.decay is not None:
            return DecayedState(template, self.decay)
        return CumulativeState(template)

    @classmethod
    def from_plan(
        cls, plan: Any, **kwargs: Any
    ) -> "StreamingCollector":
        """Build a collector from an :class:`~repro.tasks.plan.AnalysisPlan`
        (or an already-planned analysis): one template per planned
        attribute, using the planner's mechanism choices and epsilon
        allocation."""
        from repro.tasks.planner import PlannedAnalysis, plan_analysis

        planned = plan if isinstance(plan, PlannedAnalysis) else plan_analysis(plan)
        return cls(planned.make_estimators(), **kwargs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._windows)

    @property
    def n_ticks(self) -> int:
        return self._ticks

    def window_state(self, attribute: str) -> _WindowBase:
        return self._windows[str(attribute)]

    def estimates(self) -> dict[str, Any]:
        """Latest per-attribute estimates (from the most recent tick)."""
        return {
            name: _copy(tick.estimate) for name, tick in self._last.items()
        }

    # ------------------------------------------------------------------
    # round helpers
    # ------------------------------------------------------------------
    def make_round(
        self, attribute: str, values: Any, rng: RngLike = None
    ) -> Estimator:
        """Privatize + aggregate one round of raw values for ``attribute``.

        A convenience for simulations and examples: clones the attribute's
        template, runs one client/server round over ``values``, and
        returns the round estimator ready for :meth:`tick`. Production
        deployments build round estimators from wire feeds instead
        (:class:`repro.service.ShardedCollector` windowed mode).
        """
        template = self._windows[str(attribute)].template
        round_estimator = clone_template(template)
        round_estimator.partial_fit(values, rng=as_generator(rng))
        return round_estimator

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def tick(self, rounds: Mapping[str, Estimator]) -> TickResult:
        """Advance every window by one round and refresh estimates.

        ``rounds`` maps attribute name to that round's aggregate estimator
        (same family/params as the attribute's template). Attributes
        absent from ``rounds`` keep their window unchanged — their cached
        estimate is served without a solve (fingerprint skip).
        """
        unknown = set(map(str, rounds)) - set(self._windows)
        if unknown:
            raise KeyError(
                f"unknown attributes {sorted(unknown)}; "
                f"collector serves {sorted(self._windows)}"
            )
        self._ticks += 1
        for name, round_estimator in rounds.items():
            self._windows[str(name)].push(round_estimator)

        ticks: dict[str, AttributeTick] = {}
        fuse_groups: dict[tuple[Any, ...], list[tuple[str, WaveEstimator, str]]] = {}
        for name, state in self._windows.items():
            current = state.current
            fingerprint = state.fingerprint()
            cached = self._cache.get(name)
            if cached is not None and cached[0] == fingerprint:
                ticks[name] = AttributeTick(
                    attribute=name,
                    estimate=_copy(cached[1]),
                    warm=True,
                    skipped=True,
                )
                continue
            if _is_empty(current):
                ticks[name] = AttributeTick(
                    attribute=name, estimate=None, skipped=True, empty=True
                )
                continue
            if isinstance(current, WaveEstimator):
                key = (id(current.channel), current.config, current.epsilon)
                fuse_groups.setdefault(key, []).append(
                    (name, current, fingerprint)
                )
            else:
                ticks[name] = self._solve_one(name, current, fingerprint)

        for members in fuse_groups.values():
            if len(members) == 1:
                name, estimator, fingerprint = members[0]
                ticks[name] = self._solve_one(name, estimator, fingerprint)
            else:
                ticks.update(self._solve_fused(members))

        self._last.update(ticks)
        solved = sum(1 for t in ticks.values() if not t.skipped)
        skipped = sum(1 for t in ticks.values() if t.skipped)
        return TickResult(
            tick=self._ticks,
            attributes=ticks,
            fused_groups=sum(1 for m in fuse_groups.values() if len(m) > 1),
            solved=solved,
            skipped=skipped,
        )

    # -- solve paths -------------------------------------------------------
    def _x0_for(self, name: str) -> np.ndarray | None:
        if not self.warm_start:
            return None
        cached = self._cache.get(name)
        if cached is None:
            return None
        return _mixed(cached[1])

    def _solve_one(
        self, name: str, estimator: Estimator, fingerprint: str
    ) -> AttributeTick:
        """Solve one attribute through its own ``estimate`` path."""
        x0 = self._x0_for(name) if _warm_startable(estimator) else None
        if _warm_startable(estimator):
            estimate = estimator.estimate(x0=x0)
        else:
            estimate = estimator.estimate()
        result = getattr(estimator, "result_", None)
        iterations = int(result.iterations) if result is not None else None
        converged = bool(result.converged) if result is not None else None
        tick = AttributeTick(
            attribute=name,
            estimate=_copy(estimate),
            iterations=iterations,
            converged=converged,
            warm=x0 is not None,
        )
        return self._finish(name, estimator, fingerprint, tick)

    def _solve_fused(
        self, members: list[tuple[str, WaveEstimator, str]]
    ) -> dict[str, AttributeTick]:
        """One ``run_many`` batch for wave attributes sharing a channel."""
        _, first, _ = members[0]
        d = first.d
        counts = np.stack(
            [estimator._counts for _, estimator, _ in members], axis=1
        )
        x0: np.ndarray | None = None
        warm_flags = [False] * len(members)
        if self.warm_start:
            columns = np.full((d, len(members)), 1.0 / d)
            any_warm = False
            for j, (name, _, _) in enumerate(members):
                seed = self._x0_for(name)
                if seed is not None:
                    columns[:, j] = seed
                    warm_flags[j] = True
                    any_warm = True
            if any_warm:
                x0 = columns
        batch = first.config.run_many(
            first.channel, counts, first.epsilon, validated=True, x0=x0
        )
        out: dict[str, AttributeTick] = {}
        for j, (name, estimator, fingerprint) in enumerate(members):
            column = batch.column(j)
            estimator.result_ = column
            tick = AttributeTick(
                attribute=name,
                estimate=column.estimate.copy(),
                iterations=int(column.iterations),
                converged=bool(column.converged),
                warm=warm_flags[j],
                fused=True,
            )
            out[name] = self._finish(name, estimator, fingerprint, tick)
        return out

    def _finish(
        self,
        name: str,
        estimator: Estimator,
        fingerprint: str,
        tick: AttributeTick,
    ) -> AttributeTick:
        """Drift cross-check (on cadence), then refresh the posterior cache."""
        posterior = tick.estimate
        if not isinstance(posterior, np.ndarray):
            return tick  # scalar families: nothing to cache or cross-check
        if (
            tick.warm
            and not tick.skipped
            and self.drift.due(self._ticks)
            and _warm_startable(estimator)
        ):
            fresh = np.asarray(estimator.estimate(x0=None), dtype=np.float64)
            check = self.drift.observe(self._ticks, name, posterior, fresh)
            if check.drifted:
                # Warm start went stale: adopt the cold posterior.
                posterior = fresh
                tick = AttributeTick(
                    attribute=name,
                    estimate=fresh.copy(),
                    iterations=tick.iterations,
                    converged=tick.converged,
                    warm=tick.warm,
                    fused=tick.fused,
                    drift=check.statistic,
                    drifted=True,
                )
            else:
                tick = AttributeTick(
                    attribute=name,
                    estimate=tick.estimate,
                    iterations=tick.iterations,
                    converged=tick.converged,
                    warm=tick.warm,
                    fused=tick.fused,
                    drift=check.statistic,
                    drifted=False,
                )
        self._cache[name] = (fingerprint, posterior.copy())
        return tick

    # ------------------------------------------------------------------
    # privacy accounting
    # ------------------------------------------------------------------
    def audit(
        self,
        per_attribute: Mapping[str, float],
        epsilon_budget: float,
        *,
        composition: str = "sequential",
        participation: str = "every-round",
    ) -> Any:
        """Per-window effective-epsilon audit for this collector's stream.

        The window length is the collector's own: ``window`` rounds for a
        sliding window, ``ceil(1 / (1 - decay))`` equivalent rounds for a
        decayed state, and the number of ticks so far for cumulative
        aggregation. See :func:`repro.privacy.audit_stream_budget`.
        """
        from repro.privacy.audit import audit_stream_budget

        return audit_stream_budget(
            per_attribute,
            epsilon_budget,
            rounds=self.effective_rounds,
            composition=composition,
            participation=participation,
        )

    @property
    def effective_rounds(self) -> int:
        """Rounds a single user can influence the current estimate through."""
        if self.window is not None:
            return self.window
        if self.decay is not None:
            # Tolerance absorbs float artifacts: 1/(1-0.9) is 10 + 2 ulp,
            # which must audit as 10 rounds, not ceil to 11.
            return int(np.ceil(1.0 / (1.0 - self.decay) - 1e-9))
        return max(1, self._ticks)


def _is_empty(estimator: Estimator) -> bool:
    """Whether an estimator has ingested nothing (solve would raise)."""
    n = getattr(estimator, "n_reports", None)
    if n is None:
        return False
    return int(n) <= 0


def _copy(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return [_copy(item) for item in value]
    return value


def iter_ticks(results: Iterable[TickResult]) -> dict[str, Any]:
    """Summarize a sequence of tick results (iterations, skips, drift).

    A small reporting convenience shared by the CLI ``stream`` command and
    the benchmark harness.
    """
    ticks = list(results)
    total_iterations = sum(t.total_iterations for t in ticks)
    return {
        "n_ticks": len(ticks),
        "total_iterations": total_iterations,
        "solved": sum(t.solved for t in ticks),
        "skipped": sum(t.skipped for t in ticks),
        "fused_groups": sum(t.fused_groups for t in ticks),
        "drift_flags": sum(
            1
            for t in ticks
            for a in t.attributes.values()
            if a.drifted
        ),
    }
