"""repro.streaming — continuous collection over the estimator machinery.

The paper evaluates one-shot rounds; a production aggregator runs forever.
This package turns the one-shot pipeline into that monitoring workload:

* window states (:class:`SlidingWindowState`, :class:`DecayedState`) keep
  a per-attribute aggregate over recent rounds in O(d) per tick, exact
  (bit-identical to re-ingesting) for the sliding window;
* :class:`StreamingCollector` schedules the per-tick solves — posterior
  cache with fingerprint skip, EM warm starts, fused multi-attribute
  batches — and cross-checks warm starts for drift on a sampled cadence;
* :func:`repro.privacy.audit_stream_budget` (re-exported by
  ``repro.privacy``) accounts the multi-round privacy spend with a
  per-window effective-epsilon view;
* :mod:`repro.streaming.telemetry` provides seeded drifting streams for
  examples and benchmarks.

Window math goes exclusively through the sanctioned state arithmetic
(``repro.api.subtract_state`` / ``scale_state``); reprolint rule STATE001
enforces that boundary for the rest of the tree.
"""

from repro.streaming.drift import DriftMonitor, chi_square, total_variation
from repro.streaming.scheduler import (
    AttributeTick,
    StreamingCollector,
    TickResult,
)
from repro.streaming.telemetry import drifting_stream, shifting_mixture_stream
from repro.streaming.window import (
    CumulativeState,
    DecayedState,
    SlidingWindowState,
    clone_template,
)

__all__ = [
    "AttributeTick",
    "CumulativeState",
    "DecayedState",
    "DriftMonitor",
    "SlidingWindowState",
    "StreamingCollector",
    "TickResult",
    "chi_square",
    "clone_template",
    "drifting_stream",
    "shifting_mixture_stream",
    "total_variation",
]
