"""Window states: O(d)-maintained aggregates over a stream of rounds.

A continuous collection produces one aggregate state per round; every tick
wants an estimate over a *window* of recent rounds. Re-ingesting the window
from scratch costs O(W * n) per tick; because every estimator state is a
linear sufficient statistic, the same answer is maintainable in O(d):

* :class:`SlidingWindowState` — a ring buffer of the last ``W`` per-round
  state payloads plus one running aggregate. Advancing merges the newest
  round and subtracts the evicted one (``repro.api.subtract_state``), so
  each tick costs two O(d) passes — and, for integer-count states below
  2^53, the running aggregate is **bit-identical** to re-ingesting the
  surviving rounds from scratch (integer add/subtract is exact in float64).
  Memory is O(W * d): the ring keeps payloads, never raw reports.

* :class:`DecayedState` — exponential forgetting,
  ``state <- gamma * state + newest``, O(d) per tick and O(d) memory.
  The authoritative accumulator lives in *payload* space (floats), and is
  materialized into an estimator only when an estimate is needed; this
  keeps repeated decay exact-in-float even for families whose loaders
  coerce counts back to integers (truncation happens once at
  materialization, never compounds in the accumulator).

* :class:`CumulativeState` — no forgetting; plain merge accumulation,
  provided so the scheduler has a uniform interface for the "estimate
  everything so far" mode.

All three expose the same surface: ``push(round_estimator)``,
``current`` (an estimator over the window), ``fingerprint()`` (a stable
key of the window contents, used by the warm-start posterior cache), and
``n_rounds``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

from repro.api.arithmetic import (
    add_payload,
    scale_payload,
    subtract_state,
    supports_state_arithmetic,
)
from repro.api.base import Estimator

__all__ = [
    "CumulativeState",
    "DecayedState",
    "SlidingWindowState",
    "clone_template",
]


def clone_template(estimator: Estimator) -> Estimator:
    """A fresh estimator with ``estimator``'s parameters and empty state."""
    clone = Estimator.from_state(estimator.to_state())
    clone.reset()
    return clone


def _check_round(template: Estimator, round_estimator: Estimator) -> None:
    """Same compatibility contract as ``merge``: type + params must match."""
    if type(round_estimator) is not type(template):
        raise TypeError(
            f"round estimator is {type(round_estimator).__name__}, window is "
            f"over {type(template).__name__}"
        )
    if round_estimator._params() != template._params():
        raise ValueError(
            "round estimator parameters do not match the window template: "
            f"{round_estimator._params()} != {template._params()}"
        )


class _WindowBase:
    """Shared surface of the three window states."""

    def __init__(self, template: Estimator) -> None:
        if not supports_state_arithmetic(template):
            raise TypeError(
                f"{type(template).__name__} does not support state arithmetic "
                "(state_arithmetic=False); it cannot back a window state"
            )
        self._template = template
        self._rounds = 0

    @property
    def template(self) -> Estimator:
        return self._template

    @property
    def n_rounds(self) -> int:
        """Rounds pushed so far (not capped by the window length)."""
        return self._rounds

    @property
    def current(self) -> Estimator:
        """Estimator whose state is the window aggregate (read-only use)."""
        raise NotImplementedError

    def push(self, round_estimator: Estimator) -> None:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable key of the window contents (warm-start cache key)."""
        return json.dumps(self.current._state(), sort_keys=True)


class CumulativeState(_WindowBase):
    """Everything-so-far aggregation: push = merge, nothing is forgotten."""

    def __init__(self, template: Estimator) -> None:
        super().__init__(template)
        self._current = clone_template(template)

    @property
    def current(self) -> Estimator:
        return self._current

    def push(self, round_estimator: Estimator) -> None:
        _check_round(self._template, round_estimator)
        self._current.merge(round_estimator)
        self._rounds += 1


class SlidingWindowState(_WindowBase):
    """Last-``window``-rounds aggregate, maintained in O(d) per push.

    The ring buffer stores per-round *state payloads* (``_state()`` dicts),
    so memory is O(window * d) regardless of how many reports each round
    saw. ``push`` merges the newest round into the running aggregate and,
    once the ring is full, subtracts the evicted round through the
    sanctioned ``repro.api.subtract_state`` — exact, and bit-identical to
    re-ingesting the surviving rounds, because bucketized counts are
    integer-valued float64 (< 2^53).
    """

    def __init__(self, template: Estimator, window: int) -> None:
        super().__init__(template)
        window = int(window)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._ring: deque[dict[str, Any]] = deque()
        self._current = clone_template(template)
        self._scratch = clone_template(template)

    @property
    def window(self) -> int:
        return self._window

    @property
    def n_in_window(self) -> int:
        return len(self._ring)

    @property
    def current(self) -> Estimator:
        return self._current

    def push(self, round_estimator: Estimator) -> None:
        _check_round(self._template, round_estimator)
        self._current.merge(round_estimator)
        self._ring.append(round_estimator._state())
        if len(self._ring) > self._window:
            evicted = self._ring.popleft()
            self._scratch._load_state(evicted)
            subtract_state(self._current, self._scratch)
        self._rounds += 1

    def rebuild(self) -> Estimator:
        """Re-ingest the ring from scratch (the O(W * d) slow path).

        Exists for verification: the result must be bit-identical to
        :attr:`current`. Benchmarks and tests call it; the tick path never
        does.
        """
        rebuilt = clone_template(self._template)
        for payload in self._ring:
            self._scratch._load_state(payload)
            rebuilt.merge(self._scratch)
        return rebuilt


class DecayedState(_WindowBase):
    """Exponentially-decayed aggregate: ``state <- decay * state + newest``.

    ``decay`` in ``(0, 1)``; the effective window is ``1 / (1 - decay)``
    rounds. The accumulator is a float-space payload — materialized into an
    estimator lazily — so repeated decay never compounds integer
    truncation in families whose loaders coerce counts to ``int``.
    """

    def __init__(self, template: Estimator, decay: float) -> None:
        super().__init__(template)
        decay = float(decay)
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self._decay = decay
        self._payload: dict[str, Any] | None = None
        self._materialized = clone_template(template)
        self._stale = True

    @property
    def decay(self) -> float:
        return self._decay

    @property
    def effective_window(self) -> float:
        """Equivalent-rounds mass of the decayed sum: ``1 / (1 - decay)``."""
        return 1.0 / (1.0 - self._decay)

    @property
    def current(self) -> Estimator:
        if self._payload is None:
            return self._materialized  # empty template state
        if self._stale:
            self._materialized._load_state(self._payload)
            self._stale = False
        return self._materialized

    def push(self, round_estimator: Estimator) -> None:
        _check_round(self._template, round_estimator)
        newest = round_estimator._state()
        if self._payload is None:
            # Scale by 1.0 to deep-copy without aliasing the round's state.
            self._payload = scale_payload(newest, 1.0)
        else:
            self._payload = add_payload(
                scale_payload(self._payload, self._decay), newest
            )
        self._stale = True
        self._rounds += 1

    def fingerprint(self) -> str:
        if self._payload is None:
            return json.dumps(self._materialized._state(), sort_keys=True)
        return json.dumps(self._payload, sort_keys=True)
