"""Drift detection for warm-started streaming estimation.

Warm-starting EM from the previous tick's posterior is a pure speed
optimization when the stream is stationary — the fixed point is the same.
Under *drift* the fixed point moves; EM still converges, but a warm start
near a stale mode can take a locally-converged shortcut that a cold solve
would not. The cheap guard: on a sampled cadence, run one cold solve next
to the warm one and compare the posteriors with a divergence statistic.
Small divergence certifies the warm start; large divergence flags drift,
and the scheduler invalidates its posterior cache (adopting the fresh
solve) so the next ticks re-anchor.

The statistics are deliberately simple and O(d):

* :func:`total_variation` — ``0.5 * sum |p - q|``, in ``[0, 1]``;
* :func:`chi_square` — ``sum (p - q)^2 / (q + floor)``, more sensitive
  to relative error in low-mass buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.typing import ArrayLike

__all__ = ["DriftMonitor", "chi_square", "total_variation"]


def _as_distribution(p: ArrayLike, name: str) -> np.ndarray:
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-d array, got shape {arr.shape}")
    return arr


def total_variation(p: ArrayLike, q: ArrayLike) -> float:
    """Total-variation distance ``0.5 * ||p - q||_1`` between histograms."""
    a = _as_distribution(p, "p")
    b = _as_distribution(q, "q")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} != {b.shape}")
    return float(0.5 * np.abs(a - b).sum())


def chi_square(p: ArrayLike, q: ArrayLike, *, floor: float = 1e-12) -> float:
    """Chi-square divergence of ``p`` from reference ``q``.

    ``floor`` regularizes empty reference buckets so the statistic stays
    finite; it is a numerical smoothing constant, not a privacy budget.
    """
    a = _as_distribution(p, "p")
    b = _as_distribution(q, "q")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} != {b.shape}")
    diff = a - b
    return float((diff * diff / (b + floor)).sum())


@dataclass(frozen=True)
class DriftCheck:
    """Outcome of one sampled warm-vs-cold comparison."""

    tick: int
    attribute: str
    statistic: float
    threshold: float

    @property
    def drifted(self) -> bool:
        return self.statistic > self.threshold


class DriftMonitor:
    """Cadence-sampled warm-vs-fresh posterior comparison.

    Parameters
    ----------
    every:
        Check cadence in ticks; ``0`` disables checking entirely.
    threshold:
        Divergence level above which the warm start is declared stale.
    statistic:
        ``"tv"`` (default) or ``"chi2"``.
    """

    def __init__(
        self,
        *,
        every: int = 0,
        threshold: float = 0.05,
        statistic: str = "tv",
    ) -> None:
        self.every = int(every)
        if self.every < 0:
            raise ValueError(f"every must be >= 0, got {self.every}")
        self.threshold = float(threshold)
        if not self.threshold > 0.0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")
        if statistic not in ("tv", "chi2"):
            raise ValueError(f"statistic must be 'tv' or 'chi2', got {statistic!r}")
        self.statistic = statistic
        self.checks: list[DriftCheck] = []

    def due(self, tick: int) -> bool:
        """Whether a warm solve at ``tick`` should be cross-checked."""
        return self.every > 0 and tick % self.every == 0

    def divergence(self, warm: ArrayLike, fresh: ArrayLike) -> float:
        if self.statistic == "chi2":
            return chi_square(warm, fresh)
        return total_variation(warm, fresh)

    def observe(
        self, tick: int, attribute: str, warm: ArrayLike, fresh: ArrayLike
    ) -> DriftCheck:
        """Record one warm-vs-fresh comparison and return the verdict."""
        check = DriftCheck(
            tick=tick,
            attribute=attribute,
            statistic=self.divergence(warm, fresh),
            threshold=self.threshold,
        )
        self.checks.append(check)
        return check
