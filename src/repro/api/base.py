"""Canonical estimator contract: the ``Mechanism`` protocol + ``Estimator`` ABC.

The paper's pipeline splits across a trust boundary — clients randomize,
an untrusted server aggregates — and every method in this package follows
the same lifecycle, made explicit here:

1. ``privatize(values, rng)`` — client side; raw values never leave it.
2. ``ingest(reports)`` / ``partial_fit(values, rng)`` — server side,
   streaming: folds a batch into O(state) sufficient statistics (count
   vectors, oracle sketches, tree-level accumulators).
3. ``estimate()`` — reconstruct from everything ingested so far; callable
   mid-round at any time.
4. ``aggregate(reports)`` / ``fit(values, rng)`` — one-shot conveniences
   (reset, ingest, estimate).

For distributed collection, shard-local state travels through
``merge(other)`` and ``to_state()`` / ``from_state()`` — two servers can
aggregate disjoint user populations and combine exactly, because every
concrete estimator keeps *linear* sufficient statistics.
"""

from __future__ import annotations

import abc
import importlib
from typing import Any, Protocol, runtime_checkable

from repro.utils.rng import RngLike
from repro.utils.typing import ArrayLike, FloatArray

__all__ = [
    "Mechanism",
    "Estimator",
    "mechanism_spec",
    "mechanism_from_spec",
]

#: Marker key identifying an embedded mechanism spec inside estimator params.
_MECHANISM_KEY = "__mechanism__"


@runtime_checkable
class Mechanism(Protocol):
    """Client-side randomizer contract.

    A mechanism owns the privacy guarantee: ``privatize`` maps raw values to
    eps-LDP reports, ``bucketize_reports`` turns reports into an output
    histogram, and ``transition_matrix`` gives the exact report distribution
    per input bucket (columns sum to 1) for likelihood-based reconstruction.
    ``SquareWave``, ``DiscreteSquareWave``, and ``GeneralWave`` all conform
    structurally — no inheritance needed.
    """

    epsilon: float

    def privatize(self, values: ArrayLike, rng: RngLike = None) -> Any: ...

    def bucketize_reports(self, reports: Any, *args: Any) -> FloatArray: ...

    def transition_matrix(self, *args: Any) -> FloatArray: ...

    def _params(self) -> dict[str, Any]: ...  # constructor kwargs, for state files


def _class_path(obj: Any) -> str:
    cls = type(obj) if not isinstance(obj, type) else obj
    return f"{cls.__module__}:{cls.__qualname__}"


def _import_class(path: str) -> type[Any]:
    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def mechanism_spec(mechanism: Any) -> dict[str, Any]:
    """JSON-serializable description of a mechanism (class path + params)."""
    return {
        _MECHANISM_KEY: True,
        "class": _class_path(mechanism),
        "params": mechanism._params(),
    }


#: Methods a class must expose to be instantiated from a mechanism spec.
_MECHANISM_METHODS = ("privatize", "bucketize_reports", "transition_matrix", "_params")


def mechanism_from_spec(spec: dict[str, Any]) -> Any:
    """Rebuild a mechanism from :func:`mechanism_spec` output.

    The named class must structurally conform to :class:`Mechanism`;
    arbitrary classes are refused, so a state payload cannot be used to
    instantiate unrelated code. (State payloads should still only be loaded
    from trusted shards — importing a module runs its top-level code.)
    """
    cls = _import_class(spec["class"])
    if not isinstance(cls, type) or not all(
        callable(getattr(cls, method, None)) for method in _MECHANISM_METHODS
    ):
        raise ValueError(f"{spec['class']} is not a Mechanism class")
    return cls(**spec["params"])


def _is_mechanism_spec(value: Any) -> bool:
    return isinstance(value, dict) and value.get(_MECHANISM_KEY) is True


class Estimator(abc.ABC):
    """Abstract base class for every estimator in the package.

    Concrete subclasses implement the streaming primitives (``privatize``,
    ``ingest``, ``estimate``, ``reset``) plus the merge/serialization hooks
    (``_merge_state``, ``_params``, ``_state``, ``_load_state``); the
    lifecycle conveniences (``partial_fit``, ``aggregate``, ``fit``,
    ``merge``, ``to_state``/``from_state``) are derived here.
    """

    #: Registry/reporting identity; subclasses override (possibly per instance).
    name: str = "estimator"

    #: What ``estimate()`` returns: ``"distribution"`` (probability
    #: histogram), ``"leaf-signed"`` (unbiased, possibly-negative leaves),
    #: ``"frequency"`` (unbiased signed categorical frequencies), or
    #: ``"scalar"`` (a single statistic).
    kind: str = "distribution"

    #: Whether ``ingest``/``partial_fit`` accumulate O(state) sufficient
    #: statistics (all built-in estimators do).
    streaming: bool = True

    #: Whether ``merge(other)`` combines two shards exactly.
    mergeable: bool = True

    #: Whether the aggregation state is closed under the sanctioned window
    #: arithmetic (``repro.api.subtract_state`` / ``scale_state``): state
    #: payloads must be linear in the ingested reports, so subtracting a
    #: previously-merged shard or scaling by a decay factor yields the
    #: state of a valid (possibly weighted) collection. True for every
    #: built-in family — all keep linear sufficient statistics; set to
    #: ``False`` for states with nonlinear components (min/max, medians,
    #: collision-dependent sketches).
    state_arithmetic: bool = True

    #: Name of the payload codec (:mod:`repro.protocol.codecs`) this
    #: estimator's reports travel under on the wire, or ``None`` if the
    #: reports have no wire form (shard state travels via ``to_state()``).
    #: May be a property where the payload type depends on construction.
    wire_codec: str | None = None

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def privatize(self, values: ArrayLike, rng: RngLike = None) -> Any:
        """Randomize raw private values into LDP reports (client side)."""

    # ------------------------------------------------------------------
    # server side: streaming aggregation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ingest(self, reports: Any) -> None:
        """Fold a batch of reports into the aggregation state."""

    @abc.abstractmethod
    def estimate(self) -> Any:
        """Reconstruct from everything ingested so far.

        Raises ``RuntimeError`` if nothing has been ingested.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear the aggregation state (start a fresh collection round)."""

    def partial_fit(self, values: ArrayLike, rng: RngLike = None) -> "Estimator":
        """Privatize + ingest one shard of users; returns ``self``."""
        self.ingest(self.privatize(values, rng=rng))
        return self

    def aggregate(self, reports: Any) -> Any:
        """One-shot server side: reconstruct from exactly these reports.

        Resets any previously accumulated state first.
        """
        self.reset()
        self.ingest(reports)
        return self.estimate()

    def fit(self, values: ArrayLike, rng: RngLike = None) -> Any:
        """Simulate one whole collection round (privatize + aggregate)."""
        return self.aggregate(self.privatize(values, rng=rng))

    # ------------------------------------------------------------------
    # shard combination + serialization
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _merge_state(self, other: "Estimator") -> None:
        """Fold ``other``'s aggregation state into ours (params match)."""

    def merge(self, other: "Estimator") -> "Estimator":
        """Combine another shard's aggregation state into this one.

        Both estimators must be the same type with identical parameters;
        afterwards ``self.estimate()`` equals an estimate over the union of
        both shards' reports. Returns ``self`` for chaining.
        """
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other._params() != self._params():
            raise ValueError(
                f"cannot merge {type(self).__name__} shards with different "
                f"parameters: {self._params()} != {other._params()}"
            )
        self._merge_state(other)
        return self

    @abc.abstractmethod
    def _params(self) -> dict[str, Any]:
        """JSON-serializable constructor kwargs that recreate this estimator."""

    @abc.abstractmethod
    def _state(self) -> dict[str, Any]:
        """JSON-serializable aggregation state."""

    @abc.abstractmethod
    def _load_state(self, state: dict[str, Any]) -> None:
        """Restore aggregation state produced by :meth:`_state`."""

    def to_state(self) -> dict[str, Any]:
        """Serialize identity, parameters, and aggregation state.

        The payload is plain JSON-compatible data, so shard-local state can
        cross process or machine boundaries; invert with
        :meth:`from_state` (or ``repro.api.estimator_from_state``).
        """
        return {
            "estimator": self.name,
            "class": _class_path(self),
            "params": self._params(),
            "state": self._state(),
        }

    @classmethod
    def from_state(cls, payload: dict[str, Any]) -> "Estimator":
        """Rebuild an estimator (with state) from :meth:`to_state` output."""
        target = _import_class(payload["class"])
        if not isinstance(target, type) or not issubclass(target, Estimator):
            raise ValueError(f"{payload['class']} is not an Estimator")
        if cls is not Estimator and not issubclass(target, cls):
            raise ValueError(
                f"state payload is for {payload['class']}, not {cls.__name__}"
            )
        params = {
            key: mechanism_from_spec(value) if _is_mechanism_spec(value) else value
            for key, value in payload["params"].items()
        }
        instance = target(**params)
        instance._load_state(payload["state"])
        return instance

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def _repr_fields(self) -> dict[str, Any]:
        """Fields shown by ``repr``; defaults to the constructor params."""
        return self._params()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self._repr_fields().items())
        return f"{type(self).__name__}({fields})"
