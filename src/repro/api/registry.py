"""Central capability-aware estimator registry.

One registry replaces the string-dispatch tables that used to live in
``repro.core.pipeline.estimate_distribution`` and
``repro.experiments.methods.METHOD_REGISTRY``: every estimator family is
registered here once, with its capabilities (kind, supported metrics,
streaming, mergeability), and every consumer — ``estimate_distribution``,
``choose_oracle``, the experiment runner, the CLI, and the protocol server —
resolves names through :func:`make_estimator`.

Factories import their estimator classes lazily, which keeps this module at
the bottom of the import graph and start-up cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "DISTRIBUTION_METRICS",
    "RANGE_METRICS",
    "SCALAR_METRICS",
    "ESTIMATOR_KINDS",
    "EstimatorSpec",
    "register_estimator",
    "get_spec",
    "make_estimator",
    "list_estimators",
    "estimator_from_state",
]

#: Metrics computable from a reconstructed probability distribution
#: (paper Table 2, full row).
DISTRIBUTION_METRICS: tuple[str, ...] = (
    "w1",
    "ks",
    "range-0.1",
    "range-0.4",
    "mean",
    "variance",
    "quantile",
)

#: Metrics applicable to unbiased but possibly-negative leaf estimates.
RANGE_METRICS: tuple[str, ...] = ("range-0.1", "range-0.4")

#: Metrics applicable to scalar (mean/variance) mechanisms.
SCALAR_METRICS: tuple[str, ...] = ("mean", "variance")

#: Valid values for :attr:`EstimatorSpec.kind`.
ESTIMATOR_KINDS: tuple[str, ...] = (
    "distribution",
    "leaf-signed",
    "scalar",
    "frequency",
    "marginals",
)


@dataclass(frozen=True)
class EstimatorSpec:
    """Registry entry for one estimator family.

    Attributes
    ----------
    name:
        Registry key (``make_estimator(name, ...)``).
    kind:
        What ``estimate()`` returns; one of :data:`ESTIMATOR_KINDS`.
    factory:
        ``factory(epsilon, d, **kwargs) -> Estimator``.
    supported_metrics:
        Benchmark metrics this estimator is evaluated on (paper Table 2).
    streaming / mergeable / state_arithmetic:
        Capability flags of the produced estimators; ``state_arithmetic``
        marks families whose states support the sanctioned window math
        (``repro.api.subtract_state`` / ``scale_state``) used by
        ``repro.streaming``.
    codec:
        Default wire payload codec (:mod:`repro.protocol.codecs`) the
        family's reports travel under, or ``None`` when it depends on
        construction (resolve from the instance's ``wire_codec``).
    tags:
        Free-form labels; ``"table2"`` marks the paper's benchmark set.
    """

    name: str
    kind: str
    factory: Callable[..., Any] = field(repr=False)
    supported_metrics: tuple[str, ...] = ()
    description: str = ""
    streaming: bool = True
    mergeable: bool = True
    state_arithmetic: bool = True
    codec: str | None = None
    tags: frozenset[str] = frozenset()

    def supports(self, metric: str) -> bool:
        return metric in self.supported_metrics


_REGISTRY: dict[str, EstimatorSpec] = {}


def register_estimator(
    name: str,
    factory: Callable[..., Any],
    *,
    kind: str,
    supported_metrics: tuple[str, ...] = (),
    description: str = "",
    streaming: bool = True,
    mergeable: bool = True,
    state_arithmetic: bool = True,
    codec: str | None = None,
    tags: tuple[str, ...] = (),
    overwrite: bool = False,
) -> EstimatorSpec:
    """Register an estimator factory under a unique name.

    Third-party mechanisms plug in the same way the built-ins do; pass
    ``overwrite=True`` to replace an existing entry deliberately.
    """
    if kind not in ESTIMATOR_KINDS:
        raise ValueError(f"kind must be one of {ESTIMATOR_KINDS}, got {kind!r}")
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"estimator {name!r} is already registered")
    spec = EstimatorSpec(
        name=name,
        kind=kind,
        factory=factory,
        supported_metrics=tuple(supported_metrics),
        description=description,
        streaming=streaming,
        mergeable=mergeable,
        state_arithmetic=state_arithmetic,
        codec=codec,
        tags=frozenset(tags),
    )
    _REGISTRY[name] = spec
    return spec


def get_spec(name: str) -> EstimatorSpec:
    """Look up a registry entry; raises ``ValueError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def make_estimator(name: str, epsilon: float, d: int | None = None, **kwargs: Any) -> Any:
    """Instantiate a registered estimator for one ``(epsilon, d)``.

    ``d`` may be omitted for families with a natural default (or none at
    all, like the scalar mechanisms); extra keyword arguments are forwarded
    to the factory.
    """
    spec = get_spec(name)
    if d is None:
        return spec.factory(epsilon, **kwargs)
    return spec.factory(epsilon, d, **kwargs)


def list_estimators(
    *,
    kind: str | None = None,
    tag: str | None = None,
    metric: str | None = None,
    state_arithmetic: bool | None = None,
) -> list[EstimatorSpec]:
    """All registered specs (sorted by name), optionally filtered.

    ``metric`` filters to estimators whose ``supported_metrics`` include it —
    the capability query the task planner (:mod:`repro.tasks.planner`) uses
    to answer "which mechanisms can serve a mean/quantile/range task?".
    ``state_arithmetic=True`` filters to families whose states support the
    sanctioned window math (the query ``repro.streaming`` uses).
    """
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if kind is not None:
        specs = [spec for spec in specs if spec.kind == kind]
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    if metric is not None:
        specs = [spec for spec in specs if spec.supports(metric)]
    if state_arithmetic is not None:
        specs = [
            spec for spec in specs if spec.state_arithmetic == state_arithmetic
        ]
    return specs


def estimator_from_state(payload: dict[str, Any]) -> Any:
    """Rebuild any estimator (with aggregation state) from ``to_state()``."""
    from repro.api.base import Estimator

    return Estimator.from_state(payload)


# ----------------------------------------------------------------------
# Built-in registrations. Factories lazy-import so that importing the
# registry never drags in (or cycles with) the estimator modules.
# ----------------------------------------------------------------------


def _sw(postprocess: str) -> Callable[..., Any]:
    def factory(epsilon: float, d: int = 1024, **kwargs: Any) -> Any:
        from repro.core.pipeline import SWEstimator

        return SWEstimator(epsilon, d, postprocess=postprocess, **kwargs)

    return factory


def _sw_discrete(postprocess: str) -> Callable[..., Any]:
    def factory(epsilon: float, d: int = 1024, **kwargs: Any) -> Any:
        from repro.core.pipeline import DiscreteSWEstimator

        return DiscreteSWEstimator(epsilon, d, postprocess=postprocess, **kwargs)

    return factory


def _cfo(bins: int | None) -> Callable[..., Any]:
    def factory(epsilon: float, d: int = 1024, **kwargs: Any) -> Any:
        from repro.binning.cfo_binning import CFOBinning

        if bins is not None:
            kwargs.setdefault("bins", bins)
        return CFOBinning(epsilon, d, **kwargs)

    return factory


def _hh(epsilon: float, d: int = 1024, **kwargs: Any) -> Any:
    from repro.hierarchy.hh import HierarchicalHistogram

    kwargs.setdefault("branching", 4)
    return HierarchicalHistogram(epsilon, d, **kwargs)


def _hh_admm(epsilon: float, d: int = 1024, **kwargs: Any) -> Any:
    from repro.hierarchy.admm import HHADMM

    kwargs.setdefault("branching", 4)
    return HHADMM(epsilon, d, **kwargs)


def _haar_hrr(epsilon: float, d: int = 1024, **kwargs: Any) -> Any:
    from repro.hierarchy.haar import HaarHRR

    return HaarHRR(epsilon, d, **kwargs)


def _scalar(mechanism: str) -> Callable[..., Any]:
    def factory(epsilon: float, d: int | None = None, **kwargs: Any) -> Any:
        from repro.mean.scalar import ScalarMeanEstimator

        return ScalarMeanEstimator(epsilon, mechanism=mechanism, d=d, **kwargs)

    return factory


def _sw_multi(epsilon: float, d: int = 256, *, n_attributes: int = 2, **kwargs: Any) -> Any:
    from repro.multidim.marginals import MultiAttributeSW

    return MultiAttributeSW(epsilon, n_attributes, d, **kwargs)


def _oracle(name: str) -> Callable[..., Any]:
    def factory(epsilon: float, d: int, **kwargs: Any) -> Any:
        from repro.freq_oracle.grr import GRR
        from repro.freq_oracle.hrr import HRR
        from repro.freq_oracle.olh import OLH

        cls = {"grr": GRR, "olh": OLH, "hrr": HRR}[name]
        return cls(epsilon, d, **kwargs)

    return factory


register_estimator(
    "sw-ems",
    _sw("ems"),
    kind="distribution",
    codec="float",
    supported_metrics=DISTRIBUTION_METRICS,
    description="Square Wave + EM with smoothing (this paper)",
    tags=("table2",),
)
register_estimator(
    "sw-em",
    _sw("em"),
    kind="distribution",
    codec="float",
    supported_metrics=DISTRIBUTION_METRICS,
    description="Square Wave + plain EM (this paper)",
    tags=("table2",),
)
register_estimator(
    "sw-discrete-ems",
    _sw_discrete("ems"),
    kind="distribution",
    codec="category",
    supported_metrics=DISTRIBUTION_METRICS,
    description="Discrete SW (bucketize-before-randomize, Section 5.4) + EMS",
)
register_estimator(
    "sw-discrete-em",
    _sw_discrete("em"),
    kind="distribution",
    codec="category",
    supported_metrics=DISTRIBUTION_METRICS,
    description="Discrete SW (bucketize-before-randomize, Section 5.4) + plain EM",
)
register_estimator(
    "hh-admm",
    _hh_admm,
    kind="distribution",
    codec="tree",
    supported_metrics=DISTRIBUTION_METRICS,
    description="Hierarchical histogram + ADMM post-processing (this paper)",
    tags=("table2",),
)
for _bins in (16, 32, 64):
    register_estimator(
        f"cfo-{_bins}",
        _cfo(_bins),
        kind="distribution",
        supported_metrics=DISTRIBUTION_METRICS,
        description=f"CFO with {_bins} bins + Norm-Sub",
        tags=("table2",),
    )
register_estimator(
    "cfo",
    _cfo(None),
    kind="distribution",
    supported_metrics=DISTRIBUTION_METRICS,
    description="CFO with binning, configurable bins= (defaults to 32)",
)
register_estimator(
    "hh",
    _hh,
    kind="leaf-signed",
    codec="tree",
    supported_metrics=RANGE_METRICS,
    description="Hierarchical histogram, constrained inference only [18]",
    tags=("table2",),
)
register_estimator(
    "haar-hrr",
    _haar_hrr,
    kind="leaf-signed",
    codec="tree",
    supported_metrics=RANGE_METRICS,
    description="Discrete Haar transform + Hadamard randomized response [18]",
    tags=("table2",),
)
register_estimator(
    "sr",
    _scalar("sr"),
    kind="scalar",
    codec="float",
    supported_metrics=SCALAR_METRICS,
    description="Stochastic Rounding mean/variance estimator [9]",
    tags=("table2",),
)
register_estimator(
    "pm",
    _scalar("pm"),
    kind="scalar",
    codec="float",
    supported_metrics=SCALAR_METRICS,
    description="Piecewise Mechanism mean/variance estimator [30]",
    tags=("table2",),
)
register_estimator(
    "sw-multi",
    _sw_multi,
    kind="marginals",
    codec="multi",
    description="Population-split SW marginals over k attributes (n_attributes=)",
)
register_estimator(
    "grr",
    _oracle("grr"),
    kind="frequency",
    codec="category",
    description="Generalized Randomized Response frequency oracle",
)
register_estimator(
    "olh",
    _oracle("olh"),
    kind="frequency",
    codec="olh",
    description="Optimized Local Hashing frequency oracle",
)
register_estimator(
    "hrr",
    _oracle("hrr"),
    kind="frequency",
    codec="hrr",
    description="Hadamard Randomized Response frequency oracle",
)
