"""repro.api — the canonical estimator contract, EM config, and registry.

Three pieces every method in the package plugs into:

* :class:`~repro.api.base.Mechanism` / :class:`~repro.api.base.Estimator` —
  the client/server lifecycle (``privatize -> ingest/partial_fit ->
  estimate``) with shard ``merge`` and ``to_state``/``from_state``;
* :class:`~repro.api.config.EMConfig` — the single source of truth for
  EM/EMS settings, including the paper's Section 6.1 tolerance rule;
* the registry — ``make_estimator(name, epsilon, d, **kw)`` over every
  registered family, with capability metadata for runners and CLIs.
"""

from repro.api.arithmetic import (
    add_payload,
    scale_payload,
    scale_state,
    subtract_payload,
    subtract_state,
    supports_state_arithmetic,
)
from repro.api.base import (
    Estimator,
    Mechanism,
    mechanism_from_spec,
    mechanism_spec,
)
from repro.api.config import DEFAULT_MAX_ITER, POSTPROCESS_CHOICES, EMConfig
from repro.api.errors import EmptyAggregateError
from repro.api.registry import (
    DISTRIBUTION_METRICS,
    ESTIMATOR_KINDS,
    RANGE_METRICS,
    SCALAR_METRICS,
    EstimatorSpec,
    estimator_from_state,
    get_spec,
    list_estimators,
    make_estimator,
    register_estimator,
)

__all__ = [
    "Mechanism",
    "Estimator",
    "mechanism_spec",
    "mechanism_from_spec",
    "subtract_state",
    "scale_state",
    "add_payload",
    "subtract_payload",
    "scale_payload",
    "supports_state_arithmetic",
    "EMConfig",
    "EmptyAggregateError",
    "DEFAULT_MAX_ITER",
    "POSTPROCESS_CHOICES",
    "EstimatorSpec",
    "register_estimator",
    "get_spec",
    "make_estimator",
    "list_estimators",
    "estimator_from_state",
    "DISTRIBUTION_METRICS",
    "RANGE_METRICS",
    "SCALAR_METRICS",
    "ESTIMATOR_KINDS",
]
