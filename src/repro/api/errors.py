"""Package-level exception types.

Like :mod:`repro.api.config`, this module imports nothing from the rest of
the package so it can sit at the bottom of the dependency graph.
"""

from __future__ import annotations

__all__ = ["EmptyAggregateError"]


class EmptyAggregateError(RuntimeError):
    """``estimate()`` was called before any reports were ingested.

    Every estimator raises this single type at the lifecycle boundary, so
    callers can catch "nothing to reconstruct yet" uniformly instead of
    meeting low-level validation errors (e.g. the EM solver's "counts must
    contain at least one report") from deep inside the compute engine.
    Subclasses ``RuntimeError`` for backwards compatibility with callers
    that caught the previous generic error.
    """
