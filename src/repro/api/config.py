"""Single source of truth for EM/EMS configuration (paper Section 6.1).

Every estimator that reconstructs a distribution with EM or EMS — the wave
estimators, the streaming ``SWServer``, and the EM-backed CFO-binning path —
consumes one :class:`EMConfig`. Centralizing it here fixes a real bug class:
the paper's tolerance rule (``1e-3 * e^eps`` for plain EM, a fixed ``1e-3``
for EMS) used to be re-implemented per call site, once with ``math.exp`` and
once with ``np.exp`` (returning a NumPy scalar), so nominally-identical
estimators disagreed on ``tol`` value *and* type.

This module deliberately imports nothing from the rest of the package at
module scope, so it can sit at the bottom of the dependency graph.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.utils.typing import ArrayLike, FloatArray

if TYPE_CHECKING:
    from repro.core.em import EMResult
    from repro.engine.operators import ChannelOperator
    from repro.engine.solver import BatchEMResult

__all__ = ["DEFAULT_MAX_ITER", "POSTPROCESS_CHOICES", "EMConfig"]

#: EM/EMS iteration cap; generous because each step is O(d * d_out).
DEFAULT_MAX_ITER = 10_000

#: Valid EM post-processing modes.
POSTPROCESS_CHOICES = ("ems", "em")


@dataclass(frozen=True)
class EMConfig:
    """EM/EMS reconstruction settings shared by all EM-backed estimators.

    Parameters
    ----------
    postprocess:
        ``"ems"`` (EM with smoothing, the paper default) or ``"em"``.
    tol:
        Log-likelihood stopping threshold; ``None`` selects the paper default
        for the chosen post-processing (see :meth:`default_tolerance`).
    max_iter:
        Hard iteration cap.
    smoothing_order:
        Binomial smoothing kernel order for EMS; ignored by plain EM.
    backend:
        Compute backend name for the solver products (``"numpy"``,
        ``"threaded"``, ``"threaded:4"``, ``"numba"``); ``None`` (the
        default) defers to the process-wide active backend
        (:func:`repro.engine.backend.backend`). A performance knob only:
        backends are value-equivalent, and the name is validated lazily at
        solve time so configs stay constructible/serializable on machines
        without the optional backend installed.
    """

    postprocess: str = "ems"
    tol: float | None = None
    max_iter: int = DEFAULT_MAX_ITER
    smoothing_order: int = 2
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.postprocess not in POSTPROCESS_CHOICES:
            raise ValueError(
                f"postprocess must be one of {POSTPROCESS_CHOICES}, "
                f"got {self.postprocess!r}"
            )
        if self.tol is not None:
            object.__setattr__(self, "tol", float(self.tol))
            if not self.tol > 0.0:
                raise ValueError(f"tol must be > 0, got {self.tol}")
        object.__setattr__(self, "max_iter", int(self.max_iter))
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}")
        object.__setattr__(self, "smoothing_order", int(self.smoothing_order))
        if self.smoothing_order < 1:
            raise ValueError(
                f"smoothing_order must be >= 1, got {self.smoothing_order}"
            )
        if self.backend is not None:
            object.__setattr__(self, "backend", str(self.backend))

    @staticmethod
    def default_tolerance(postprocess: str, epsilon: float) -> float:
        """Paper Section 6.1: ``1e-3 * e^eps`` for EM, fixed ``1e-3`` for EMS.

        Always returns a plain Python ``float`` (never a NumPy scalar), so
        configs serialize cleanly and compare equal across call sites.
        """
        if postprocess not in POSTPROCESS_CHOICES:
            raise ValueError(
                f"postprocess must be one of {POSTPROCESS_CHOICES}, "
                f"got {postprocess!r}"
            )
        if postprocess == "em":
            return 1e-3 * math.exp(float(epsilon))
        return 1e-3

    def resolve_tolerance(self, epsilon: float) -> float:
        """The effective ``tol``: the explicit one, or the paper default."""
        if self.tol is not None:
            return float(self.tol)
        return self.default_tolerance(self.postprocess, epsilon)

    def kernel(self) -> FloatArray | None:
        """Smoothing kernel for EMS runs; ``None`` for plain EM."""
        if self.postprocess != "ems":
            return None
        from repro.core.smoothing import binomial_kernel

        return binomial_kernel(self.smoothing_order)

    def run(
        self,
        matrix: FloatArray | ChannelOperator,
        counts: ArrayLike,
        epsilon: float,
        *,
        validated: bool = False,
        x0: FloatArray | None = None,
    ) -> EMResult:
        """Run EM/EMS on a report histogram with this configuration.

        ``matrix`` may be a dense ``(d_out, d)`` transition matrix or a
        :class:`repro.engine.operators.ChannelOperator` (the structured
        wave channels run each iteration in ``O(d)``).
        ``validated=True`` skips the column-stochastic channel check — pass
        it when the channel comes from the engine cache, which validates
        once at insert. ``x0`` warm-starts the solve from a previous
        posterior instead of the uniform prior — the fixed point is the
        same (EM is monotone in the likelihood), but a nearby start
        converges in far fewer iterations, which is what makes mid-round
        incremental estimates cheap (:mod:`repro.protocol.server`).
        Returns the :class:`~repro.core.em.EMResult`.
        """
        return self.run_many(
            matrix, np.asarray(counts, dtype=np.float64)[:, None],
            epsilon, validated=validated, x0=x0,
        ).column(0)

    def run_many(
        self,
        matrix: FloatArray | ChannelOperator,
        counts: ArrayLike,
        epsilon: float,
        *,
        validated: bool = False,
        x0: FloatArray | None = None,
    ) -> BatchEMResult:
        """Batched EM/EMS over ``(d_out, B)`` stacked report histograms.

        All ``B`` problems share ``matrix`` — a dense array or a
        :class:`repro.engine.operators.ChannelOperator` — and this
        configuration; the engine solves them as whole-batch products with
        a per-column convergence mask. ``x0`` (a ``(d,)`` start shared by every column,
        or ``(d, B)`` per-column starts) warm-starts the solver; ``None``
        keeps the uniform prior. Returns the
        :class:`~repro.engine.solver.BatchEMResult`.
        """
        from repro.engine.solver import batched_expectation_maximization

        return batched_expectation_maximization(
            matrix,
            counts,
            tol=self.resolve_tolerance(epsilon),
            max_iter=self.max_iter,
            smoothing_kernel=self.kernel(),
            x0=x0,
            validate_matrix=not validated,
            backend=self.backend,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; invert with ``EMConfig(**d)``."""
        return asdict(self)
