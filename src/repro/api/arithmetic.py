"""Sanctioned state arithmetic for window maintenance.

Every built-in estimator keeps *linear* sufficient statistics (count
vectors, oracle sketches, tree-level accumulators), which is what makes
shard ``merge`` exact. The same linearity supports two more operations the
streaming layer needs:

* ``subtract_state(est, other)`` — remove a previously-merged shard's
  contribution (sliding-window eviction: advance = add newest round +
  subtract the evicted one, O(d) instead of re-ingesting W rounds);
* ``scale_state(est, gamma)`` — multiply the whole state by a scalar
  (exponential decay: ``state <- gamma * state + newest``).

Both operate on the JSON state payloads (``_state()``/``_load_state``), so
window math never touches raw feeds and works uniformly across families.
These helpers are the *only* sanctioned way to do window/decay arithmetic
on estimator state — reprolint rule STATE001 flags ad-hoc arithmetic on
raw state dicts outside ``repro.api``/``repro.streaming``.

Exactness: bucketized counts are integer-valued float64, and integer
arithmetic below 2^53 is exact in binary floating point, so a sliding
window maintained by add/subtract is *bit-identical* to re-ingesting the
surviving rounds from scratch. Scaling leaves integer space, so decayed
states are approximate-by-design (and families that coerce counts back to
``int`` on load would truncate — which is why :class:`DecayedState` keeps
its authoritative accumulator in payload space, not estimator space).

Estimators opt in via the ``state_arithmetic`` class attribute (mirrored
as a capability flag in the registry). The default is ``True`` because
linearity is the package-wide contract; an estimator whose state is *not*
closed under subtraction/scaling (e.g. one keeping min/max or a sketch
with nonlinear collisions) must set it to ``False``.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable

from repro.api.base import Estimator

__all__ = [
    "subtract_state",
    "scale_state",
    "add_payload",
    "subtract_payload",
    "scale_payload",
    "supports_state_arithmetic",
]


def supports_state_arithmetic(estimator: Estimator) -> bool:
    """Whether ``estimator`` sanctions window/decay state arithmetic."""
    return bool(getattr(estimator, "state_arithmetic", False))


def _require_arithmetic(estimator: Estimator) -> None:
    if not supports_state_arithmetic(estimator):
        raise TypeError(
            f"{type(estimator).__name__} does not support state arithmetic "
            "(state_arithmetic=False); its state is not closed under "
            "subtraction/scaling"
        )


def _check_compatible(estimator: Estimator, other: Estimator) -> None:
    """Same compatibility contract as :meth:`Estimator.merge`."""
    if type(other) is not type(estimator):
        raise TypeError(
            f"cannot combine {type(other).__name__} state with "
            f"{type(estimator).__name__}"
        )
    if other._params() != estimator._params():
        raise ValueError(
            f"cannot combine {type(estimator).__name__} states with different "
            f"parameters: {estimator._params()} != {other._params()}"
        )


def _zip_payload(state: Any, other: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Elementwise ``op`` over mirrored JSON state payloads.

    Numbers combine via ``op``; lists recurse elementwise (shapes must
    match); dicts recurse by key (key sets must match); any non-numeric
    leaf must be equal on both sides and passes through unchanged.
    """
    if isinstance(state, bool) or isinstance(other, bool):
        # bool is an int subclass; treat flags as structure, not counts.
        if state != other:
            raise ValueError("state payloads disagree on a non-numeric leaf")
        return state
    if isinstance(state, (int, float)) and isinstance(other, (int, float)):
        return op(state, other)
    if isinstance(state, list) and isinstance(other, list):
        if len(state) != len(other):
            raise ValueError(
                f"state payload shape mismatch: {len(state)} != {len(other)}"
            )
        return [_zip_payload(a, b, op) for a, b in zip(state, other)]
    if isinstance(state, dict) and isinstance(other, dict):
        if state.keys() != other.keys():
            raise ValueError(
                f"state payload keys mismatch: {sorted(state)} != {sorted(other)}"
            )
        return {key: _zip_payload(state[key], other[key], op) for key in state}
    if state != other:
        raise ValueError("state payloads disagree on a non-numeric leaf")
    return state


def subtract_payload(state: Any, other: Any) -> Any:
    """``state - other`` over mirrored JSON state payloads."""
    return _zip_payload(state, other, operator.sub)


def add_payload(state: Any, other: Any) -> Any:
    """``state + other`` over mirrored JSON state payloads.

    The payload-space twin of :meth:`Estimator.merge`, for accumulators
    (like :class:`repro.streaming.DecayedState`) that keep their
    authoritative state as a payload rather than an estimator.
    """
    return _zip_payload(state, other, operator.add)


def scale_payload(state: Any, gamma: float) -> Any:
    """``gamma * state`` over a JSON state payload.

    Numbers scale (ints become floats unless the product is integral);
    lists and dicts recurse; non-numeric leaves pass through unchanged.
    """
    if isinstance(state, bool):
        return state
    if isinstance(state, int):
        scaled = state * gamma
        # Keep integer identity when scaling doesn't leave integer space
        # (gamma=1.0, or zero counts), so int-coercing loaders stay exact.
        if math.isfinite(scaled) and scaled == int(scaled):
            return int(scaled)
        return scaled
    if isinstance(state, float):
        return state * gamma
    if isinstance(state, list):
        return [scale_payload(item, gamma) for item in state]
    if isinstance(state, dict):
        return {key: scale_payload(value, gamma) for key, value in state.items()}
    return state


def subtract_state(estimator: Estimator, other: Estimator) -> Estimator:
    """Remove ``other``'s aggregation state from ``estimator`` in place.

    The inverse of :meth:`Estimator.merge`: after
    ``estimator.merge(other)`` followed by ``subtract_state(estimator,
    other)``, the state is bit-identical to never having merged (for
    integer-count states below 2^53). Both estimators must be the same
    type with identical parameters. Returns ``estimator`` for chaining.
    """
    _require_arithmetic(estimator)
    _check_compatible(estimator, other)
    estimator._load_state(subtract_payload(estimator._state(), other._state()))
    return estimator


def scale_state(estimator: Estimator, gamma: float) -> Estimator:
    """Scale ``estimator``'s aggregation state by ``gamma`` in place.

    Used for exponential forgetting (``0 < gamma < 1``). Scaling leaves
    integer-count space, so families whose loaders coerce counts to ``int``
    truncate; prefer keeping a decayed accumulator in payload space (see
    :class:`repro.streaming.DecayedState`) when compounding many ticks.
    Returns ``estimator`` for chaining.
    """
    _require_arithmetic(estimator)
    gamma = float(gamma)
    if not math.isfinite(gamma) or gamma < 0.0:
        raise ValueError(f"gamma must be finite and non-negative, got {gamma}")
    estimator._load_state(scale_payload(estimator._state(), gamma))
    return estimator
