"""Per-figure experiment definitions (paper Section 6).

Every public function regenerates the data behind one figure or table of the
paper and returns :class:`~repro.experiments.runner.ResultRow` lists that
:mod:`repro.experiments.reporting` renders as the textual equivalent of the
figure. Scale knobs (``n``, ``repeats``) default to laptop-friendly values;
pass ``n=None`` and ``repeats=100`` for the paper's full protocol.
"""

from __future__ import annotations

import numpy as np

from repro.core.bandwidth import optimal_bandwidth
from repro.core.general_wave import WAVE_SHAPES
from repro.core.pipeline import SWEstimator, WaveEstimator
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.methods import METHOD_REGISTRY
from repro.experiments.runner import ResultRow, SweepConfig, run_sweep
from repro.metrics.distances import wasserstein_distance
from repro.utils.histograms import histogram_mean, histogram_variance

__all__ = [
    "PAPER_EPSILONS",
    "fig1_dataset_summary",
    "fig2_distribution_distances",
    "fig3_range_queries",
    "fig4_statistics",
    "fig5_wave_shapes",
    "fig6_bandwidth",
    "fig7_granularity",
    "table2_method_metric_matrix",
]

#: The privacy grid used across Figures 2-4 and 7.
PAPER_EPSILONS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5)

#: Figure 5/6 bandwidth grid (paper: b in [0.01, 0.38]).
BANDWIDTH_GRID: tuple[float, ...] = tuple(np.round(np.linspace(0.02, 0.38, 10), 3))

_DISTRIBUTION_METHODS = ("sw-ems", "sw-em", "hh-admm", "cfo-16", "cfo-32", "cfo-64")


def _dataset_cache_key(name: str, n: int | None, seed: int) -> tuple:
    return (name, n, seed)


_DATASET_CACHE: dict[tuple, object] = {}


def _get_dataset(name: str, n: int | None, seed: int):
    """Memoized dataset generation (paper-scale synthesis is the slow part).

    The integer seed is passed through to ``load_dataset``, which salts it
    with the dataset name — mechanism generators seeded with the same
    integer therefore never share the dataset's random stream.
    """
    key = _dataset_cache_key(name, n, seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, n=n, rng=seed)
    return _DATASET_CACHE[key]


def fig1_dataset_summary(
    n: int | None = None, seed: int = 0, datasets: tuple[str, ...] = DATASET_NAMES
) -> list[ResultRow]:
    """Figure 1: normalized frequencies of the evaluation datasets.

    Emits summary rows (mean, variance, peak mass, spikiness = peak/median
    bucket ratio) instead of the raw curves; the raw histograms are available
    from :meth:`repro.datasets.base.Dataset.histogram`.
    """
    rows: list[ResultRow] = []
    for name in datasets:
        ds = _get_dataset(name, n, seed)
        hist = ds.histogram()
        positive = hist[hist > 0]
        stats = {
            "n-users": float(ds.n),
            "bins": float(ds.default_bins),
            "mean": histogram_mean(hist),
            "variance": histogram_variance(hist),
            "peak-mass": float(hist.max()),
            "spikiness": float(hist.max() / np.median(positive)),
        }
        rows.extend(
            ResultRow(
                dataset=name,
                method="dataset",
                epsilon=0.0,
                metric=metric,
                mean=value,
                std=0.0,
                repeats=1,
            )
            for metric, value in stats.items()
        )
    return rows


def _standard_sweep(
    metrics: tuple[str, ...],
    methods: tuple[str, ...],
    datasets: tuple[str, ...],
    epsilons: tuple[float, ...],
    n: int | None,
    repeats: int,
    seed: int,
    n_jobs: int | None = 1,
) -> list[ResultRow]:
    rows: list[ResultRow] = []
    for name in datasets:
        config = SweepConfig(
            dataset=name,
            methods=methods,
            epsilons=epsilons,
            metrics=metrics,
            repeats=repeats,
            n=n,
            seed=seed,
        )
        rows.extend(
            run_sweep(config, dataset=_get_dataset(name, n, seed), n_jobs=n_jobs)
        )
    return rows


def fig2_distribution_distances(
    datasets: tuple[str, ...] = DATASET_NAMES,
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    n: int | None = 100_000,
    repeats: int = 5,
    seed: int = 0,
    n_jobs: int | None = 1,
) -> list[ResultRow]:
    """Figure 2: Wasserstein and KS distance vs epsilon, all datasets."""
    return _standard_sweep(
        ("w1", "ks"), _DISTRIBUTION_METHODS, datasets, epsilons, n, repeats, seed,
        n_jobs,
    )


def fig3_range_queries(
    datasets: tuple[str, ...] = DATASET_NAMES,
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    n: int | None = 100_000,
    repeats: int = 5,
    seed: int = 0,
    n_jobs: int | None = 1,
) -> list[ResultRow]:
    """Figure 3: random range-query MAE (alpha = 0.1 and 0.4)."""
    methods = _DISTRIBUTION_METHODS + ("hh", "haar-hrr")
    return _standard_sweep(
        ("range-0.1", "range-0.4"), methods, datasets, epsilons, n, repeats, seed,
        n_jobs,
    )


def fig4_statistics(
    datasets: tuple[str, ...] = DATASET_NAMES,
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    n: int | None = 100_000,
    repeats: int = 5,
    seed: int = 0,
    n_jobs: int | None = 1,
) -> list[ResultRow]:
    """Figure 4: mean, variance, and quantile MAE (adds SR and PM)."""
    methods = _DISTRIBUTION_METHODS + ("sr", "pm")
    return _standard_sweep(
        ("mean", "variance", "quantile"), methods, datasets, epsilons, n, repeats,
        seed, n_jobs,
    )


def fig5_wave_shapes(
    datasets: tuple[str, ...] = DATASET_NAMES,
    epsilon: float = 1.0,
    b_values: tuple[float, ...] = BANDWIDTH_GRID,
    shapes: tuple[str, ...] = tuple(WAVE_SHAPES),
    n: int | None = 100_000,
    d: int = 256,
    repeats: int = 3,
    seed: int = 0,
) -> list[ResultRow]:
    """Figure 5: Wasserstein distance of GW shapes across bandwidths, eps=1.

    The paper's claim: the square wave dominates every trapezoid/triangle
    shape at every ``b``.
    """
    rows: list[ResultRow] = []
    rng = np.random.default_rng(seed)
    for name in datasets:
        ds = _get_dataset(name, n, seed)
        true_hist = ds.histogram(d)
        for shape in shapes:
            for b in b_values:
                from repro.core.waves import make_wave

                estimator = WaveEstimator(
                    make_wave(shape, epsilon, b=b), d, postprocess="ems"
                )
                values = [
                    wasserstein_distance(
                        true_hist, estimator.fit(ds.values, rng=rng)
                    )
                    for _ in range(repeats)
                ]
                rows.append(
                    ResultRow(
                        dataset=name,
                        method=shape,
                        epsilon=b,  # the x-axis of Figure 5 is b, not eps
                        metric="w1",
                        mean=float(np.mean(values)),
                        std=float(np.std(values)),
                        repeats=repeats,
                    )
                )
    return rows


def fig6_bandwidth(
    dataset: str = "beta",
    epsilons: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0),
    b_values: tuple[float, ...] = BANDWIDTH_GRID,
    n: int | None = 100_000,
    d: int = 256,
    repeats: int = 3,
    seed: int = 0,
) -> list[ResultRow]:
    """Figure 6: W1 vs bandwidth for fixed epsilons; marks b*(eps).

    The claim: the analytic ``b*`` sits at (or adjacent to) the empirical
    minimum of each curve.
    """
    rows: list[ResultRow] = []
    rng = np.random.default_rng(seed)
    ds = _get_dataset(dataset, n, seed)
    true_hist = ds.histogram(d)
    for epsilon in epsilons:
        b_star = optimal_bandwidth(epsilon)
        grid = tuple(sorted(set(b_values) | {round(b_star, 4)}))
        for b in grid:
            estimator = SWEstimator(epsilon, d, b=b, postprocess="ems")
            values = [
                wasserstein_distance(true_hist, estimator.fit(ds.values, rng=rng))
                for _ in range(repeats)
            ]
            rows.append(
                ResultRow(
                    dataset=dataset,
                    method=f"sw-ems@eps={epsilon:g}",
                    epsilon=b,  # x-axis is b
                    metric="w1",
                    mean=float(np.mean(values)),
                    std=float(np.std(values)),
                    repeats=repeats,
                    extra={"b_star": b_star, "is_b_star": abs(b - b_star) < 5e-4},
                )
            )
    return rows


def fig7_granularity(
    datasets: tuple[str, ...] = DATASET_NAMES,
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    granularities: tuple[int, ...] = (256, 512, 1024, 2048),
    n: int | None = 100_000,
    repeats: int = 3,
    seed: int = 0,
) -> list[ResultRow]:
    """Figure 7: W1 of SW+EMS across bucketization granularities.

    The claim: the optimum granularity is dataset-dependent and near
    ``sqrt(N)``; W1 is compared on a common 256-bucket coarsening so numbers
    are comparable across granularities.
    """
    rows: list[ResultRow] = []
    rng = np.random.default_rng(seed)
    base_d = min(granularities)
    for name in datasets:
        ds = _get_dataset(name, n, seed)
        true_base = ds.histogram(base_d)
        for d in granularities:
            if d % base_d != 0:
                raise ValueError("granularities must share a common coarsening")
            factor = d // base_d
            for epsilon in epsilons:
                estimator = SWEstimator(epsilon, d, postprocess="ems")
                values = []
                for _ in range(repeats):
                    est = estimator.fit(ds.values, rng=rng)
                    coarse = est.reshape(base_d, factor).sum(axis=1)
                    values.append(wasserstein_distance(true_base, coarse))
                rows.append(
                    ResultRow(
                        dataset=name,
                        method=f"sw-ems-d{d}",
                        epsilon=epsilon,
                        metric="w1",
                        mean=float(np.mean(values)),
                        std=float(np.std(values)),
                        repeats=repeats,
                    )
                )
    return rows


def table2_method_metric_matrix() -> list[tuple[str, str, bool]]:
    """Table 2: which metric is evaluated for which method.

    Returns ``(method, metric, supported)`` triples straight from the
    registry — the registry *is* the reproduction of Table 2.
    """
    from repro.experiments.methods import DISTRIBUTION_METRICS

    out: list[tuple[str, str, bool]] = []
    for name, spec in METHOD_REGISTRY.items():
        for metric in DISTRIBUTION_METRICS:
            out.append((name, metric, spec.supports(metric)))
    return out
