"""Rendering and persistence of experiment results.

The paper presents log-scale line plots; without a plotting dependency we
regenerate the same content as aligned text tables (one row per method,
one column per epsilon) and CSV files.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.experiments.runner import ResultRow

__all__ = ["format_series_table", "rows_to_csv", "group_rows"]


def group_rows(
    rows: Iterable[ResultRow],
) -> dict[tuple[str, str], dict[tuple[str, float], ResultRow]]:
    """Index rows as ``(dataset, metric) -> (method, epsilon) -> row``."""
    grouped: dict[tuple[str, str], dict[tuple[str, float], ResultRow]] = {}
    for row in rows:
        grouped.setdefault((row.dataset, row.metric), {})[(row.method, row.epsilon)] = row
    return grouped


def format_series_table(
    rows: Sequence[ResultRow],
    title: str | None = None,
    precision: int = 5,
) -> str:
    """Render rows as paper-style series tables.

    One table per (dataset, metric): methods as rows, epsilons as columns,
    cells showing the mean over repeats. This is the textual equivalent of
    one figure panel.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for (dataset, metric), cells in sorted(group_rows(rows).items()):
        epsilons = sorted({eps for (_, eps) in cells})
        methods = sorted({m for (m, _) in cells})
        lines.append(f"\n[{dataset}] metric={metric}")
        header = "method".ljust(16) + "".join(f"eps={e:<10g}" for e in epsilons)
        lines.append(header)
        lines.append("-" * len(header))
        for method in methods:
            parts = [method.ljust(16)]
            for eps in epsilons:
                row = cells.get((method, eps))
                parts.append(
                    f"{row.mean:<14.{precision}f}" if row is not None else " " * 14
                )
            lines.append("".join(parts))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[ResultRow], path: str | Path) -> Path:
    """Write rows to CSV (one line per grid cell x metric) and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["dataset", "method", "epsilon", "metric", "mean", "std", "repeats"]
        )
        for row in rows:
            writer.writerow(
                [
                    row.dataset,
                    row.method,
                    row.epsilon,
                    row.metric,
                    f"{row.mean:.8g}",
                    f"{row.std:.8g}",
                    row.repeats,
                ]
            )
    return path
