"""Experiment harness: method registry, sweep runner, per-figure configs."""

from repro.experiments.methods import (
    DISTRIBUTION_METRICS,
    METHOD_REGISTRY,
    MethodSpec,
    make_method,
)
from repro.experiments.plans import (
    report_errors,
    run_plan_trial,
    table2_plan,
)
from repro.experiments.reporting import format_series_table, group_rows, rows_to_csv
from repro.experiments.runner import ResultRow, SweepConfig, evaluate_histogram, run_sweep

__all__ = [
    "table2_plan",
    "run_plan_trial",
    "report_errors",
    "METHOD_REGISTRY",
    "MethodSpec",
    "make_method",
    "DISTRIBUTION_METRICS",
    "SweepConfig",
    "ResultRow",
    "run_sweep",
    "evaluate_histogram",
    "format_series_table",
    "rows_to_csv",
    "group_rows",
]
