"""Experiment harness: method registry, sweep runner, per-figure configs."""

from repro.experiments.methods import (
    DISTRIBUTION_METRICS,
    METHOD_REGISTRY,
    MethodSpec,
    make_method,
)
from repro.experiments.reporting import format_series_table, group_rows, rows_to_csv
from repro.experiments.runner import ResultRow, SweepConfig, evaluate_histogram, run_sweep

__all__ = [
    "METHOD_REGISTRY",
    "MethodSpec",
    "make_method",
    "DISTRIBUTION_METRICS",
    "SweepConfig",
    "ResultRow",
    "run_sweep",
    "evaluate_histogram",
    "format_series_table",
    "rows_to_csv",
    "group_rows",
]
