"""Table 2 scenarios re-expressed as declarative analysis plans.

The paper's evaluation (Table 2 / Section 6.3) asks one question per metric
column: how well does a mechanism serve the *task* — distribution recovery,
mean, variance, quantiles, range queries? With :mod:`repro.tasks` those are
literally plan tasks, so the comparison becomes: build the plan, run it
through a :class:`~repro.tasks.session.Session`, and score each typed
result against the empirical ground truth of the raw sample.

``table2_plan`` builds the single-attribute plan whose task set mirrors the
Table 2 metric columns, ``run_plan_trial`` executes it (optionally across
merged shards, exercising the deployment path), and ``report_errors``
scores a report on the paper's normalized unit scale so numbers are
comparable with the classic :mod:`repro.experiments.runner` sweeps.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.metrics.distances import wasserstein_distance
from repro.metrics.queries import range_queries
from repro.metrics.statistics import DECILES
from repro.tasks.plan import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Quantiles,
    RangeQueries,
    Variance,
)
from repro.tasks.results import AnalysisReport
from repro.tasks.session import Session
from repro.utils.histograms import bucketize

__all__ = [
    "DEFAULT_RANGE_WINDOWS",
    "table2_plan",
    "run_plan_trial",
    "report_errors",
]

#: Fixed unit-domain windows standing in for the paper's random range
#: queries: the two Table 2 widths (alpha = 0.1 and 0.4) at evenly spread
#: left endpoints, so plan runs are deterministic and comparable.
DEFAULT_RANGE_WINDOWS: tuple[tuple[float, float], ...] = (
    (0.05, 0.15),
    (0.45, 0.55),
    (0.85, 0.95),
    (0.1, 0.5),
    (0.5, 0.9),
)


def table2_plan(
    epsilon: float,
    d: int = 256,
    *,
    attribute: str = "value",
    windows: tuple[tuple[float, float], ...] = DEFAULT_RANGE_WINDOWS,
    quantiles: tuple[float, ...] = DECILES,
) -> AnalysisPlan:
    """The Table 2 evaluation as one plan over a unit-domain attribute."""
    return AnalysisPlan(
        epsilon=epsilon,
        attributes=(AttributeSpec(attribute, low=0.0, high=1.0, d=d),),
        tasks=(
            Distribution(attribute),
            Mean(attribute),
            Variance(attribute),
            Quantiles(attribute, quantiles=quantiles),
            RangeQueries(attribute, windows=windows),
        ),
    )


def run_plan_trial(
    plan: AnalysisPlan,
    data: Mapping[str, np.ndarray],
    *,
    shards: int = 1,
    rng=None,
) -> AnalysisReport:
    """Execute a plan over raw data, optionally through merged shards."""
    return Session.fit_sharded(plan, data, shards=shards, rng=rng).results()


def report_errors(
    report: AnalysisReport,
    plan: AnalysisPlan,
    data: Mapping[str, np.ndarray],
) -> dict[str, float]:
    """Score every task result against the sample's empirical truth.

    Errors are normalized onto the paper's unit scale (positions by the
    attribute span, variances by its square; masses are already unitless),
    keyed by the task's plan key. The distribution task is scored with
    Wasserstein-1 against the empirical histogram at the same granularity.
    """
    errors: dict[str, float] = {}
    for result in report:
        if result.task == "marginals":
            continue
        spec = plan.attribute(result.attribute)
        values = np.asarray(data[result.attribute], dtype=np.float64)
        unit = spec.to_unit(values)
        if result.task == "distribution":
            estimate = np.asarray(result.value, dtype=np.float64)
            truth = np.bincount(
                bucketize(unit, estimate.size), minlength=estimate.size
            ) / unit.size
            errors[result.key] = float(wasserstein_distance(truth, estimate))
        elif result.task == "mean":
            errors[result.key] = abs(result.value - values.mean()) / spec.span
        elif result.task == "variance":
            errors[result.key] = abs(result.value - values.var()) / spec.span**2
        elif result.task == "quantiles":
            betas = result.detail["quantiles"]
            truth = np.quantile(values, betas)
            errors[result.key] = float(
                np.mean(np.abs(np.asarray(result.value) - truth)) / spec.span
            )
        elif result.task == "range_queries":
            masses = []
            for lo, hi in result.detail["windows"]:
                unit_window = ((lo - spec.low) / spec.span, (hi - spec.low) / spec.span)
                masses.append(unit_window)
            truth = range_queries(
                np.bincount(bucketize(unit, 1024), minlength=1024) / unit.size,
                masses,
            )
            errors[result.key] = float(
                np.mean(np.abs(np.asarray(result.value) - truth))
            )
    return errors
