"""Command-line entry point: regenerate any paper figure's data.

Examples
--------
Reduced-scale smoke run of Figure 2 (a few seconds)::

    python -m repro.experiments fig2 --n 50000 --repeats 2

Paper-scale run of Figure 4 on the income dataset only::

    python -m repro.experiments fig4 --datasets income --repeats 100 --paper-n

Outputs a text rendering to stdout and a CSV to ``results/<figure>.csv``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.datasets.registry import DATASET_NAMES
from repro.experiments import figures
from repro.experiments.reporting import format_series_table, rows_to_csv

_FIGURES = {
    "fig1": figures.fig1_dataset_summary,
    "fig2": figures.fig2_distribution_distances,
    "fig3": figures.fig3_range_queries,
    "fig4": figures.fig4_statistics,
    "fig5": figures.fig5_wave_shapes,
    "fig6": figures.fig6_bandwidth,
    "fig7": figures.fig7_granularity,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the data behind a figure of the paper.",
    )
    parser.add_argument("figure", choices=sorted(_FIGURES) + ["table2"])
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        choices=DATASET_NAMES,
        help="subset of datasets (default: the figure's own default)",
    )
    parser.add_argument("--n", type=int, default=100_000, help="users per dataset")
    parser.add_argument(
        "--paper-n",
        action="store_true",
        help="use the paper's full sample sizes (overrides --n)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep trials (-1 = all cores); "
        "results are bit-identical to --jobs 1",
    )
    parser.add_argument("--out", default="results", help="output directory for CSV")
    args = parser.parse_args(argv)

    if args.figure == "table2":
        print(f"{'method':<12}" + "".join(f"{m:<12}" for m in
                                          ("w1", "ks", "range-0.1", "range-0.4", "mean", "variance", "quantile")))
        matrix = figures.table2_method_metric_matrix()
        methods = sorted({m for m, _, _ in matrix})
        lookup = {(m, metric): ok for m, metric, ok in matrix}
        for method in methods:
            cells = "".join(
                f"{'x' if lookup[(method, metric)] else '-':<12}"
                for metric in ("w1", "ks", "range-0.1", "range-0.4", "mean", "variance", "quantile")
            )
            print(f"{method:<12}{cells}")
        return 0

    fn = _FIGURES[args.figure]
    kwargs: dict = {"seed": args.seed}
    if args.figure != "fig1":  # the dataset summary has no trial repeats
        kwargs["repeats"] = args.repeats
    if args.figure in ("fig2", "fig3", "fig4"):  # the sweep-runner figures
        kwargs["n_jobs"] = args.jobs
    kwargs["n"] = None if args.paper_n else args.n
    if args.datasets:
        if args.figure == "fig6":
            kwargs["dataset"] = args.datasets[0]
        else:
            kwargs["datasets"] = tuple(args.datasets)
    start = time.perf_counter()
    rows = fn(**kwargs)
    elapsed = time.perf_counter() - start
    print(format_series_table(rows, title=f"{args.figure} ({elapsed:.1f}s)"))
    csv_path = rows_to_csv(rows, f"{args.out}/{args.figure}.csv")
    print(f"\nCSV written to {csv_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
