"""Experiment runner (paper Section 6.1 protocol).

A *sweep* evaluates a grid of (dataset, method, epsilon) combinations for
``repeats`` independent trials and reports per-metric means and standard
deviations. The paper repeats each experiment 100 times; the pytest
benchmarks default to fewer repeats and smaller ``n`` but use the exact same
runner, so full paper-scale runs are one argument away.

Fairness details mirrored from the paper:

* the dataset (and hence the true histogram) is fixed across trials — only
  mechanism randomness varies;
* every method inside one trial answers the *same* random range-query set;
* each (method, epsilon, repeat) trial gets an independent child generator
  derived from the sweep seed, so methods never share randomness.

Execution is trial-parallel: every trial's seed is drawn up front from the
sweep's ``SeedSequence``-derived generator in a fixed grid order, so a trial
is a pure function of ``(seed, shared dataset, shared queries)`` and the
``n_jobs`` multiprocessing path produces bit-identical results to the
serial path — workers just execute the same task list out of order. The
transition matrices each worker needs are rebuilt once per process and then
served from the :mod:`repro.engine` cache across all of its trials.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import make_estimator
from repro.datasets.registry import load_dataset
from repro.experiments.methods import METHOD_REGISTRY
from repro.mean.variance import estimate_mean_unit, estimate_variance_unit
from repro.metrics.distances import ks_distance, wasserstein_distance
from repro.metrics.queries import range_query
from repro.metrics.statistics import quantile_error
from repro.utils.histograms import histogram_mean, histogram_variance

__all__ = ["SweepConfig", "ResultRow", "run_sweep", "evaluate_histogram"]

#: Number of random range queries per trial (paper uses random queries with
#: fixed range sizes; 100 keeps the query-sampling noise negligible).
N_RANGE_QUERIES = 100


@dataclass(frozen=True)
class SweepConfig:
    """Grid definition for one experiment sweep."""

    dataset: str
    methods: tuple[str, ...]
    epsilons: tuple[float, ...]
    metrics: tuple[str, ...]
    repeats: int = 10
    n: int | None = None  # None -> the paper's sample size
    d: int | None = None  # None -> the dataset's default granularity
    seed: int = 0

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        for m in self.methods:
            if m not in METHOD_REGISTRY:
                raise ValueError(f"unknown method {m!r}")


@dataclass(frozen=True)
class ResultRow:
    """Aggregated result of one (method, epsilon, metric) cell."""

    dataset: str
    method: str
    epsilon: float
    metric: str
    mean: float
    std: float
    repeats: int
    extra: dict = field(default_factory=dict)


def _range_mae(true, est, lefts, alpha) -> float:
    errs = [
        abs(range_query(true, left, alpha) - range_query(est, left, alpha))
        for left in lefts
    ]
    return float(np.mean(errs))


def evaluate_histogram(
    true_hist: np.ndarray,
    est_hist: np.ndarray,
    metrics: tuple[str, ...],
    query_lefts: dict[float, np.ndarray],
) -> dict[str, float]:
    """Compute the requested metrics between true and estimated histograms."""
    out: dict[str, float] = {}
    for metric in metrics:
        if metric == "w1":
            out[metric] = wasserstein_distance(true_hist, est_hist)
        elif metric == "ks":
            out[metric] = ks_distance(true_hist, est_hist)
        elif metric.startswith("range-"):
            alpha = float(metric.split("-", 1)[1])
            out[metric] = _range_mae(true_hist, est_hist, query_lefts[alpha], alpha)
        elif metric == "mean":
            out[metric] = abs(histogram_mean(true_hist) - histogram_mean(est_hist))
        elif metric == "variance":
            out[metric] = abs(
                histogram_variance(true_hist) - histogram_variance(est_hist)
            )
        elif metric == "quantile":
            out[metric] = quantile_error(true_hist, est_hist)
        else:
            raise ValueError(f"unknown metric {metric!r}")
    return out


def _scalar_trial(
    spec_name: str,
    epsilon: float,
    values: np.ndarray,
    metrics: tuple[str, ...],
    true_mean: float,
    true_variance: float,
    rng: np.random.Generator,
) -> dict[str, float]:
    """SR/PM trial: mean and/or variance straight from reports."""
    out: dict[str, float] = {}
    if "variance" in metrics:
        mean_est, var_est = estimate_variance_unit(values, epsilon, spec_name, rng=rng)
        out["variance"] = abs(true_variance - var_est)
        if "mean" in metrics:
            # The two-phase protocol already produced a mean estimate from
            # half the users; a dedicated full-population run is fairer for
            # the mean metric, matching the paper's separate mean experiment.
            out["mean"] = abs(
                true_mean - estimate_mean_unit(values, epsilon, spec_name, rng=rng)
            )
    elif "mean" in metrics:
        out["mean"] = abs(
            true_mean - estimate_mean_unit(values, epsilon, spec_name, rng=rng)
        )
    return out


@dataclass(frozen=True)
class _TrialTask:
    """One fully-seeded grid-cell repetition (pure given the shared context)."""

    method: str
    epsilon: float
    repeat: int
    seed: int
    scalar: bool
    wanted: tuple[str, ...]


@dataclass(frozen=True)
class _TrialContext:
    """Read-only state every trial shares (shipped once per worker process)."""

    d: int
    values: np.ndarray
    true_hist: np.ndarray
    true_mean: float
    true_variance: float
    queries_per_repeat: tuple[dict[float, np.ndarray], ...]


#: Worker-process trial context, set once by the pool initializer. Serial
#: runs pass the context explicitly instead, so concurrent ``run_sweep``
#: calls in one process never share (or retain) state through this global.
_CONTEXT: _TrialContext | None = None


def _init_worker(context: _TrialContext) -> None:
    global _CONTEXT
    _CONTEXT = context


def _run_pool_trial(task: _TrialTask) -> dict[str, float]:
    """Pool entry point: execute one trial against the worker's context."""
    return _run_trial(_CONTEXT, task)


def _run_trial(ctx: _TrialContext, task: _TrialTask) -> dict[str, float]:
    """Execute one trial: pure given ``(ctx, task.seed)``."""
    rng = np.random.default_rng(task.seed)
    if task.scalar:
        return _scalar_trial(
            task.method,
            task.epsilon,
            ctx.values,
            task.wanted,
            ctx.true_mean,
            ctx.true_variance,
            rng,
        )
    estimator = make_estimator(task.method, task.epsilon, ctx.d)
    est = estimator.fit(ctx.values, rng=rng)
    return evaluate_histogram(
        ctx.true_hist, est, task.wanted, ctx.queries_per_repeat[task.repeat]
    )


def _trial_tasks(
    config: SweepConfig, trial_seed: np.random.SeedSequence
) -> list[_TrialTask]:
    """Enumerate the grid with per-trial seeds in the canonical order.

    Seeds are drawn method -> epsilon -> repeat from one generator derived
    from the sweep seed, so the task list (and therefore every trial's
    randomness) is identical no matter how the tasks are later scheduled.
    """
    trial_rng = np.random.default_rng(trial_seed)
    tasks: list[_TrialTask] = []
    for method_name in config.methods:
        spec = METHOD_REGISTRY[method_name]
        wanted = tuple(m for m in config.metrics if spec.supports(m))
        if not wanted:
            continue
        for epsilon in config.epsilons:
            for repeat in range(config.repeats):
                tasks.append(
                    _TrialTask(
                        method=method_name,
                        epsilon=epsilon,
                        repeat=repeat,
                        seed=int(trial_rng.integers(0, 2**63 - 1)),
                        scalar=spec.kind == "scalar",
                        wanted=wanted,
                    )
                )
    return tasks


def _resolve_jobs(n_jobs: int | None) -> int:
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def run_sweep(
    config: SweepConfig, dataset=None, *, n_jobs: int | None = 1
) -> list[ResultRow]:
    """Run the sweep and return one aggregated row per grid cell x metric.

    ``dataset`` may be a pre-built :class:`~repro.datasets.base.Dataset` to
    share generation cost across sweeps; otherwise it is generated from
    ``config.dataset`` / ``config.n`` with a seed derived from the sweep
    seed.

    ``n_jobs`` runs trials in a process pool (``-1`` = all cores). Every
    trial's generator is seeded up front from the sweep's ``SeedSequence``
    in a fixed order, so parallel results are bit-identical to a serial run
    with the same config.
    """
    jobs = _resolve_jobs(n_jobs)
    master = np.random.SeedSequence(config.seed)
    data_seed, trial_seed, query_seed = master.spawn(3)
    if dataset is None:
        dataset = load_dataset(
            config.dataset, n=config.n, rng=np.random.default_rng(data_seed)
        )
    d = dataset.default_bins if config.d is None else config.d
    true_hist = dataset.histogram(d)

    # One query set per repeat, shared by every method in that repeat.
    alphas = sorted(
        {float(m.split("-", 1)[1]) for m in config.metrics if m.startswith("range-")}
    )
    query_rng = np.random.default_rng(query_seed)
    queries_per_repeat = tuple(
        {a: query_rng.uniform(0.0, 1.0 - a, size=N_RANGE_QUERIES) for a in alphas}
        for _ in range(config.repeats)
    )

    context = _TrialContext(
        d=d,
        values=dataset.values,
        true_hist=true_hist,
        true_mean=histogram_mean(true_hist),
        true_variance=histogram_variance(true_hist),
        queries_per_repeat=queries_per_repeat,
    )
    tasks = _trial_tasks(config, trial_seed)

    if jobs == 1 or len(tasks) <= 1:
        trials = [_run_trial(context, task) for task in tasks]
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=_init_worker,
            initargs=(context,),
        ) as pool:
            trials = list(pool.map(_run_pool_trial, tasks, chunksize=1))

    samples: dict[tuple[str, float, str], list[float]] = {}
    for task, trial in zip(tasks, trials, strict=True):
        for metric, value in trial.items():
            samples.setdefault((task.method, task.epsilon, metric), []).append(value)

    rows = [
        ResultRow(
            dataset=dataset.name,
            method=method,
            epsilon=epsilon,
            metric=metric,
            mean=float(np.mean(vals)),
            std=float(np.std(vals)),
            repeats=len(vals),
        )
        for (method, epsilon, metric), vals in samples.items()
    ]
    rows.sort(key=lambda r: (r.metric, r.method, r.epsilon))
    return rows
