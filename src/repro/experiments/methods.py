"""Method registry for the evaluation (paper Table 2).

Each entry describes one competitor: how to build it, what it returns, and
which metrics the paper evaluates it on. The registry is the single source
of truth — the runner consults it to know what to compute, and the Table 2
benchmark renders it directly.

Method kinds:

* ``distribution`` — ``fit`` returns a valid probability histogram; every
  metric applies.
* ``leaf-signed`` — ``fit`` returns unbiased but possibly-negative leaf
  estimates (HH, HaarHRR); only range queries apply.
* ``scalar`` — SR/PM; only mean and variance apply, computed directly from
  reports rather than from a reconstructed histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import SWEstimator
from repro.hierarchy.admm import HHADMM
from repro.hierarchy.haar import HaarHRR
from repro.hierarchy.hh import HierarchicalHistogram

__all__ = ["MethodSpec", "METHOD_REGISTRY", "make_method", "DISTRIBUTION_METRICS"]

#: Metrics computable from a reconstructed probability distribution.
DISTRIBUTION_METRICS: tuple[str, ...] = (
    "w1",
    "ks",
    "range-0.1",
    "range-0.4",
    "mean",
    "variance",
    "quantile",
)

_RANGE_ONLY: tuple[str, ...] = ("range-0.1", "range-0.4")
_SCALAR_ONLY: tuple[str, ...] = ("mean", "variance")


@dataclass(frozen=True)
class MethodSpec:
    """Registry entry for one estimation method."""

    name: str
    kind: str
    factory: Callable = field(repr=False)
    supported_metrics: tuple[str, ...]
    description: str = ""

    def supports(self, metric: str) -> bool:
        return metric in self.supported_metrics


def _sw(postprocess: str):
    def factory(epsilon: float, d: int):
        return SWEstimator(epsilon, d, postprocess=postprocess)

    return factory


def _cfo(bins: int):
    def factory(epsilon: float, d: int):
        return CFOBinning(epsilon, d, bins=bins)

    return factory


METHOD_REGISTRY: dict[str, MethodSpec] = {
    "sw-ems": MethodSpec(
        name="sw-ems",
        kind="distribution",
        factory=_sw("ems"),
        supported_metrics=DISTRIBUTION_METRICS,
        description="Square Wave + EM with smoothing (this paper)",
    ),
    "sw-em": MethodSpec(
        name="sw-em",
        kind="distribution",
        factory=_sw("em"),
        supported_metrics=DISTRIBUTION_METRICS,
        description="Square Wave + plain EM (this paper)",
    ),
    "hh-admm": MethodSpec(
        name="hh-admm",
        kind="distribution",
        factory=lambda epsilon, d: HHADMM(epsilon, d, branching=4),
        supported_metrics=DISTRIBUTION_METRICS,
        description="Hierarchical histogram + ADMM post-processing (this paper)",
    ),
    "cfo-16": MethodSpec(
        name="cfo-16",
        kind="distribution",
        factory=_cfo(16),
        supported_metrics=DISTRIBUTION_METRICS,
        description="CFO with 16 bins + Norm-Sub",
    ),
    "cfo-32": MethodSpec(
        name="cfo-32",
        kind="distribution",
        factory=_cfo(32),
        supported_metrics=DISTRIBUTION_METRICS,
        description="CFO with 32 bins + Norm-Sub",
    ),
    "cfo-64": MethodSpec(
        name="cfo-64",
        kind="distribution",
        factory=_cfo(64),
        supported_metrics=DISTRIBUTION_METRICS,
        description="CFO with 64 bins + Norm-Sub",
    ),
    "hh": MethodSpec(
        name="hh",
        kind="leaf-signed",
        factory=lambda epsilon, d: HierarchicalHistogram(epsilon, d, branching=4),
        supported_metrics=_RANGE_ONLY,
        description="Hierarchical histogram, constrained inference only [18]",
    ),
    "haar-hrr": MethodSpec(
        name="haar-hrr",
        kind="leaf-signed",
        factory=lambda epsilon, d: HaarHRR(epsilon, d),
        supported_metrics=_RANGE_ONLY,
        description="Discrete Haar transform + Hadamard randomized response [18]",
    ),
    "sr": MethodSpec(
        name="sr",
        kind="scalar",
        factory=lambda epsilon, d: ("sr", epsilon),
        supported_metrics=_SCALAR_ONLY,
        description="Stochastic Rounding mean/variance estimator [9]",
    ),
    "pm": MethodSpec(
        name="pm",
        kind="scalar",
        factory=lambda epsilon, d: ("pm", epsilon),
        supported_metrics=_SCALAR_ONLY,
        description="Piecewise Mechanism mean/variance estimator [30]",
    ),
}


def make_method(name: str, epsilon: float, d: int):
    """Instantiate a registered method for one (epsilon, granularity)."""
    try:
        spec = METHOD_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {sorted(METHOD_REGISTRY)}"
        ) from None
    return spec.factory(epsilon, d)
