"""Method table for the evaluation (paper Table 2) — a registry view.

This module used to carry its own dispatch table; it is now a thin,
backwards-compatible view over the central registry
(:mod:`repro.api.registry`). Entries tagged ``"table2"`` are exactly the
paper's competitors, and the specs here *are* the registry specs — there is
no independent table to drift.

Method kinds:

* ``distribution`` — ``fit`` returns a valid probability histogram; every
  metric applies.
* ``leaf-signed`` — ``fit`` returns unbiased but possibly-negative leaf
  estimates (HH, HaarHRR); only range queries apply.
* ``scalar`` — SR/PM; only mean and variance apply. ``fit`` estimates the
  mean; the paper's two-phase variance protocol lives in
  :mod:`repro.mean.variance` and is orchestrated by the runner.
"""

from __future__ import annotations

import warnings

from repro.api.registry import (
    DISTRIBUTION_METRICS,
    EstimatorSpec,
    get_spec,
    list_estimators,
    make_estimator,
)

__all__ = ["MethodSpec", "METHOD_REGISTRY", "make_method", "DISTRIBUTION_METRICS"]

#: Back-compat alias — method specs are registry estimator specs.
MethodSpec = EstimatorSpec

#: The paper's Table 2 row order (presentation only; specs live in the
#: registry). Rendering code iterates METHOD_REGISTRY and must match it.
_TABLE2_ORDER: tuple[str, ...] = (
    "sw-ems",
    "sw-em",
    "hh-admm",
    "cfo-16",
    "cfo-32",
    "cfo-64",
    "hh",
    "haar-hrr",
    "sr",
    "pm",
)

#: The paper's Table 2 evaluation matrix, keyed by method name.
METHOD_REGISTRY: dict[str, EstimatorSpec] = {
    name: get_spec(name) for name in _TABLE2_ORDER
}

if set(METHOD_REGISTRY) != {spec.name for spec in list_estimators(tag="table2")}:
    raise RuntimeError(
        "Table 2 order list out of sync with the registry's 'table2' tags"
    )


def make_method(name: str, epsilon: float, d: int):
    """Instantiate a registered method for one (epsilon, granularity).

    .. deprecated::
        Thin shim over :func:`repro.api.registry.make_estimator`, kept for
        the original ``experiments.methods`` surface; new code should call
        ``make_estimator`` directly (which also accepts non-Table-2 names).
    """
    warnings.warn(
        "make_method is deprecated; use repro.api.make_estimator",
        DeprecationWarning,
        stacklevel=2,
    )
    if name not in METHOD_REGISTRY:
        raise ValueError(
            f"unknown method {name!r}; available: {sorted(METHOD_REGISTRY)}"
        )
    return make_estimator(name, epsilon, d)
