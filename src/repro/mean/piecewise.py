"""The Piecewise Mechanism for mean estimation (paper Section 2.2, [30]).

Input domain ``[-1, 1]``, output domain ``[-s, s]`` with
``s = (e^{eps/2} + 1) / (e^{eps/2} - 1)``. Each input ``v`` has a
high-probability window ``[l(v), r(v)]`` of fixed width ``2/(e^{eps/2}-1)``
whose density is ``e^eps`` times the outside density; the window center
``e^{eps/2} v / (e^{eps/2}-1)`` moves faster than ``v``, which is what makes
the raw report unbiased for the mean without any debiasing step.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_epsilon

__all__ = ["PiecewiseMechanism"]


class PiecewiseMechanism:
    """Piecewise Mechanism mean estimator on the canonical domain ``[-1, 1]``."""

    name = "pm"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        half = math.exp(self.epsilon / 2.0)
        self.s = (half + 1.0) / (half - 1.0)
        #: Probability of reporting inside the high window.
        self.window_mass = half / (half + 1.0)
        #: Half of the high-window width.
        self.window_half_width = 1.0 / (half - 1.0)
        self._half = half

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("values must be a non-empty 1-d array")
        if not np.isfinite(arr).all():
            raise ValueError("values must be finite")
        if arr.min() < -1.0 or arr.max() > 1.0:
            raise ValueError("values must lie in [-1, 1]")
        return arr

    def window(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """High-probability window ``[l(v), r(v)]`` for each input."""
        arr = np.asarray(v, dtype=np.float64)
        left = (self._half * arr - 1.0) / (self._half - 1.0)
        right = (self._half * arr + 1.0) / (self._half - 1.0)
        return left, right

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Randomize each value into an unbiased float report in ``[-s, s]``.

        With probability ``e^{eps/2}/(e^{eps/2}+1)`` the report is uniform on
        the window; otherwise uniform on the two outside pieces, landing on
        the left piece with probability proportional to its length.
        """
        vals = self._check_values(values)
        gen = as_generator(rng)
        n = vals.size
        left, right = self.window(vals)
        in_window = gen.random(n) < self.window_mass
        u = gen.random(n)
        window_draw = left + u * (right - left)
        left_len = left + self.s  # length of [-s, l(v)]
        right_len = self.s - right  # length of [r(v), s]
        total = left_len + right_len
        pos = u * total
        outside_draw = np.where(pos < left_len, -self.s + pos, right + (pos - left_len))
        return np.where(in_window, window_draw, outside_draw)

    def estimate_mean(self, reports: np.ndarray) -> float:
        """Mean estimate — PM reports are already unbiased."""
        arr = np.asarray(reports, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("reports must be a non-empty 1-d array")
        if np.abs(arr).max() > self.s + 1e-9:
            raise ValueError("reports outside the PM output domain")
        return float(arr.mean())

    def mean_from_values(self, values: np.ndarray, rng=None) -> float:
        """Simulate one collection round and estimate the mean."""
        return self.estimate_mean(self.privatize(values, rng=rng))

    def pdf(self, v: float, outputs: np.ndarray) -> np.ndarray:
        """Report density for input ``v`` (used by the LDP audit)."""
        if not -1.0 <= v <= 1.0:
            raise ValueError(f"v must be in [-1, 1], got {v}")
        out = np.asarray(outputs, dtype=np.float64)
        left, right = self.window(np.array([v]))
        high = self._half / 2.0 * (self._half - 1.0) / (self._half + 1.0)
        low = (self._half - 1.0) / (2.0 * self._half * (self._half + 1.0))
        inside_domain = np.abs(out) <= self.s
        in_window = (out >= left[0]) & (out <= right[0])
        return np.where(inside_domain, np.where(in_window, high, low), 0.0)

    @property
    def output_low(self) -> float:
        return -self.s

    @property
    def output_high(self) -> float:
        return self.s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseMechanism(epsilon={self.epsilon}, s={self.s:.4f})"
