"""Mean/variance estimation baselines: SR and PM (paper Sections 2.2, 6.3)."""

from repro.mean.piecewise import PiecewiseMechanism
from repro.mean.scalar import ScalarMeanEstimator
from repro.mean.stochastic_rounding import StochasticRounding
from repro.mean.variance import (
    SCALAR_REGIME_THRESHOLD,
    estimate_mean_unit,
    estimate_variance_unit,
    make_mechanism,
    recommended_scalar_mechanism,
)

__all__ = [
    "StochasticRounding",
    "PiecewiseMechanism",
    "ScalarMeanEstimator",
    "make_mechanism",
    "recommended_scalar_mechanism",
    "SCALAR_REGIME_THRESHOLD",
    "estimate_mean_unit",
    "estimate_variance_unit",
]
