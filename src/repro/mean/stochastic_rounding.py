"""Stochastic Rounding / Duchi et al.'s mean estimator (paper Section 2.2).

Every user reports one of the two extreme values ``{-1, +1}`` with
probabilities tilted toward their input: with
``p = e^eps / (e^eps + 1)`` and ``q = 1 - p``, input ``v in [-1, 1]`` maps to

    -1  with probability  q + (p - q)(1 - v)/2,
    +1  with probability  q + (p - q)(1 + v)/2.

The debiased report ``v~ = v' / (p - q)`` is unbiased for ``v``, so the
sample mean of debiased reports estimates the population mean.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_epsilon

__all__ = ["StochasticRounding"]


class StochasticRounding:
    """Stochastic Rounding mean estimator on the canonical domain ``[-1, 1]``."""

    name = "sr"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (e_eps + 1.0)
        self.q = 1.0 / (e_eps + 1.0)

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("values must be a non-empty 1-d array")
        if not np.isfinite(arr).all():
            raise ValueError("values must be finite")
        if arr.min() < -1.0 or arr.max() > 1.0:
            raise ValueError("values must lie in [-1, 1]")
        return arr

    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Randomize each value into an extreme report in ``{-1, +1}``."""
        vals = self._check_values(values)
        gen = as_generator(rng)
        prob_plus = self.q + (self.p - self.q) * (1.0 + vals) / 2.0
        draws = gen.random(vals.size)
        return np.where(draws < prob_plus, 1.0, -1.0)

    def debias(self, reports: np.ndarray) -> np.ndarray:
        """Per-report unbiased values ``v~ = v' / (p - q)``."""
        arr = np.asarray(reports, dtype=np.float64)
        if not np.isin(arr, (-1.0, 1.0)).all():
            raise ValueError("SR reports must be -1 or +1")
        return arr / (self.p - self.q)

    def estimate_mean(self, reports: np.ndarray) -> float:
        """Unbiased mean estimate from raw reports."""
        return float(self.debias(reports).mean())

    def mean_from_values(self, values: np.ndarray, rng=None) -> float:
        """Simulate one collection round and estimate the mean."""
        return self.estimate_mean(self.privatize(values, rng=rng))

    @property
    def report_bound(self) -> float:
        """Magnitude of a debiased report: ``1 / (p - q)``."""
        return 1.0 / (self.p - self.q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StochasticRounding(epsilon={self.epsilon})"
