"""Mean and variance protocols on the unit domain (paper Section 6.3).

SR and PM natively work on ``[-1, 1]``; this module adapts them to the
package's canonical ``[0, 1]`` domain and implements the paper's two-phase
variance protocol: half the users spend their budget estimating the mean,
the estimate is broadcast, and the other half report their squared deviation
``(v_i - mu~)^2`` through the same mechanism. The average of those squared
deviations estimates the variance (up to the ``(mu - mu~)^2`` gap, which the
paper also ignores).
"""

from __future__ import annotations

import numpy as np

from repro.mean.piecewise import PiecewiseMechanism
from repro.mean.stochastic_rounding import StochasticRounding
from repro.utils.rng import as_generator
from repro.utils.validation import check_epsilon, check_unit_values

__all__ = [
    "make_mechanism",
    "recommended_scalar_mechanism",
    "estimate_mean_unit",
    "estimate_variance_unit",
    "SCALAR_REGIME_THRESHOLD",
]

_MECHANISMS = {"sr": StochasticRounding, "pm": PiecewiseMechanism}

#: Regime boundary between SR and PM for mean-only estimation. PM's
#: worst-case variance drops below SR's as epsilon grows; 0.61 is the
#: switch point the PM paper's hybrid mechanism uses (Wang et al. [30],
#: Section 3.3), and the regime-dependent choice Kairouz et al. advocate
#: for discrete mechanisms carries over here.
SCALAR_REGIME_THRESHOLD = 0.61


def recommended_scalar_mechanism(epsilon: float) -> str:
    """``"sr"`` in the small-epsilon regime, ``"pm"`` otherwise.

    The paper's Section 8 guidance for mean-*only* workloads: use a
    task-specific scalar mechanism rather than a full distribution
    estimate, picking SR below :data:`SCALAR_REGIME_THRESHOLD` and PM above.
    """
    return "sr" if check_epsilon(epsilon) <= SCALAR_REGIME_THRESHOLD else "pm"


def make_mechanism(name: str, epsilon: float):
    """Instantiate ``"sr"`` or ``"pm"`` on ``[-1, 1]``."""
    try:
        cls = _MECHANISMS[name]
    except KeyError:
        raise ValueError(f"mechanism must be one of {sorted(_MECHANISMS)}, got {name!r}") from None
    return cls(epsilon)


def _to_signed(values01: np.ndarray) -> np.ndarray:
    return 2.0 * values01 - 1.0


def estimate_mean_unit(
    values: np.ndarray, epsilon: float, mechanism: str = "pm", rng=None
) -> float:
    """Estimate the mean of values in ``[0, 1]`` with SR or PM.

    The mechanism runs on the mapped domain ``[-1, 1]``; the result is mapped
    back and clipped to ``[0, 1]`` (the clipping only matters in the extreme
    noise regime).
    """
    vals = check_unit_values(values)
    check_epsilon(epsilon)
    mech = make_mechanism(mechanism, epsilon)
    signed_mean = mech.mean_from_values(_to_signed(vals), rng=rng)
    return float(np.clip((signed_mean + 1.0) / 2.0, 0.0, 1.0))


def estimate_variance_unit(
    values: np.ndarray,
    epsilon: float,
    mechanism: str = "pm",
    rng=None,
    mean_fraction: float = 0.5,
) -> tuple[float, float]:
    """Two-phase mean + variance estimation for values in ``[0, 1]``.

    Returns ``(mean_estimate, variance_estimate)``, both on the unit scale.

    Phase 1 uses a ``mean_fraction`` share of users for the mean. Phase 2
    users report ``(v_i - mu~)^2``: on the signed domain the squared
    deviation lies in ``[0, 4]``, which is affinely mapped onto ``[-1, 1]``
    before randomization and inverted afterwards. Unit-scale variance is the
    signed-scale value divided by 4.
    """
    vals = check_unit_values(values)
    check_epsilon(epsilon)
    if not 0.0 < mean_fraction < 1.0:
        raise ValueError(f"mean_fraction must be in (0, 1), got {mean_fraction}")
    if vals.size < 2:
        raise ValueError("need at least 2 users to split between phases")
    gen = as_generator(rng)
    mech = make_mechanism(mechanism, epsilon)

    order = gen.permutation(vals.size)
    n_mean = max(1, int(round(vals.size * mean_fraction)))
    n_mean = min(n_mean, vals.size - 1)
    mean_group = _to_signed(vals[order[:n_mean]])
    var_group = _to_signed(vals[order[n_mean:]])

    signed_mean = float(np.clip(mech.mean_from_values(mean_group, rng=gen), -1.0, 1.0))

    squared_dev = (var_group - signed_mean) ** 2  # in [0, 4]
    mapped = np.clip(squared_dev / 2.0 - 1.0, -1.0, 1.0)
    signed_sq_mean = mech.mean_from_values(mapped, rng=gen)
    signed_variance = float(np.clip(2.0 * (signed_sq_mean + 1.0), 0.0, 4.0))

    mean01 = float(np.clip((signed_mean + 1.0) / 2.0, 0.0, 1.0))
    variance01 = signed_variance / 4.0
    return mean01, variance01
