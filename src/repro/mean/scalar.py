"""SR/PM as streaming scalar estimators (registry kind ``"scalar"``).

:class:`ScalarMeanEstimator` adapts the native ``[-1, 1]`` mean mechanisms
(:class:`~repro.mean.stochastic_rounding.StochasticRounding` and
:class:`~repro.mean.piecewise.PiecewiseMechanism`) to the package's
canonical unit domain and to the :class:`repro.api.Estimator` lifecycle.
The aggregation state is the (count, sum of per-report unbiased values)
pair, so shards stream, ``merge`` exactly, and serialize — ``fit`` matches
:func:`repro.mean.variance.estimate_mean_unit` bit for bit.

The paper's two-phase variance protocol stays in
:mod:`repro.mean.variance`; it needs a broadcast between phases and is
orchestrated by the experiment runner rather than this single-statistic
estimator.
"""

from __future__ import annotations

import numpy as np

from repro.api.base import Estimator
from repro.api.errors import EmptyAggregateError
from repro.mean.variance import make_mechanism
from repro.utils.validation import check_unit_values

__all__ = ["ScalarMeanEstimator"]


class ScalarMeanEstimator(Estimator):
    """Streaming LDP mean estimator over the unit domain.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    mechanism:
        ``"sr"`` (Stochastic Rounding) or ``"pm"`` (Piecewise Mechanism).
    d:
        Accepted (and ignored) so the registry's uniform
        ``factory(epsilon, d)`` signature applies; scalar estimators have no
        histogram granularity.
    """

    kind = "scalar"
    wire_codec = "float"

    def __init__(
        self, epsilon: float, mechanism: str = "pm", d: int | None = None
    ) -> None:
        self.mech = make_mechanism(mechanism, epsilon)
        self.mechanism_name = str(mechanism)
        self.epsilon = self.mech.epsilon
        self.reset()

    @property
    def name(self) -> str:
        return self.mechanism_name

    # -- lifecycle ---------------------------------------------------------
    def privatize(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Client-side: map unit values onto ``[-1, 1]`` and randomize."""
        vals = check_unit_values(values)
        return self.mech.privatize(2.0 * vals - 1.0, rng=rng)

    def ingest(self, reports: np.ndarray) -> None:
        """Fold a batch of reports into the running debiased sum."""
        arr = np.asarray(reports, dtype=np.float64)
        if arr.size == 0:  # empty shard: no-op
            return
        # estimate_mean validates the batch and debiases where the mechanism
        # needs it (SR), so mean * n is the exact per-report unbiased sum.
        self._sum += float(self.mech.estimate_mean(arr)) * arr.size
        self._n += int(arr.size)

    def estimate(self) -> float:
        """Unit-scale mean estimate over everything ingested so far."""
        if self._n == 0:
            raise EmptyAggregateError("no reports ingested yet")
        signed_mean = self._sum / self._n
        return float(np.clip((signed_mean + 1.0) / 2.0, 0.0, 1.0))

    def reset(self) -> None:
        self._n = 0
        self._sum = 0.0

    @property
    def n_reports(self) -> int:
        """Reports ingested into the current aggregation state."""
        return self._n

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "ScalarMeanEstimator") -> None:
        self._n += other._n
        self._sum += other._sum

    def _params(self) -> dict:
        return {"epsilon": self.epsilon, "mechanism": self.mechanism_name}

    def _state(self) -> dict:
        return {"n": int(self._n), "sum": float(self._sum)}

    def _load_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._sum = float(state["sum"])
