"""Dataset container shared by the generators and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.histograms import bucketize, normalize_counts
from repro.utils.validation import check_domain_size, check_unit_values

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A named collection of private values normalized to ``[0, 1]``.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"beta"`` or ``"income"``.
    values:
        1-d float array of user values in ``[0, 1]``.
    default_bins:
        Histogram granularity the paper uses for this dataset (256 for
        Beta(5,2), 1024 for the three real-data substitutes).
    description:
        One-line provenance note, including what real data the generator
        substitutes for.
    """

    name: str
    values: np.ndarray
    default_bins: int
    description: str = ""
    _histogram_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", check_unit_values(self.values, name="values"))
        check_domain_size(self.default_bins, name="default_bins")

    @property
    def n(self) -> int:
        """Number of users."""
        return int(self.values.size)

    def histogram(self, d: int | None = None) -> np.ndarray:
        """True normalized histogram over ``d`` buckets (default granularity).

        Cached per granularity because metrics re-use it across every method
        and privacy level in a sweep.
        """
        bins = self.default_bins if d is None else check_domain_size(d)
        cached = self._histogram_cache.get(bins)
        if cached is None:
            counts = np.bincount(bucketize(self.values, bins), minlength=bins)
            cached = normalize_counts(counts.astype(np.float64))
            self._histogram_cache[bins] = cached
        return cached

    def subsample(self, n: int, rng=None) -> "Dataset":
        """A new dataset of ``n`` values sampled without replacement."""
        from repro.utils.rng import as_generator

        if not 0 < n <= self.n:
            raise ValueError(f"n must be in [1, {self.n}], got {n}")
        gen = as_generator(rng)
        picked = gen.choice(self.values, size=n, replace=False)
        return Dataset(
            name=self.name,
            values=picked,
            default_bins=self.default_bins,
            description=f"{self.description} (subsample n={n})",
        )
