"""Evaluation datasets (paper Section 6.1).

One synthetic dataset (Beta(5,2), identical to the paper) and three seeded
generators substituting for the paper's real datasets — taxi pickup times,
ACS incomes, SF retirement contributions. See DESIGN.md Section 4 for the
substitution rationale.
"""

from repro.datasets.base import Dataset
from repro.datasets.income import INCOME_CAP, INCOME_N, income_dataset
from repro.datasets.registry import DATASET_NAMES, PAPER_SIZES, load_dataset
from repro.datasets.retirement import RETIREMENT_CAP, RETIREMENT_N, retirement_dataset
from repro.datasets.synthetic import (
    BETA_N,
    beta_dataset,
    spiky_mixture,
    truncated_lognormal,
    truncated_normal,
)
from repro.datasets.taxi import TAXI_N, taxi_dataset

__all__ = [
    "Dataset",
    "DATASET_NAMES",
    "PAPER_SIZES",
    "load_dataset",
    "beta_dataset",
    "taxi_dataset",
    "income_dataset",
    "retirement_dataset",
    "truncated_normal",
    "truncated_lognormal",
    "spiky_mixture",
    "BETA_N",
    "TAXI_N",
    "INCOME_N",
    "INCOME_CAP",
    "RETIREMENT_N",
    "RETIREMENT_CAP",
]
