"""Name-based access to the four evaluation datasets."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.income import INCOME_N, income_dataset
from repro.datasets.retirement import RETIREMENT_N, retirement_dataset
from repro.datasets.synthetic import BETA_N, beta_dataset
from repro.datasets.taxi import TAXI_N, taxi_dataset

__all__ = ["DATASET_NAMES", "PAPER_SIZES", "load_dataset"]

_GENERATORS: dict[str, Callable[..., Dataset]] = {
    "beta": beta_dataset,
    "taxi": taxi_dataset,
    "income": income_dataset,
    "retirement": retirement_dataset,
}

#: Dataset names in the order the paper's figures present them.
DATASET_NAMES: tuple[str, ...] = ("beta", "taxi", "income", "retirement")

#: Paper-reported sample sizes, used as generator defaults.
PAPER_SIZES: dict[str, int] = {
    "beta": BETA_N,
    "taxi": TAXI_N,
    "income": INCOME_N,
    "retirement": RETIREMENT_N,
}


def load_dataset(name: str, n: int | None = None, rng=None) -> Dataset:
    """Generate a dataset by name.

    Parameters
    ----------
    name:
        One of ``DATASET_NAMES``.
    n:
        Sample size; defaults to the paper's size for that dataset. Smaller
        values keep experiments fast while preserving the density shape.
    rng:
        Seed or generator for reproducibility. Integer seeds are *salted*
        with the dataset name before use, so passing the same integer to
        ``load_dataset`` and to a mechanism's ``privatize`` cannot make the
        data values and the privacy noise share one random stream — a
        correlation that silently but badly biases simulated collections.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(_GENERATORS)}"
        ) from None
    if rng is None or isinstance(rng, (int, np.integer)):
        salt = int.from_bytes(f"dataset:{name}".encode(), "little") % (2**32)
        entropy = [salt] if rng is None else [int(rng), salt]
        rng = np.random.default_rng(entropy)
    if n is None:
        return generator(rng=rng)
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    return generator(n=n, rng=rng)
