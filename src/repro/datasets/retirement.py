"""Retirement-contribution dataset substitute.

The paper extracts non-negative San Francisco employee retirement
contributions below $60000 and maps them to ``[0, 1]``. The shape that
matters for its experiments: a very large spike at (or just above) zero —
employees with no retirement plan contributions — followed by a right-skewed
body that decays toward the cap. The substitute composes a zero-inflation
component with a gamma body.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import as_generator

__all__ = ["retirement_dataset"]

#: Sample size of the paper's retirement dataset after preprocessing.
RETIREMENT_N = 178_012

#: Upper cap used by the paper (values in [0, 60000)).
RETIREMENT_CAP = 60_000.0

#: Share of employees with (near-)zero contributions; drives the spike at 0
#: visible in the paper's Figure 1(d).
_ZERO_FRACTION = 0.18


def retirement_dataset(n: int = RETIREMENT_N, rng=None) -> Dataset:
    """Generate the retirement substitute on ``[0, 1]``.

    Reconstructed at 1024 buckets in the paper.
    """
    gen = as_generator(rng)
    n = int(n)
    values = np.empty(n, dtype=np.float64)
    is_zero = gen.random(n) < _ZERO_FRACTION
    k = int(is_zero.sum())
    # Near-zero contributions: tiny amounts below $500.
    values[is_zero] = gen.uniform(0.0, 500.0, size=k)
    body_count = n - k
    body = gen.gamma(shape=2.2, scale=7_500.0, size=body_count)
    # Reject-above-cap by resampling the overflow; the tail mass is small.
    over = body >= RETIREMENT_CAP
    while over.any():
        body[over] = gen.gamma(shape=2.2, scale=7_500.0, size=int(over.sum()))
        over = body >= RETIREMENT_CAP
    values[~is_zero] = body
    return Dataset(
        name="retirement",
        values=values / RETIREMENT_CAP,
        default_bins=1024,
        description=(
            "Substitute for SF employee retirement contributions in "
            "[0, 60000): zero-inflated gamma body with long right tail"
        ),
    )
