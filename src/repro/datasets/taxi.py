"""Taxi pickup-time dataset substitute.

The paper uses pickup times (seconds within the day) from the January 2018
NYC TLC trip records, mapped to ``[0, 1]``. That file is not available
offline, so this generator reproduces the shape the paper's experiments
exercise: a smooth, strongly multi-modal daily-rhythm density — a deep
overnight trough, a morning rush, a broad afternoon plateau, and an evening
peak — on top of a uniform base of around-the-clock trips.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import truncated_normal
from repro.utils.rng import as_generator

__all__ = ["taxi_dataset"]

#: Sample size of the paper's taxi dataset.
TAXI_N = 2_189_968

# Daily-rhythm mixture: (center hour, std hours, weight). Weights are
# relative; they are normalized together with the uniform base below.
_RUSH_COMPONENTS = (
    (8.5, 1.6, 0.22),   # morning rush
    (14.0, 2.8, 0.25),  # midday / afternoon plateau
    (19.5, 2.0, 0.33),  # evening peak (largest in the TLC data)
    (23.5, 1.3, 0.08),  # late-night activity
)
_UNIFORM_WEIGHT = 0.12  # around-the-clock base load


def taxi_dataset(n: int = TAXI_N, rng=None) -> Dataset:
    """Generate the taxi pickup-time substitute on ``[0, 1]``.

    ``n`` defaults to the paper's sample size; pass a smaller value for
    fast experiments. The paper reconstructs this dataset at 1024 buckets.
    """
    gen = as_generator(rng)
    n = int(n)
    weights = np.array([w for _, _, w in _RUSH_COMPONENTS] + [_UNIFORM_WEIGHT])
    weights = weights / weights.sum()
    assignment = gen.choice(len(weights), size=n, p=weights)
    values = np.empty(n, dtype=np.float64)
    for k, (center, std, _) in enumerate(_RUSH_COMPONENTS):
        mask = assignment == k
        count = int(mask.sum())
        if count:
            hours = truncated_normal(count, center, std, 0.0, 24.0, rng=gen)
            values[mask] = hours / 24.0
    base = assignment == len(_RUSH_COMPONENTS)
    count = int(base.sum())
    if count:
        values[base] = gen.random(count)
    return Dataset(
        name="taxi",
        values=values,
        default_bins=1024,
        description=(
            "Substitute for NYC TLC 2018-01 pickup times: daily-rhythm "
            "Gaussian mixture plus uniform base"
        ),
    )
