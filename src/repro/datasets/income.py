"""Income dataset substitute (the paper's *spiky* workload).

The paper uses 2017 American Community Survey incomes below 2^19 = 524288,
mapped to ``[0, 1]``. The property its evaluation leans on is *spikiness*:
respondents report round numbers, so large point masses sit at multiples of
$1000/$5000/$10000 on top of a right-skewed body. HH-ADMM preserves those
spikes while EMS smooths them — the paper's KS-distance and quantile
discussions hinge on exactly this structure, so the substitute reproduces it.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import spiky_mixture, truncated_lognormal
from repro.utils.rng import as_generator

__all__ = ["income_dataset"]

#: Sample size of the paper's income dataset after preprocessing.
INCOME_N = 2_308_374

#: Upper bound used by the paper (incomes below 2^19 dollars).
INCOME_CAP = 524_288.0

#: Share of users who round their report to a "nice" number. Chosen so the
#: resulting histogram (1024 bins) shows spikes 5-20x the local body density,
#: matching the visual structure of the paper's Figure 1(c).
_SPIKE_FRACTION = 0.45


def _round_number_spikes() -> tuple[np.ndarray, np.ndarray]:
    """Spike positions (dollars) and relative weights.

    Round-number attraction decays with income and is stronger for coarser
    round numbers ($10000 > $5000 > $1000).
    """
    positions: list[float] = []
    weights: list[float] = []
    for dollars in range(1000, int(INCOME_CAP), 1000):
        if dollars % 10_000 == 0:
            strength = 6.0
        elif dollars % 5_000 == 0:
            strength = 2.5
        else:
            strength = 1.0
        # Popularity of an income level decays roughly log-normally; use a
        # smooth envelope centered near $35k.
        envelope = np.exp(-0.5 * ((np.log(dollars) - np.log(35_000)) / 0.9) ** 2)
        positions.append(float(dollars))
        weights.append(strength * envelope)
    return np.asarray(positions), np.asarray(weights)


def income_dataset(n: int = INCOME_N, rng=None) -> Dataset:
    """Generate the spiky income substitute on ``[0, 1]``.

    The body is a truncated log-normal (median ~$32k, long right tail below
    the 2^19 cap); ``_SPIKE_FRACTION`` of users snap to round-number spikes.
    Reconstructed at 1024 buckets in the paper.
    """
    gen = as_generator(rng)
    n = int(n)
    body = truncated_lognormal(n, mu=np.log(32_000.0), sigma=0.85, high=INCOME_CAP, rng=gen)
    positions, weights = _round_number_spikes()
    dollars = spiky_mixture(
        n,
        body=body,
        spike_positions=positions,
        spike_weights=weights,
        spike_fraction=_SPIKE_FRACTION,
        rng=gen,
    )
    return Dataset(
        name="income",
        values=dollars / INCOME_CAP,
        default_bins=1024,
        description=(
            "Substitute for 2017 ACS incomes < 2^19: log-normal body with "
            "round-number point-mass spikes (spiky workload)"
        ),
    )
