"""Synthetic dataset generators.

``beta_dataset`` reproduces the paper's Beta(5,2) workload exactly (it was
synthetic in the paper too). The remaining helpers generate reusable building
blocks — truncated normals/log-normals, spikes — that the three real-data
substitutes compose.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import as_generator

__all__ = [
    "beta_dataset",
    "truncated_normal",
    "truncated_lognormal",
    "spiky_mixture",
]

#: Sample size used in the paper for the Beta(5,2) experiment.
BETA_N = 100_000


def beta_dataset(n: int = BETA_N, rng=None) -> Dataset:
    """The paper's synthetic Beta(5, 2) dataset (Section 6.1).

    Values are i.i.d. Beta(5, 2) draws, already supported on ``[0, 1]``.
    The paper reconstructs it at 256-bucket granularity.
    """
    gen = as_generator(rng)
    values = gen.beta(5.0, 2.0, size=int(n))
    # Beta support is open at the ends but float rounding can land on 1.0;
    # the bucketizer handles that, so no clipping is needed.
    return Dataset(
        name="beta",
        values=values,
        default_bins=256,
        description="Synthetic Beta(5,2), identical to the paper's generator",
    )


def truncated_normal(
    n: int, mean: float, std: float, low: float, high: float, rng=None
) -> np.ndarray:
    """Normal draws rejected outside ``[low, high]`` (resampled, not clipped).

    Rejection keeps the density shape near the boundaries instead of piling
    mass onto them, which matters for distribution-distance metrics.
    """
    if std <= 0:
        raise ValueError(f"std must be > 0, got {std}")
    if high <= low:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    gen = as_generator(rng)
    out = np.empty(int(n), dtype=np.float64)
    filled = 0
    while filled < n:
        draw = gen.normal(mean, std, size=max(int((n - filled) * 1.5), 128))
        keep = draw[(draw >= low) & (draw <= high)]
        take = min(keep.size, n - filled)
        out[filled : filled + take] = keep[:take]
        filled += take
    return out


def truncated_lognormal(
    n: int, mu: float, sigma: float, high: float, rng=None
) -> np.ndarray:
    """Log-normal draws rejected above ``high`` (always >= 0)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    if high <= 0:
        raise ValueError(f"high must be > 0, got {high}")
    gen = as_generator(rng)
    out = np.empty(int(n), dtype=np.float64)
    filled = 0
    while filled < n:
        draw = gen.lognormal(mu, sigma, size=max(int((n - filled) * 1.5), 128))
        keep = draw[draw <= high]
        take = min(keep.size, n - filled)
        out[filled : filled + take] = keep[:take]
        filled += take
    return out


def spiky_mixture(
    n: int,
    body: np.ndarray,
    spike_positions: np.ndarray,
    spike_weights: np.ndarray,
    spike_fraction: float,
    rng=None,
) -> np.ndarray:
    """Mix a continuous ``body`` sample with point-mass spikes.

    A ``spike_fraction`` share of users report one of ``spike_positions``
    (chosen with ``spike_weights``); the rest keep their body draw. This is
    the round-number-reporting structure that makes the paper's income
    dataset spiky.
    """
    if not 0.0 <= spike_fraction <= 1.0:
        raise ValueError(f"spike_fraction must be in [0, 1], got {spike_fraction}")
    positions = np.asarray(spike_positions, dtype=np.float64)
    weights = np.asarray(spike_weights, dtype=np.float64)
    if positions.shape != weights.shape or positions.ndim != 1:
        raise ValueError("spike_positions and spike_weights must be equal-length 1-d")
    if weights.sum() <= 0:
        raise ValueError("spike_weights must have positive total")
    gen = as_generator(rng)
    body = np.asarray(body, dtype=np.float64)
    if body.size < n:
        raise ValueError(f"body must have at least n={n} draws, got {body.size}")
    out = body[: int(n)].copy()
    is_spike = gen.random(int(n)) < spike_fraction
    k = int(is_spike.sum())
    if k:
        probs = weights / weights.sum()
        out[is_spike] = gen.choice(positions, size=k, p=probs)
    return out
