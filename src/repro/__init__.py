"""repro — Estimating Numerical Distributions under Local Differential Privacy.

A faithful, self-contained reproduction of Li et al. (SIGMOD 2020): the
Square Wave (SW) reporting mechanism with Expectation Maximization with
Smoothing (EMS) reconstruction, the HH-ADMM hierarchical estimator, and
every baseline the paper evaluates against (GRR, OLH, HRR, CFO-with-binning,
HH, HaarHRR, SR, PM).

Quickstart::

    import numpy as np
    from repro import SWEstimator

    values = np.random.default_rng(0).beta(5, 2, 100_000)   # users' data
    estimator = SWEstimator(epsilon=1.0, d=256)
    histogram = estimator.fit(values)                        # LDP estimate

The estimator splits cleanly across trust boundaries: ``privatize`` runs on
each client, ``aggregate`` on the untrusted server.
"""

from repro.analysis import (
    olh_variance,
    required_population,
    sw_exact_mutual_information,
)
from repro.api import (
    EMConfig,
    EmptyAggregateError,
    Estimator,
    EstimatorSpec,
    Mechanism,
    estimator_from_state,
    list_estimators,
    make_estimator,
    register_estimator,
)
from repro.binning import CFOBinning
from repro.core.confidence import ConfidenceBands, estimator_confidence_bands
from repro.core.waves import ALL_WAVE_SHAPES, CosineWave, EpanechnikovWave, make_wave
from repro.core import (
    DiscreteSquareWave,
    DiscreteSWEstimator,
    GeneralWave,
    SquareWave,
    SWEstimator,
    WaveEstimator,
    estimate_distribution,
    optimal_bandwidth,
)
from repro.datasets import Dataset, load_dataset
from repro.freq_oracle import GRR, HRR, OLH, choose_oracle
from repro.hierarchy import HHADMM, HaarHRR, HierarchicalHistogram
from repro.mean import (
    PiecewiseMechanism,
    ScalarMeanEstimator,
    StochasticRounding,
    estimate_mean_unit,
    estimate_variance_unit,
)
from repro.metrics import (
    ks_distance,
    mean_error,
    quantile_error,
    range_query,
    range_query_mae,
    variance_error,
    wasserstein_distance,
)
from repro.multidim import MultiAttributeSW
from repro.postprocess import norm_sub
from repro.privacy import audit_budget, audit_stream_budget
from repro.protocol import CollectionServer, PlanServer, SWClient, SWServer
from repro.streaming import (
    DecayedState,
    SlidingWindowState,
    StreamingCollector,
)
from repro.tasks import (
    AnalysisPlan,
    AnalysisReport,
    AttributeSpec,
    Distribution,
    Marginals,
    Mean,
    Quantiles,
    RangeQueries,
    Session,
    TaskResult,
    Variance,
    load_plan,
    plan_analysis,
)

__version__ = "1.0.0"

__all__ = [
    "Estimator",
    "Mechanism",
    "EMConfig",
    "EmptyAggregateError",
    "EstimatorSpec",
    "make_estimator",
    "list_estimators",
    "register_estimator",
    "estimator_from_state",
    "ScalarMeanEstimator",
    "SWEstimator",
    "DiscreteSWEstimator",
    "WaveEstimator",
    "SquareWave",
    "DiscreteSquareWave",
    "GeneralWave",
    "optimal_bandwidth",
    "estimate_distribution",
    "CFOBinning",
    "GRR",
    "OLH",
    "HRR",
    "choose_oracle",
    "HierarchicalHistogram",
    "HaarHRR",
    "HHADMM",
    "StochasticRounding",
    "PiecewiseMechanism",
    "estimate_mean_unit",
    "estimate_variance_unit",
    "Dataset",
    "load_dataset",
    "wasserstein_distance",
    "ks_distance",
    "range_query",
    "range_query_mae",
    "mean_error",
    "variance_error",
    "quantile_error",
    "norm_sub",
    "ConfidenceBands",
    "estimator_confidence_bands",
    "make_wave",
    "ALL_WAVE_SHAPES",
    "CosineWave",
    "EpanechnikovWave",
    "MultiAttributeSW",
    "SWClient",
    "SWServer",
    "CollectionServer",
    "PlanServer",
    "olh_variance",
    "required_population",
    "sw_exact_mutual_information",
    "AnalysisPlan",
    "AttributeSpec",
    "Distribution",
    "Mean",
    "Variance",
    "Quantiles",
    "RangeQueries",
    "Marginals",
    "Session",
    "TaskResult",
    "AnalysisReport",
    "plan_analysis",
    "load_plan",
    "audit_budget",
    "audit_stream_budget",
    "StreamingCollector",
    "SlidingWindowState",
    "DecayedState",
    "__version__",
]
