"""Random-number-generator plumbing.

Every randomized component in this package accepts a ``rng`` argument that
may be ``None`` (fresh entropy), an integer seed, or an existing
``numpy.random.Generator``. Centralizing the conversion keeps experiments
reproducible: the harness seeds one generator per trial and hands spawned
children to each mechanism.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

__all__ = ["RngLike", "as_generator", "spawn_generators"]

#: Anything :func:`as_generator` can coerce into a ``numpy.random.Generator``.
RngLike: TypeAlias = "None | int | np.random.Generator | np.random.SeedSequence"


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Accepts ``None`` (OS entropy), an integer seed, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so state is shared with the
    caller).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_generators(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` under the hood so children never overlap,
    which matters when one experiment trial runs several mechanisms that must
    not share randomness.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
