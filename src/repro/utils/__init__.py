"""Shared helpers: argument validation, RNG plumbing, histogram utilities."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_domain_size,
    check_epsilon,
    check_probability_vector,
    check_unit_values,
)
from repro.utils.histograms import (
    bucketize,
    histogram_cdf,
    histogram_mean,
    histogram_quantile,
    histogram_variance,
    normalize_counts,
    uniform_bucket_midpoints,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_domain_size",
    "check_epsilon",
    "check_probability_vector",
    "check_unit_values",
    "bucketize",
    "histogram_cdf",
    "histogram_mean",
    "histogram_quantile",
    "histogram_variance",
    "normalize_counts",
    "uniform_bucket_midpoints",
]
