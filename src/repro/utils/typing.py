"""Shared array type aliases for the strictly-typed core layers.

Centralizing these keeps signatures readable under ``mypy --strict``:
``disallow_any_generics`` rejects a bare ``np.ndarray``, and spelling
``NDArray[np.float64]`` at every call site buries the signal. Inputs that
merely need to be *coercible* to an array take ``ArrayLike`` (lists,
tuples, scalars, arrays); outputs are always concrete dtyped arrays.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = ["ArrayLike", "FloatArray", "IntArray", "BoolArray"]

#: A float64 numpy array — the package's working dtype for distributions,
#: channels, and reports.
FloatArray: TypeAlias = NDArray[np.float64]

#: An int64 numpy array — bucket indices and count vectors on the wire.
IntArray: TypeAlias = NDArray[np.int64]

#: A boolean mask array.
BoolArray: TypeAlias = NDArray[np.bool_]
