"""Argument validation shared by every public entry point.

All validators raise ``ValueError`` (or ``TypeError`` for wrong types) with a
message naming the offending argument, so failures surface at the API
boundary instead of deep inside numerical code.
"""

from __future__ import annotations

import numpy as np

from repro.utils.typing import ArrayLike, FloatArray

__all__ = [
    "check_epsilon",
    "check_domain_size",
    "check_unit_values",
    "check_probability_vector",
]


def check_epsilon(epsilon: float) -> float:
    """Validate a privacy budget and return it as a float.

    Parameters
    ----------
    epsilon:
        The LDP privacy parameter. Must be a finite, strictly positive
        number.
    """
    value = float(epsilon)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"epsilon must be finite and > 0, got {epsilon!r}")
    return value


def check_domain_size(d: int, *, name: str = "d", minimum: int = 2) -> int:
    """Validate a (bucketized) domain size and return it as an int."""
    if not float(d).is_integer():
        raise ValueError(f"{name} must be an integer, got {d!r}")
    value = int(d)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_unit_values(values: ArrayLike, *, name: str = "values") -> FloatArray:
    """Validate a 1-d array of inputs in ``[0, 1]`` and return it as float64.

    The unit interval is the canonical input domain for every continuous
    mechanism in this package; callers rescale real-world data first.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} must be finite")
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise ValueError(
            f"{name} must lie in [0, 1], got range "
            f"[{arr.min():.6g}, {arr.max():.6g}]"
        )
    return arr


def check_probability_vector(
    x: ArrayLike, *, name: str = "x", atol: float = 1e-6
) -> FloatArray:
    """Validate a non-negative vector summing to 1 and return it as float64."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} must be finite")
    if arr.min() < -atol:
        raise ValueError(f"{name} must be non-negative, min={arr.min():.6g}")
    total = arr.sum()
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, got {total:.6g}")
    return arr
