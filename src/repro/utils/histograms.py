"""Histogram helpers used across mechanisms, metrics, and experiments.

Conventions
-----------
A *histogram* here is a length-``d`` probability vector over ``d`` equal-width
buckets covering the unit interval: bucket ``i`` spans
``[i/d, (i+1)/d)`` (the final bucket is closed on the right). Statistics are
computed treating the mass of bucket ``i`` as concentrated at its midpoint
``(i + 0.5)/d``, which is the same convention the paper uses when it derives
means/variances/quantiles from a reconstructed distribution.
"""

from __future__ import annotations

import numpy as np

from repro.utils.typing import ArrayLike, FloatArray, IntArray
from repro.utils.validation import check_domain_size, check_unit_values

__all__ = [
    "bucketize",
    "normalize_counts",
    "uniform_bucket_midpoints",
    "histogram_cdf",
    "histogram_mean",
    "histogram_variance",
    "histogram_quantile",
]


def bucketize(values: ArrayLike, d: int) -> IntArray:
    """Map values in ``[0, 1]`` to integer bucket indices in ``{0..d-1}``.

    The value 1.0 lands in the last bucket rather than an out-of-range one.
    """
    arr = check_unit_values(values)
    d = check_domain_size(d)
    idx = np.floor(arr * d).astype(np.int64)
    return np.minimum(idx, d - 1)


def normalize_counts(counts: ArrayLike) -> FloatArray:
    """Turn a non-negative count vector into a probability vector.

    A zero-total vector becomes the uniform distribution, which is the
    correct uninformative estimate when no reports were observed.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"counts must be a non-empty 1-d array, got shape {arr.shape}")
    if arr.min() < 0:
        raise ValueError(f"counts must be non-negative, min={arr.min():.6g}")
    total = arr.sum()
    if total == 0:
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def uniform_bucket_midpoints(d: int) -> FloatArray:
    """Midpoints of ``d`` equal-width buckets covering ``[0, 1]``."""
    d = check_domain_size(d)
    return (np.arange(d) + 0.5) / d


def histogram_cdf(x: ArrayLike) -> FloatArray:
    """Cumulative distribution ``P(x, v)`` evaluated at bucket right edges."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"x must be 1-dimensional, got shape {arr.shape}")
    return np.cumsum(arr)


def histogram_mean(x: ArrayLike) -> float:
    """Mean of a histogram on ``[0, 1]`` using bucket midpoints."""
    arr = np.asarray(x, dtype=np.float64)
    return float(arr @ uniform_bucket_midpoints(arr.size))


def histogram_variance(x: ArrayLike) -> float:
    """Variance of a histogram on ``[0, 1]`` using bucket midpoints."""
    arr = np.asarray(x, dtype=np.float64)
    mids = uniform_bucket_midpoints(arr.size)
    mean = float(arr @ mids)
    return float(arr @ (mids - mean) ** 2)


def histogram_quantile(x: ArrayLike, beta: float) -> float:
    """Paper-style quantile ``Q(x, beta) = argmax_v { P(x, v) <= beta }``.

    Returns the *position* (in ``[0, 1]``) of the right edge of the last
    bucket whose CDF does not exceed ``beta``; 0.0 when even the first bucket
    overshoots. Quantile *errors* are therefore directly comparable across
    granularities.
    """
    arr = np.asarray(x, dtype=np.float64)
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    cdf = histogram_cdf(arr)
    # Tolerate float round-off at exact quantile boundaries.
    ok = np.nonzero(cdf <= beta + 1e-12)[0]
    if ok.size == 0:
        return 0.0
    return float((ok[-1] + 1) / arr.size)
