"""Closed-form error analysis and planning helpers."""

from repro.analysis.theory import (
    grr_variance,
    hierarchy_level_variance,
    hrr_variance,
    olh_variance,
    oracle_crossover_domain,
    pm_variance,
    pm_worst_case_variance,
    range_query_std,
    required_population,
    sr_variance,
    sw_exact_mutual_information,
)

__all__ = [
    "grr_variance",
    "olh_variance",
    "hrr_variance",
    "sr_variance",
    "pm_variance",
    "pm_worst_case_variance",
    "oracle_crossover_domain",
    "hierarchy_level_variance",
    "range_query_std",
    "required_population",
    "sw_exact_mutual_information",
]
