"""Closed-form error theory for the implemented mechanisms.

Collects the published variance formulas the paper's comparisons rest on,
plus exact (not upper-bounded) mutual information for wave mechanisms.
Every formula here is validated against simulation in the test suite, so
the module doubles as executable documentation of Sections 2 and 5.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_domain_size, check_epsilon, check_probability_vector

__all__ = [
    "grr_variance",
    "olh_variance",
    "hrr_variance",
    "sr_variance",
    "pm_variance",
    "pm_worst_case_variance",
    "oracle_crossover_domain",
    "hierarchy_level_variance",
    "range_query_std",
    "required_population",
    "sw_exact_mutual_information",
]


def grr_variance(epsilon: float, d: int) -> float:
    """Per-user GRR frequency variance, Equation (1): ``(d-2+e^eps)/(e^eps-1)^2``."""
    epsilon = check_epsilon(epsilon)
    d = check_domain_size(d)
    e_eps = math.exp(epsilon)
    return (d - 2 + e_eps) / (e_eps - 1) ** 2


def olh_variance(epsilon: float) -> float:
    """Per-user OLH frequency variance [34]: ``4 e^eps / (e^eps - 1)^2``."""
    epsilon = check_epsilon(epsilon)
    e_eps = math.exp(epsilon)
    return 4.0 * e_eps / (e_eps - 1) ** 2


def hrr_variance(epsilon: float) -> float:
    """Per-user HRR frequency variance: ``(e^eps + 1)^2 / (e^eps - 1)^2``.

    Local hashing with ``g = 2``; slightly above OLH's optimum but with
    O(log d) communication and no hash-seed transmission.
    """
    epsilon = check_epsilon(epsilon)
    e_eps = math.exp(epsilon)
    return (e_eps + 1.0) ** 2 / (e_eps - 1.0) ** 2


def sr_variance(epsilon: float, v: float) -> float:
    """Variance of one debiased SR report for input ``v`` in [-1, 1].

    ``Var = ((e^eps+1)/(e^eps-1))^2 - v^2`` — the report is ±1/(p-q), so
    the second moment is constant and the variance shrinks with ``|v|``.
    """
    epsilon = check_epsilon(epsilon)
    if not -1.0 <= v <= 1.0:
        raise ValueError(f"v must be in [-1, 1], got {v}")
    e_eps = math.exp(epsilon)
    return ((e_eps + 1.0) / (e_eps - 1.0)) ** 2 - v * v


def pm_variance(epsilon: float, v: float) -> float:
    """Variance of one PM report for input ``v`` in [-1, 1] (from [30]):

    ``Var = v^2/(e^{eps/2}-1) + (e^{eps/2}+3) / (3 (e^{eps/2}-1)^2)``.
    """
    epsilon = check_epsilon(epsilon)
    if not -1.0 <= v <= 1.0:
        raise ValueError(f"v must be in [-1, 1], got {v}")
    half = math.exp(epsilon / 2.0)
    return v * v / (half - 1.0) + (half + 3.0) / (3.0 * (half - 1.0) ** 2)


def pm_worst_case_variance(epsilon: float) -> float:
    """PM variance at ``|v| = 1`` — its maximum over the input domain."""
    return pm_variance(epsilon, 1.0)


def oracle_crossover_domain(epsilon: float) -> int:
    """Smallest domain size at which OLH beats GRR: ``d - 2 >= 3 e^eps``."""
    epsilon = check_epsilon(epsilon)
    return int(math.ceil(3.0 * math.exp(epsilon))) + 2


def hierarchy_level_variance(
    epsilon: float, level_size: int, n_level: int
) -> float:
    """Variance of one node estimate at a hierarchy level.

    ``n_level`` users report on a domain of ``level_size`` nodes with the
    adaptive GRR/OLH oracle and the whole budget (population splitting).
    """
    if n_level <= 0:
        raise ValueError(f"n_level must be > 0, got {n_level}")
    if level_size >= oracle_crossover_domain(epsilon):
        per_user = olh_variance(epsilon)
    else:
        per_user = grr_variance(epsilon, level_size)
    return per_user / n_level


def range_query_std(
    epsilon: float, d: int, n: int, branching: int = 4, range_fraction: float = 0.1
) -> float:
    """Predicted standard deviation of an HH range-query answer.

    A range of ``range_fraction`` of the domain decomposes into at most
    ``2 (branching - 1)`` nodes per level; each level holds ``n / h`` users.
    This is the back-of-envelope the paper's Section 4.2 design discussion
    uses, handy for choosing ``d`` and ``branching`` before deploying.
    """
    if not 0 < range_fraction <= 1:
        raise ValueError("range_fraction must be in (0, 1]")
    d = check_domain_size(d)
    height = round(math.log(d, branching))
    if branching**height != d:
        raise ValueError(f"d={d} is not a power of branching={branching}")
    n_level = max(n // height, 1)
    variance = 0.0
    for level in range(1, height + 1):
        nodes_used = min(2 * (branching - 1), branching**level)
        variance += nodes_used * hierarchy_level_variance(
            epsilon, branching**level, n_level
        )
    return math.sqrt(variance)


def required_population(
    epsilon: float, target_std: float, d: int | None = None
) -> int:
    """Users needed for a target per-frequency standard deviation.

    Uses the better of GRR/OLH at the given domain size (OLH's
    domain-independent variance when ``d`` is omitted).
    """
    check_epsilon(epsilon)
    if target_std <= 0:
        raise ValueError(f"target_std must be > 0, got {target_std}")
    if d is None:
        per_user = olh_variance(epsilon)
    else:
        per_user = min(olh_variance(epsilon), grr_variance(epsilon, d))
    return math.ceil(per_user / target_std**2)


def sw_exact_mutual_information(
    transition_matrix: np.ndarray, input_distribution: np.ndarray
) -> float:
    """Exact mutual information ``I(V; V~)`` of a bucketized wave mechanism.

    Unlike :func:`repro.core.bandwidth.mutual_information_bound` (which
    assumes a uniform output to stay distribution-free), this computes the
    true value for a *given* input distribution:

    ``I = sum_i x_i sum_j M[j,i] log(M[j,i] / (M x)_j)`` (in nats).
    """
    m = np.asarray(transition_matrix, dtype=np.float64)
    x = check_probability_vector(input_distribution, name="input_distribution")
    if m.ndim != 2 or m.shape[1] != x.size:
        raise ValueError(
            f"matrix shape {m.shape} incompatible with distribution size {x.size}"
        )
    marginal = m @ x
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.where(m > 0, np.log(m / marginal[:, None]), 0.0)
    return float(np.sum(x[None, :] * m * log_ratio))
