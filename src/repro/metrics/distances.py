"""Distribution distances on the ordered unit domain (paper Section 3.1).

Both metrics compare cumulative distribution functions, so unlike L1/L2/KL
they increase with how *far* misplaced mass travels, which is the property
the paper's motivating example (shifting 0.6 mass one bucket vs. three
buckets) requires.
"""

from __future__ import annotations

import numpy as np

__all__ = ["wasserstein_distance", "ks_distance"]


def _paired_histograms(x: np.ndarray, x_hat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(x_hat, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("histograms must be 1-dimensional")
    if a.shape != b.shape:
        raise ValueError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("histograms must be non-empty")
    return a, b


def wasserstein_distance(x: np.ndarray, x_hat: np.ndarray) -> float:
    """One-dimensional Wasserstein (earth mover) distance on ``[0, 1]``.

    ``W1 = integral over [0,1] of |P(x, v) - P(x_hat, v)| dv``, discretized as
    the sum of absolute CDF differences times the bucket width. The bucket
    width factor makes values comparable across granularities and matches
    the magnitudes reported in the paper's figures.
    """
    a, b = _paired_histograms(x, x_hat)
    diff = np.cumsum(a - b)
    return float(np.abs(diff).sum() / a.size)


def ks_distance(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Kolmogorov-Smirnov distance: max absolute CDF difference."""
    a, b = _paired_histograms(x, x_hat)
    diff = np.cumsum(a - b)
    return float(np.abs(diff).max())
