"""Statistical-quantity errors (paper Section 3.2).

Mean, variance, and decile-quantile absolute errors between a true and a
reconstructed histogram, all on the normalized ``[0, 1]`` domain.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.utils.histograms import (
    histogram_mean,
    histogram_quantile,
    histogram_variance,
)

__all__ = ["mean_error", "variance_error", "quantile_error", "DECILES"]

#: The paper's quantile set B = {10%, 20%, ..., 90%}.
DECILES: tuple[float, ...] = tuple(np.round(np.arange(1, 10) * 0.1, 10))


def mean_error(x: np.ndarray, x_hat: np.ndarray) -> float:
    """``|mu - mu_hat|`` between two histograms on [0, 1]."""
    return abs(histogram_mean(x) - histogram_mean(x_hat))


def variance_error(x: np.ndarray, x_hat: np.ndarray) -> float:
    """``|sigma^2 - sigma_hat^2|`` between two histograms on [0, 1]."""
    return abs(histogram_variance(x) - histogram_variance(x_hat))


def quantile_error(
    x: np.ndarray,
    x_hat: np.ndarray,
    quantiles: Sequence[float] = DECILES,
) -> float:
    """Mean absolute quantile displacement over ``quantiles``.

    Implements ``(1/|B|) * sum_beta |Q(x, beta) - Q(x_hat, beta)|`` with the
    paper's default deciles.
    """
    if len(quantiles) == 0:
        raise ValueError("quantiles must be non-empty")
    errs = [
        abs(histogram_quantile(x, beta) - histogram_quantile(x_hat, beta))
        for beta in quantiles
    ]
    return float(np.mean(errs))
