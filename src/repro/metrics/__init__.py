"""Utility metrics from Section 3 of the paper.

Two families:

* distribution distances that respect the ordered domain (Wasserstein-1 and
  Kolmogorov-Smirnov, both on CDFs), and
* semantic/statistical quantities (range queries, mean, variance, quantiles)
  evaluated on reconstructed histograms.
"""

from repro.metrics.distances import ks_distance, wasserstein_distance
from repro.metrics.queries import (
    random_range_queries,
    range_queries,
    range_query,
    range_query_mae,
)
from repro.metrics.statistics import (
    mean_error,
    quantile_error,
    variance_error,
)

__all__ = [
    "wasserstein_distance",
    "ks_distance",
    "range_query",
    "range_queries",
    "random_range_queries",
    "range_query_mae",
    "mean_error",
    "variance_error",
    "quantile_error",
]
