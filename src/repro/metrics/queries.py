"""Range-query accuracy (paper Section 3.2).

A range query ``R(x, i, alpha)`` asks for the probability mass in the window
``[i, i + alpha]`` of the unit domain. The paper samples the left endpoint
uniformly and reports the mean absolute error against the true distribution.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, as_generator

__all__ = ["range_query", "range_queries", "random_range_queries", "range_query_mae"]


def range_query(x: np.ndarray, left: float, alpha: float) -> float:
    """Mass of ``x`` (histogram on [0,1]) inside ``[left, left + alpha]``.

    Buckets partially covered by the window contribute proportionally to the
    covered fraction, i.e. mass is treated as uniform inside each bucket —
    the same convention used when a coarse estimate is spread onto a fine
    grid.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("x must be a non-empty 1-d histogram")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    d = arr.size
    lo = np.clip(left, 0.0, 1.0) * d
    hi = np.clip(left + alpha, 0.0, 1.0) * d
    if hi <= lo:
        return 0.0
    idx = np.arange(d)
    # Covered fraction of each bucket [i, i+1) under the window [lo, hi).
    cover = np.clip(np.minimum(hi, idx + 1) - np.maximum(lo, idx), 0.0, 1.0)
    return float(arr @ cover)


def range_queries(x: np.ndarray, windows) -> np.ndarray:
    """Evaluate many absolute windows ``[low, high]`` against one histogram.

    ``windows`` is a sequence of ``(low, high)`` endpoint pairs on the unit
    domain; the return value is the estimated mass of each window, in
    order. This is the batch form a task plan's ``RangeQueries`` task uses.
    """
    out = []
    for window in windows:
        low, high = (float(window[0]), float(window[1]))
        if high < low:
            raise ValueError(f"window endpoints must satisfy low <= high, got {window}")
        out.append(range_query(x, low, high - low))
    return np.asarray(out, dtype=np.float64)


def random_range_queries(
    alpha: float, n_queries: int, rng: RngLike = None
) -> np.ndarray:
    """Sample ``n_queries`` left endpoints uniformly from ``[0, 1 - alpha]``."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if n_queries <= 0:
        raise ValueError(f"n_queries must be > 0, got {n_queries}")
    gen = as_generator(rng)
    return gen.uniform(0.0, 1.0 - alpha, size=n_queries)


def range_query_mae(
    x: np.ndarray,
    x_hat: np.ndarray,
    alpha: float,
    n_queries: int = 100,
    rng: RngLike = None,
) -> float:
    """MAE of random range queries between true and estimated histograms.

    This is the Figure 3 metric: sample ``n_queries`` windows of width
    ``alpha`` and average ``|R(x, i, alpha) - R(x_hat, i, alpha)|``.
    """
    lefts = random_range_queries(alpha, n_queries, rng)
    errors = [
        abs(range_query(x, left, alpha) - range_query(x_hat, left, alpha))
        for left in lefts
    ]
    return float(np.mean(errors))
