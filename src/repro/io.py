"""Persistence helpers: histograms, values, and estimator configurations.

File formats are deliberately plain:

* values — one float per line (the CLI's input format);
* histograms — CSV with ``bucket,left,right,mass`` rows, so the estimate is
  directly consumable by spreadsheets and plotting tools;
* estimator configs — JSON with the public parameters (epsilon, b, d,
  post-processing), enough to reconstruct an identical estimator; the
  transition matrix is recomputed on load (it is a pure function of the
  config and building it is cheaper than shipping ~d^2 floats).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.pipeline import SWEstimator

__all__ = [
    "read_values",
    "write_values",
    "read_table",
    "read_histogram_csv",
    "write_histogram_csv",
    "save_estimator_config",
    "load_estimator_config",
]


def read_values(path: str | Path) -> np.ndarray:
    """Read one float per line; blank lines and ``#`` comments are skipped."""
    out: list[float] = []
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                out.append(float(text))
            except ValueError:
                raise ValueError(f"{path}:{line_no}: not a number: {text!r}") from None
    if not out:
        raise ValueError(f"{path}: no values found")
    return np.asarray(out, dtype=np.float64)


def write_values(values: np.ndarray, path: str | Path) -> Path:
    """Write one float per line."""
    path = Path(path)
    arr = np.asarray(values, dtype=np.float64)
    path.write_text("\n".join(f"{v:.12g}" for v in arr) + "\n")
    return path


def read_table(path: str | Path) -> dict[str, np.ndarray]:
    """Read a headed CSV into one float column per attribute.

    The input format of the CLI's ``analyze`` subcommand: a header row of
    attribute names, then one row per user. Every column is returned as a
    float array; all columns share the user axis by construction. A UTF-8
    BOM (Excel's default UTF-8 export) is tolerated.
    """
    with Path(path).open(newline="", encoding="utf-8-sig") as handle:
        reader = csv.reader(handle)
        try:
            header = [name.strip() for name in next(reader)]
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        if not header or any(not name for name in header):
            raise ValueError(f"{path}: header must name every column")
        if len(set(header)) != len(header):
            raise ValueError(f"{path}: duplicate column names in header")
        columns: list[list[float]] = [[] for _ in header]
        for row_no, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{row_no}: expected {len(header)} columns, got {len(row)}"
                )
            for column, cell in zip(columns, row, strict=True):
                try:
                    column.append(float(cell))
                except ValueError:
                    raise ValueError(
                        f"{path}:{row_no}: not a number: {cell.strip()!r}"
                    ) from None
    if not columns[0]:
        raise ValueError(f"{path}: no data rows found")
    return {
        name: np.asarray(column, dtype=np.float64)
        for name, column in zip(header, columns, strict=True)
    }


def write_histogram_csv(histogram: np.ndarray, path: str | Path) -> Path:
    """Write ``bucket,left,right,mass`` rows over the unit domain."""
    arr = np.asarray(histogram, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("histogram must be a non-empty 1-d array")
    path = Path(path)
    d = arr.size
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bucket", "left", "right", "mass"])
        for i, mass in enumerate(arr):
            writer.writerow([i, f"{i / d:.10g}", f"{(i + 1) / d:.10g}", f"{mass:.10g}"])
    return path


def read_histogram_csv(path: str | Path) -> np.ndarray:
    """Read a histogram written by :func:`write_histogram_csv`."""
    masses: list[float] = []
    with Path(path).open() as handle:
        for row in csv.DictReader(handle):
            masses.append(float(row["mass"]))
    if not masses:
        raise ValueError(f"{path}: no histogram rows found")
    return np.asarray(masses, dtype=np.float64)


def save_estimator_config(estimator: SWEstimator, path: str | Path) -> Path:
    """Persist an SW estimator's public parameters as JSON."""
    config = {
        "type": "SWEstimator",
        "epsilon": estimator.epsilon,
        "b": estimator.mechanism.b,
        "d": estimator.d,
        "d_out": estimator.d_out,
        "postprocess": estimator.postprocess,
        "tol": estimator.tol,
        "max_iter": estimator.max_iter,
        "smoothing_order": estimator.smoothing_order,
    }
    path = Path(path)
    path.write_text(json.dumps(config, indent=2) + "\n")
    return path


def load_estimator_config(path: str | Path) -> SWEstimator:
    """Rebuild an SW estimator from a saved config."""
    config = json.loads(Path(path).read_text())
    if config.get("type") != "SWEstimator":
        raise ValueError(f"{path}: not an SWEstimator config")
    return SWEstimator(
        config["epsilon"],
        config["d"],
        b=config["b"],
        d_out=config["d_out"],
        postprocess=config["postprocess"],
        tol=config["tol"],
        max_iter=config["max_iter"],
        smoothing_order=config["smoothing_order"],
    )
