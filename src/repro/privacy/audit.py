"""Numerical LDP auditing (Definition 2.1).

These checks do not *prove* privacy — the proofs are in the paper — but they
catch implementation bugs: a mechanism whose realized density ratio exceeds
``e^eps`` is broken no matter what the math says. Two entry points:

* ``audit_continuous_mechanism`` grids the input/output domains of a wave
  mechanism and bounds ``max pdf(v1, out) / pdf(v2, out)``;
* ``audit_matrix`` checks a per-value transition matrix (GRR, discrete SW),
  where each column *is* the exact output distribution of one input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_epsilon

__all__ = ["AuditResult", "audit_continuous_mechanism", "audit_matrix"]


@dataclass(frozen=True)
class AuditResult:
    """Outcome of a numerical LDP audit.

    ``max_ratio`` is the largest observed output-probability ratio between
    two inputs; ``satisfied`` compares it to ``e^eps`` with a small
    float-tolerance margin.
    """

    epsilon: float
    max_ratio: float
    satisfied: bool

    @property
    def effective_epsilon(self) -> float:
        """``log(max_ratio)`` — the privacy level the audit actually observed."""
        return float(np.log(self.max_ratio))


def audit_continuous_mechanism(
    mechanism,
    *,
    input_grid: int = 41,
    output_grid: int = 401,
    rtol: float = 1e-9,
) -> AuditResult:
    """Audit a continuous wave mechanism via its ``pdf``.

    Evaluates the output density for ``input_grid`` inputs across ``[0, 1]``
    on a shared ``output_grid`` over ``[-b, 1+b]`` and takes the worst
    pointwise ratio. Wave mechanisms have piecewise-constant/linear densities
    so a moderate grid finds the true maximum.
    """
    epsilon = check_epsilon(mechanism.epsilon)
    inputs = np.linspace(0.0, 1.0, input_grid)
    outputs = np.linspace(mechanism.output_low, mechanism.output_high, output_grid)
    densities = np.stack([mechanism.pdf(v, outputs) for v in inputs])
    if densities.min() <= 0:
        raise ValueError(
            "mechanism has zero-density outputs inside its domain; "
            "the LDP ratio is unbounded"
        )
    max_ratio = float((densities.max(axis=0) / densities.min(axis=0)).max())
    bound = float(np.exp(epsilon)) * (1.0 + rtol)
    return AuditResult(epsilon=epsilon, max_ratio=max_ratio, satisfied=max_ratio <= bound)


def audit_matrix(matrix: np.ndarray, epsilon: float, *, rtol: float = 1e-9) -> AuditResult:
    """Audit a per-value transition matrix (columns = exact output pmfs)."""
    epsilon = check_epsilon(epsilon)
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.size == 0:
        raise ValueError(f"matrix must be a non-empty 2-d array, got shape {m.shape}")
    if m.min() <= 0:
        raise ValueError("matrix has zero entries; the LDP ratio is unbounded")
    max_ratio = float((m.max(axis=1) / m.min(axis=1)).max())
    bound = float(np.exp(epsilon)) * (1.0 + rtol)
    return AuditResult(epsilon=epsilon, max_ratio=max_ratio, satisfied=max_ratio <= bound)
