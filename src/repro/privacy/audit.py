"""Numerical LDP auditing (Definition 2.1).

These checks do not *prove* privacy — the proofs are in the paper — but they
catch implementation bugs: a mechanism whose realized density ratio exceeds
``e^eps`` is broken no matter what the math says. Two entry points:

* ``audit_continuous_mechanism`` grids the input/output domains of a wave
  mechanism and bounds ``max pdf(v1, out) / pdf(v2, out)``;
* ``audit_matrix`` checks a per-value transition matrix (GRR, discrete SW),
  where each column *is* the exact output distribution of one input.

Plan-level accounting lives here too: ``audit_budget`` verifies that an
analysis plan's per-attribute epsilon allocation composes to no more than
the declared per-user budget (sequential composition when every user
reports every attribute, parallel composition when the population is split
and each user reports exactly one attribute).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_epsilon

__all__ = [
    "AuditResult",
    "PlanAuditResult",
    "StreamAuditResult",
    "audit_continuous_mechanism",
    "audit_matrix",
    "audit_budget",
    "audit_stream_budget",
]


@dataclass(frozen=True)
class AuditResult:
    """Outcome of a numerical LDP audit.

    ``max_ratio`` is the largest observed output-probability ratio between
    two inputs; ``satisfied`` compares it to ``e^eps`` with a small
    float-tolerance margin.
    """

    epsilon: float
    max_ratio: float
    satisfied: bool

    @property
    def effective_epsilon(self) -> float:
        """``log(max_ratio)`` — the privacy level the audit actually observed.

        Uses scalar ``math.log`` so a degenerate audit (``max_ratio <= 0``,
        e.g. from an all-zero channel) raises loudly instead of silently
        returning ``-inf``/NaN behind a RuntimeWarning.
        """
        return math.log(self.max_ratio)


@dataclass(frozen=True)
class PlanAuditResult:
    """Outcome of a plan-level budget audit.

    ``per_user_epsilon`` is the worst-case budget any single user spends
    under the declared composition rule; ``satisfied`` compares it to the
    plan budget with a small float-tolerance margin.
    """

    epsilon_budget: float
    per_user_epsilon: float
    composition: str
    per_attribute: tuple[tuple[str, float], ...]

    @property
    def satisfied(self) -> bool:
        return self.per_user_epsilon <= self.epsilon_budget * (1.0 + 1e-9)

    @property
    def slack(self) -> float:
        """Unspent budget (negative means the allocation over-spends)."""
        return self.epsilon_budget - self.per_user_epsilon


def audit_budget(
    per_attribute: Mapping[str, float],
    epsilon_budget: float,
    *,
    composition: str = "sequential",
) -> PlanAuditResult:
    """Verify a per-attribute epsilon allocation against a per-user budget.

    ``composition="sequential"`` models every user reporting every
    attribute (budgets add up); ``"parallel"`` models population splitting,
    where each user reports exactly one attribute and the per-user spend is
    the worst single allocation.
    """
    epsilon_budget = check_epsilon(epsilon_budget)
    if composition not in ("sequential", "parallel"):
        raise ValueError(
            f"composition must be 'sequential' or 'parallel', got {composition!r}"
        )
    if not per_attribute:
        raise ValueError("per_attribute allocation must be non-empty")
    allocations = tuple(
        (str(name), check_epsilon(eps)) for name, eps in per_attribute.items()
    )
    spends = [eps for _, eps in allocations]
    per_user = sum(spends) if composition == "sequential" else max(spends)
    return PlanAuditResult(
        epsilon_budget=epsilon_budget,
        per_user_epsilon=float(per_user),
        composition=composition,
        per_attribute=allocations,
    )


@dataclass(frozen=True)
class StreamAuditResult:
    """Outcome of a multi-round (streaming) budget audit.

    ``per_round_epsilon`` is the single-round per-user spend under the
    declared attribute composition; ``per_window_epsilon`` is the
    effective spend over a window of ``rounds`` rounds under the declared
    participation model. ``satisfied`` compares the *window* spend to the
    budget with the same float-tolerance margin as the one-shot audit.
    """

    epsilon_budget: float
    per_round_epsilon: float
    per_window_epsilon: float
    rounds: int
    composition: str
    participation: str
    per_attribute: tuple[tuple[str, float], ...]

    @property
    def satisfied(self) -> bool:
        return self.per_window_epsilon <= self.epsilon_budget * (1.0 + 1e-9)

    @property
    def slack(self) -> float:
        """Unspent window budget (negative means the stream over-spends)."""
        return self.epsilon_budget - self.per_window_epsilon

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form for service responses and CLI output."""
        return {
            "epsilon_budget": self.epsilon_budget,
            "per_round_epsilon": self.per_round_epsilon,
            "per_window_epsilon": self.per_window_epsilon,
            "rounds": self.rounds,
            "composition": self.composition,
            "participation": self.participation,
            "per_attribute": dict(self.per_attribute),
            "satisfied": self.satisfied,
            "slack": self.slack,
        }


def audit_stream_budget(
    per_attribute: Mapping[str, float],
    epsilon_budget: float,
    *,
    rounds: int,
    composition: str = "sequential",
    participation: str = "every-round",
) -> StreamAuditResult:
    """Audit a continuous collection's per-window privacy spend.

    Extends :func:`audit_budget` across rounds. Within one round,
    ``composition`` composes the per-attribute allocation exactly as the
    one-shot audit does. Across the ``rounds`` rounds a single user can
    influence a windowed estimate, sequential composition applies again
    under ``participation="every-round"`` (the same user reports in every
    round: spends add, ``per_window = rounds * per_round``), while
    ``participation="once"`` models per-round user sampling where each
    user reports in at most one round of the window (parallel composition
    across rounds: ``per_window = per_round``).

    A sliding window of length ``W`` passes ``rounds=W``; a decayed state
    with factor ``gamma`` passes its effective window
    ``ceil(1 / (1 - gamma))``; cumulative collection passes the tick
    count so far. The window view is what matters operationally: a plan
    that satisfies its one-shot budget can still blow the longitudinal
    budget after a handful of every-round ticks.
    """
    rounds = int(rounds)
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if participation not in ("every-round", "once"):
        raise ValueError(
            f"participation must be 'every-round' or 'once', got {participation!r}"
        )
    base = audit_budget(per_attribute, epsilon_budget, composition=composition)
    per_round = base.per_user_epsilon
    per_window = per_round * rounds if participation == "every-round" else per_round
    return StreamAuditResult(
        epsilon_budget=base.epsilon_budget,
        per_round_epsilon=per_round,
        per_window_epsilon=float(per_window),
        rounds=rounds,
        composition=composition,
        participation=participation,
        per_attribute=base.per_attribute,
    )


def audit_continuous_mechanism(
    mechanism,
    *,
    input_grid: int = 41,
    output_grid: int = 401,
    rtol: float = 1e-9,
) -> AuditResult:
    """Audit a continuous wave mechanism via its ``pdf``.

    Evaluates the output density for ``input_grid`` inputs across ``[0, 1]``
    on a shared ``output_grid`` over ``[-b, 1+b]`` and takes the worst
    pointwise ratio. Wave mechanisms have piecewise-constant/linear densities
    so a moderate grid finds the true maximum.
    """
    epsilon = check_epsilon(mechanism.epsilon)
    inputs = np.linspace(0.0, 1.0, input_grid)
    outputs = np.linspace(mechanism.output_low, mechanism.output_high, output_grid)
    densities = np.stack([mechanism.pdf(v, outputs) for v in inputs])
    if densities.min() <= 0:
        raise ValueError(
            "mechanism has zero-density outputs inside its domain; "
            "the LDP ratio is unbounded"
        )
    max_ratio = float((densities.max(axis=0) / densities.min(axis=0)).max())
    bound = float(np.exp(epsilon)) * (1.0 + rtol)
    return AuditResult(epsilon=epsilon, max_ratio=max_ratio, satisfied=max_ratio <= bound)


def audit_matrix(matrix: np.ndarray, epsilon: float, *, rtol: float = 1e-9) -> AuditResult:
    """Audit a per-value transition matrix (columns = exact output pmfs)."""
    epsilon = check_epsilon(epsilon)
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.size == 0:
        raise ValueError(f"matrix must be a non-empty 2-d array, got shape {m.shape}")
    if m.min() <= 0:
        raise ValueError("matrix has zero entries; the LDP ratio is unbounded")
    max_ratio = float((m.max(axis=1) / m.min(axis=1)).max())
    bound = float(np.exp(epsilon)) * (1.0 + rtol)
    return AuditResult(epsilon=epsilon, max_ratio=max_ratio, satisfied=max_ratio <= bound)
