"""Numerical privacy auditing for implemented mechanisms."""

from repro.privacy.audit import (
    AuditResult,
    PlanAuditResult,
    audit_budget,
    audit_continuous_mechanism,
    audit_matrix,
)

__all__ = [
    "AuditResult",
    "PlanAuditResult",
    "audit_budget",
    "audit_continuous_mechanism",
    "audit_matrix",
]
