"""Numerical privacy auditing for implemented mechanisms."""

from repro.privacy.audit import (
    AuditResult,
    PlanAuditResult,
    StreamAuditResult,
    audit_budget,
    audit_continuous_mechanism,
    audit_matrix,
    audit_stream_budget,
)

__all__ = [
    "AuditResult",
    "PlanAuditResult",
    "StreamAuditResult",
    "audit_budget",
    "audit_continuous_mechanism",
    "audit_matrix",
    "audit_stream_budget",
]
