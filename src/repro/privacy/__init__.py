"""Numerical privacy auditing for implemented mechanisms."""

from repro.privacy.audit import AuditResult, audit_continuous_mechanism, audit_matrix

__all__ = ["AuditResult", "audit_continuous_mechanism", "audit_matrix"]
