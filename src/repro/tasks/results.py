"""Typed task results: what a Session hands back to the analyst.

Every task in an :class:`~repro.tasks.plan.AnalysisPlan` resolves to one
:class:`TaskResult` carrying the answer *in the attribute's real-world
units*, the confidence interval (when requested — parametric bootstrap via
:mod:`repro.core.confidence`), the epsilon actually spent on the serving
attribute, and the mechanism the planner chose. An
:class:`AnalysisReport` bundles them with the plan-level budget audit and
round-trips through JSON for dashboards and shard operators.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["TaskResult", "AnalysisReport"]


def _jsonify(value: Any) -> Any:
    """Recursively convert numpy containers/scalars into plain JSON data."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class TaskResult:
    """One answered task.

    Attributes
    ----------
    task / attribute:
        Identity, matching the plan task's ``key`` (``"task:attribute"``).
    value:
        The answer in real-world units: a float (mean, variance), a tuple
        of floats (quantiles, range-query masses), a list (distribution
        histogram), or a name-to-histogram dict (marginals).
    ci:
        Optional ``(lower, upper)`` confidence bounds with the same shape
        as ``value``; ``None`` when no interval was requested or the
        mechanism has no bootstrap model.
    confidence:
        Two-sided coverage of ``ci`` (e.g. 0.9), or ``None``.
    epsilon_spent:
        Budget allocated to the attribute serving this task.
    mechanism:
        Registry name of the serving estimator.
    n_reports:
        Reports aggregated into the answer.
    detail:
        Task-specific context (quantile betas, window endpoints, bucket
        edges) so the result is interpretable standalone.
    """

    task: str
    attribute: str
    value: Any
    ci: Any = None
    confidence: float | None = None
    epsilon_spent: float = 0.0
    mechanism: str = ""
    n_reports: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.task}:{self.attribute}"

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "attribute": self.attribute,
            "value": _jsonify(self.value),
            "ci": _jsonify(self.ci),
            "confidence": self.confidence,
            "epsilon_spent": float(self.epsilon_spent),
            "mechanism": self.mechanism,
            "n_reports": int(self.n_reports),
            "detail": _jsonify(self.detail),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskResult":
        return cls(
            task=data["task"],
            attribute=data["attribute"],
            value=data["value"],
            ci=data.get("ci"),
            confidence=data.get("confidence"),
            epsilon_spent=float(data.get("epsilon_spent", 0.0)),
            mechanism=data.get("mechanism", ""),
            n_reports=int(data.get("n_reports", 0)),
            detail=data.get("detail", {}),
        )


@dataclass(frozen=True)
class AnalysisReport:
    """All of a plan's task results plus the budget accounting."""

    results: tuple[TaskResult, ...]
    epsilon_budget: float
    per_user_epsilon: float
    composition: str

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, key: str) -> TaskResult:
        for result in self.results:
            if result.key == key:
                return result
        raise KeyError(f"no result {key!r}; available: {sorted(self.keys())}")

    def keys(self) -> list[str]:
        return [result.key for result in self.results]

    def to_dict(self) -> dict:
        return {
            "epsilon_budget": float(self.epsilon_budget),
            "per_user_epsilon": float(self.per_user_epsilon),
            "composition": self.composition,
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisReport":
        return cls(
            results=tuple(TaskResult.from_dict(r) for r in data["results"]),
            epsilon_budget=float(data["epsilon_budget"]),
            per_user_epsilon=float(data["per_user_epsilon"]),
            composition=data["composition"],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        return cls.from_dict(json.loads(text))
