"""Budget allocation + mechanism selection for analysis plans.

This is the paper's Section 8 guidance, executable:

* tasks that derive from the full distribution (``Distribution``,
  ``Quantiles``, ``Variance``, ``Marginals``, or any mix) are served by
  Square Wave + EMS — one reconstruction answers them all;
* a *mean-only* attribute is served by a task-specific scalar mechanism —
  SR in the small-epsilon regime, PM otherwise
  (:func:`repro.mean.variance.recommended_scalar_mechanism`);
* a *range-query-only* attribute is served by the hierarchical
  histogram + ADMM estimator, whose tree decomposition is built for
  interval mass;
* discrete attributes route to the bucketize-before-randomize SW variant
  (Section 5.4).

Selections are validated against the central registry's capability
metadata (:func:`repro.api.registry.get_spec`), so a rule can never pick a
mechanism that cannot answer its tasks. The budget is spread across
attributes either by *population splitting* (each user reports one
attribute at full budget — parallel composition) or *budget splitting*
(every user reports every attribute at a weighted fraction — sequential
composition); :meth:`PlannedAnalysis.audit` proves the per-user spend
through :func:`repro.privacy.audit.audit_budget`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import get_spec, make_estimator
from repro.mean.variance import recommended_scalar_mechanism
from repro.privacy.audit import PlanAuditResult, audit_budget
from repro.tasks.plan import AnalysisPlan

__all__ = ["MechanismChoice", "PlannedAnalysis", "plan_analysis"]


@dataclass(frozen=True)
class MechanismChoice:
    """The planner's decision for one attribute."""

    attribute: str
    mechanism: str
    epsilon: float
    d: int | None
    reason: str

    def make(self):
        """Instantiate the chosen estimator through the central registry."""
        return make_estimator(self.mechanism, self.epsilon, self.d)


@dataclass(frozen=True)
class PlannedAnalysis:
    """A fully-resolved plan: one mechanism + budget share per attribute."""

    plan: AnalysisPlan
    choices: tuple[MechanismChoice, ...]
    composition: str

    def choice_for(self, attribute: str) -> MechanismChoice:
        for choice in self.choices:
            if choice.attribute == attribute:
                return choice
        raise ValueError(f"no mechanism planned for attribute {attribute!r}")

    @property
    def allocation(self) -> dict[str, float]:
        """Per-attribute epsilon allocation."""
        return {c.attribute: c.epsilon for c in self.choices}

    @property
    def per_user_epsilon(self) -> float:
        """Worst-case budget any single user spends under this plan."""
        return self.audit().per_user_epsilon

    def audit(self) -> PlanAuditResult:
        """Verify the allocation composes within the plan budget."""
        return audit_budget(
            self.allocation, self.plan.epsilon, composition=self.composition
        )

    def stream_audit(self, rounds: int, *, participation: str = "every-round"):
        """Per-window effective epsilon when this plan runs continuously.

        ``rounds`` is the window length in collection rounds (a sliding
        window's ``W``, a decayed state's effective window, or the tick
        count for cumulative collection). Returns
        :class:`repro.privacy.audit.StreamAuditResult`; see
        :func:`repro.privacy.audit.audit_stream_budget` for the
        composition/participation semantics.
        """
        from repro.privacy.audit import audit_stream_budget

        return audit_stream_budget(
            self.allocation,
            self.plan.epsilon,
            rounds=rounds,
            composition=self.composition,
            participation=participation,
        )

    def make_estimators(self) -> dict:
        """One estimator per attribute, built through the registry."""
        return {c.attribute: c.make() for c in self.choices}

    def describe(self) -> str:
        """Human-readable planning summary (one line per attribute)."""
        lines = []
        for c in self.choices:
            lines.append(
                f"{c.attribute}: {c.mechanism} at epsilon={c.epsilon:.4g} — {c.reason}"
            )
        audit = self.audit()
        lines.append(
            f"per-user epsilon {audit.per_user_epsilon:.4g} of "
            f"{audit.epsilon_budget:.4g} ({audit.composition} composition)"
        )
        return "\n".join(lines)


def _next_power(value: int, base: int) -> int:
    power = base
    while power < value:
        power *= base
    return power


#: Branching factor of planner-built hierarchical estimators (the registry
#: default for ``hh-admm``).
_HH_BRANCHING = 4


def _select_mechanism(plan: AnalysisPlan, attribute: str, epsilon: float) -> MechanismChoice:
    spec = plan.attribute(attribute)
    tasks = plan.tasks_for(attribute)
    kinds = {task.task for task in tasks}

    if kinds == {"mean"}:
        mechanism = recommended_scalar_mechanism(epsilon)
        d = None
        reason = (
            "mean-only workload: a task-specific scalar mechanism beats a "
            f"full reconstruction ({mechanism} is the epsilon={epsilon:.3g} regime choice)"
        )
    elif kinds <= {"range_queries"}:
        mechanism = "hh-admm"
        d = _next_power(spec.d, _HH_BRANCHING)
        reason = (
            "range-query-only workload: hierarchical histogram + ADMM "
            "decomposes interval mass into O(log d) nodes"
        )
        if d != spec.d:
            reason += f" (granularity snapped to {d}, the tree's power-of-{_HH_BRANCHING} grid)"
    else:
        mechanism = "sw-discrete-ems" if spec.kind == "discrete" else "sw-ems"
        d = spec.d
        reason = (
            "distribution-derived workload: SW+EMS reconstructs the full "
            "distribution once and serves every task from it"
            + (" (discrete variant, Section 5.4)" if spec.kind == "discrete" else "")
        )

    registry_spec = get_spec(mechanism)
    for task in tasks:
        for metric in task.metrics:
            if not registry_spec.supports(metric):
                raise ValueError(
                    f"planner bug: {mechanism!r} cannot serve metric {metric!r} "
                    f"needed by task {task.key!r}"
                )
    return MechanismChoice(
        attribute=attribute, mechanism=mechanism, epsilon=epsilon, d=d, reason=reason
    )


def plan_analysis(plan: AnalysisPlan) -> PlannedAnalysis:
    """Resolve a declarative plan into per-attribute mechanism choices.

    Budget allocation: under ``split="population"`` every attribute runs at
    the full plan epsilon (each user reports exactly one attribute, chosen
    with probability proportional to attribute weight — parallel
    composition keeps the per-user spend at the plan budget). Under
    ``split="budget"`` each attribute receives a weight-proportional slice
    and every user reports all of them (sequential composition).
    """
    names = [a.name for a in plan.attributes]
    if plan.split == "population":
        allocation = {name: float(plan.epsilon) for name in names}
        composition = "parallel"
    else:
        total_weight = sum(a.weight for a in plan.attributes)
        allocation = {
            a.name: float(plan.epsilon) * a.weight / total_weight
            for a in plan.attributes
        }
        composition = "sequential"
    choices = tuple(
        _select_mechanism(plan, name, allocation[name]) for name in names
    )
    planned = PlannedAnalysis(plan=plan, choices=choices, composition=composition)
    audit = planned.audit()
    if not audit.satisfied:
        raise ValueError(
            f"planner bug: allocation spends {audit.per_user_epsilon} per user, "
            f"over the plan budget {audit.epsilon_budget}"
        )
    return planned
