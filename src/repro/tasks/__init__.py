"""repro.tasks — the analyst-facing front door.

Declare *what* you want to know (:class:`AnalysisPlan`: attributes +
tasks + budget), let the planner pick mechanisms and allocate budget per
the paper's Section 8 guidance (:func:`plan_analysis`), and execute
through a streaming, mergeable :class:`Session` that returns typed
:class:`TaskResult` objects in real-world units::

    from repro.tasks import AnalysisPlan, AttributeSpec, Mean, Quantiles, Session

    plan = AnalysisPlan(
        epsilon=1.0,
        attributes=(AttributeSpec("income", low=0, high=250_000, d=256),),
        tasks=(Mean("income"), Quantiles("income")),
    )
    session = Session(plan)
    session.partial_fit({"income": incomes})
    report = session.results()
    report["mean:income"].value
"""

from repro.tasks.plan import (
    ATTRIBUTE_KINDS,
    SPLIT_STRATEGIES,
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Marginals,
    Mean,
    Quantiles,
    RangeQueries,
    Task,
    Variance,
    load_plan,
    task_from_dict,
)
from repro.tasks.planner import MechanismChoice, PlannedAnalysis, plan_analysis
from repro.tasks.results import AnalysisReport, TaskResult
from repro.tasks.session import Session

__all__ = [
    "AnalysisPlan",
    "AttributeSpec",
    "Task",
    "Distribution",
    "Mean",
    "Variance",
    "Quantiles",
    "RangeQueries",
    "Marginals",
    "task_from_dict",
    "load_plan",
    "ATTRIBUTE_KINDS",
    "SPLIT_STRATEGIES",
    "MechanismChoice",
    "PlannedAnalysis",
    "plan_analysis",
    "TaskResult",
    "AnalysisReport",
    "Session",
]
