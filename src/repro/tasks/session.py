"""Plan execution: privatize → ingest (across shards) → typed results.

A :class:`Session` is the runtime of one :class:`~repro.tasks.plan.AnalysisPlan`.
It owns one registry-built estimator per attribute (chosen by
:func:`~repro.tasks.planner.plan_analysis`) and follows the same streaming
lifecycle as every estimator in the package:

* ``privatize(data, rng)`` — client side; applies the plan's split
  strategy (population or budget) and randomizes values;
* ``ingest(reports)`` / ``partial_fit(data, rng)`` — server side, streaming;
* ``merge(other)`` / ``to_state()`` / ``from_state()`` — shard-and-merge
  deployments combine sessions exactly, because every underlying estimator
  keeps linear sufficient statistics;
* ``results()`` — answer every task, in real-world units, with optional
  bootstrap confidence intervals and per-task budget attribution.

Sessions also speak the wire formats. The legacy v1 helpers
(``encode_reports``/``ingest_payload``) carry wave and scalar reports as
attribute-stamped SW JSON lines; the protocol-v2 pair
``to_feed``/``ingest_feed`` round-trips *every* mechanism family — each
attribute's reports travel under its estimator's payload codec
(:mod:`repro.protocol.codecs`), either as one mixed columnar binary frame
(:mod:`repro.protocol.frames`) or as envelope JSON lines — so a session is
servable by a :class:`repro.protocol.server.PlanServer` over the same wire
as a plain collection round.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.api.base import Estimator
from repro.api.errors import EmptyAggregateError
from repro.core.pipeline import WaveEstimator
from repro.metrics.queries import range_queries
from repro.multidim.marginals import split_population
from repro.protocol.messages import decode_batch_grouped, encode_batch
from repro.tasks.plan import AnalysisPlan, AttributeSpec, Task
from repro.tasks.planner import PlannedAnalysis, plan_analysis
from repro.tasks.results import AnalysisReport, TaskResult
from repro.utils.histograms import (
    histogram_mean,
    histogram_quantile,
    histogram_variance,
)
from repro.utils.rng import RngLike, as_generator

__all__ = ["Session"]


def _task_context(plan: AnalysisPlan, attribute: str) -> str:
    """``"tasks: mean, quantiles"`` — which answers an empty shard blocks."""
    names = sorted({task.task for task in plan.tasks_for(attribute)})
    return f"tasks: {', '.join(names)}"


class Session:
    """Executes one analysis plan over one (possibly sharded) population.

    Parameters
    ----------
    plan:
        The declarative plan to execute.
    planned:
        A pre-resolved :class:`~repro.tasks.planner.PlannedAnalysis`;
        resolved from ``plan`` when omitted. Passing it in lets a
        coordinator plan once and fan identical sessions out to shards.
    """

    def __init__(self, plan: AnalysisPlan, *, planned: PlannedAnalysis | None = None) -> None:
        if planned is None:
            planned = plan_analysis(plan)
        elif planned.plan.to_dict() != plan.to_dict():
            raise ValueError("planned analysis was resolved from a different plan")
        self.plan = plan
        self.planned = planned
        self._estimators: dict[str, Estimator] = planned.make_estimators()

    # -- introspection -----------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.plan.attributes)

    @property
    def estimators(self) -> dict[str, Estimator]:
        """Per-attribute estimators (shared aggregation state)."""
        return dict(self._estimators)

    @property
    def n_reports(self) -> dict[str, int]:
        """Reports ingested so far, per attribute."""
        return {name: est.n_reports for name, est in self._estimators.items()}

    def audit(self):
        """Plan-level budget audit (:class:`repro.privacy.audit.PlanAuditResult`)."""
        return self.planned.audit()

    @property
    def per_user_epsilon(self) -> float:
        return self.planned.per_user_epsilon

    # -- client side -------------------------------------------------------
    def _check_data(self, data: Mapping[str, Any]) -> dict[str, np.ndarray]:
        missing = set(self.attributes) - set(data)
        if missing:
            raise ValueError(f"data is missing attributes {sorted(missing)}")
        unknown = set(data) - set(self.attributes)
        if unknown:
            raise ValueError(f"data has undeclared attributes {sorted(unknown)}")
        arrays = {}
        n = None
        for name in self.attributes:
            arr = np.asarray(data[name], dtype=np.float64)
            if arr.ndim != 1 or arr.size == 0:
                raise ValueError(f"attribute {name!r}: values must be a non-empty 1-d array")
            if n is None:
                n = arr.size
            elif arr.size != n:
                raise ValueError(
                    f"attribute {name!r} has {arr.size} values, expected {n} "
                    "(one row per user across all attributes)"
                )
            arrays[name] = arr
        return arrays

    def _assign(self, n: int, rng) -> np.ndarray:
        weights = np.asarray([a.weight for a in self.plan.attributes], dtype=np.float64)
        k = weights.size
        if np.allclose(weights, weights[0]):
            return split_population(n, k, rng)
        return as_generator(rng).choice(k, size=n, p=weights / weights.sum())

    def privatize(self, data: Mapping[str, Any], rng: RngLike = None) -> dict[str, Any]:
        """Client side: normalize, split, and randomize one batch of users.

        ``data`` maps every plan attribute to one value per user (arrays
        share the user axis). Under population splitting each user is
        assigned a single attribute (weight-proportional) and spends the
        whole budget on it; under budget splitting every user reports every
        attribute at its allocated fraction. Returns per-attribute LDP
        reports, ready for :meth:`ingest` or :meth:`encode_reports`.
        """
        arrays = self._check_data(data)
        gen = as_generator(rng)
        reports: dict[str, Any] = {}
        if self.plan.split == "population":
            n = next(iter(arrays.values())).size
            assignment = self._assign(n, gen)
            for index, name in enumerate(self.attributes):
                group = arrays[name][assignment == index]
                if group.size == 0:
                    continue
                unit = self.plan.attribute(name).to_unit(group)
                reports[name] = self._estimators[name].privatize(unit, rng=gen)
        else:
            for name in self.attributes:
                unit = self.plan.attribute(name).to_unit(arrays[name])
                reports[name] = self._estimators[name].privatize(unit, rng=gen)
        return reports

    # -- server side -------------------------------------------------------
    def ingest(self, reports: Mapping[str, Any]) -> None:
        """Fold per-attribute reports into the aggregation state."""
        unknown = set(reports) - set(self.attributes)
        if unknown:
            raise ValueError(f"reports for undeclared attributes {sorted(unknown)}")
        for name, batch in reports.items():
            self._estimators[name].ingest(batch)

    def partial_fit(self, data: Mapping[str, Any], rng: RngLike = None) -> "Session":
        """Privatize + ingest one shard of users; returns ``self``."""
        self.ingest(self.privatize(data, rng=rng))
        return self

    @classmethod
    def fit_sharded(
        cls,
        plan: AnalysisPlan,
        data: Mapping[str, Any],
        *,
        shards: int = 1,
        rng: RngLike = None,
        planned: PlannedAnalysis | None = None,
    ) -> "Session":
        """Run a plan as ``shards`` shard sessions over disjoint user slices
        and merge them exactly — the deployment shape, in one call.

        One generator drives every shard (a seed-like ``rng`` is
        materialized once), so shard noise is independent. Returns the
        merged session, ready for :meth:`results`.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not data:
            raise ValueError("data must be non-empty")
        gen = as_generator(rng)
        if planned is None:
            planned = plan_analysis(plan)
        arrays = {k: np.asarray(v, dtype=np.float64) for k, v in data.items()}
        n = next(iter(arrays.values())).size
        if n == 0:
            raise ValueError("data must contain at least one user")
        bounds = np.linspace(0, n, shards + 1).astype(int)
        merged: Session | None = None
        for lo, hi in zip(bounds[:-1], bounds[1:], strict=True):
            if lo == hi:
                continue
            shard = cls(plan, planned=planned).partial_fit(
                {k: v[lo:hi] for k, v in arrays.items()}, rng=gen
            )
            merged = shard if merged is None else merged.merge(shard)
        assert merged is not None
        return merged

    def reset(self) -> None:
        for estimator in self._estimators.values():
            estimator.reset()

    # -- wire format -------------------------------------------------------
    def _require_wire_servable(self, name: str) -> None:
        """Reject attributes whose estimators exchange structured reports.

        The JSON-lines wire carries one float per report, which fits the
        wave and scalar families; hierarchical estimators bundle per-level
        oracle reports (``TreeReports``) and must travel via ``to_state``.
        """
        from repro.mean.scalar import ScalarMeanEstimator

        estimator = self._estimators[name]
        if not isinstance(estimator, (WaveEstimator, ScalarMeanEstimator)):
            raise ValueError(
                f"attribute {name!r}: {type(estimator).__name__} reports are "
                "not plain numeric values and cannot travel the JSON-lines "
                "wire format; ship shard state via to_state() instead"
            )

    def encode_reports(self, reports: Mapping[str, Any], round_id: str) -> str:
        """Encode per-attribute reports as attribute-stamped JSON lines."""
        unknown = set(reports) - set(self.attributes)
        if unknown:
            raise ValueError(f"reports for undeclared attributes {sorted(unknown)}")
        chunks = []
        for name, batch in reports.items():
            self._require_wire_servable(name)
            arr = np.asarray(batch)
            if arr.ndim != 1 or arr.dtype.kind not in "fiu":
                raise ValueError(
                    f"attribute {name!r}: reports of "
                    f"{type(self._estimators[name]).__name__} are not plain "
                    "numeric values and cannot travel the JSON-lines wire format"
                )
            chunks.append(encode_batch(round_id, arr.astype(np.float64), attr=name))
        if not chunks:
            raise ValueError("no reports to encode")
        return "\n".join(chunks)

    def ingest_payload(self, payload: str, round_id: str | None = None) -> int:
        """Decode a mixed multi-attribute feed and route it; returns count."""
        groups = decode_batch_grouped(payload, expected_round=round_id)
        unknown = set(groups) - set(self.attributes)
        if unknown:
            raise ValueError(f"payload reports undeclared attributes {sorted(unknown)}")
        for name in groups:
            self._require_wire_servable(name)
        total = 0
        for name, values in groups.items():
            self._estimators[name].ingest(values)
            total += values.size
        return total

    def to_feed(
        self,
        reports: Mapping[str, Any],
        round_id: str,
        *,
        format: str = "frame",
    ) -> bytes | str:
        """Encode per-attribute reports as one mixed protocol-v2 feed.

        Unlike the v1 :meth:`encode_reports`, every mechanism family is
        servable: each attribute's batch travels under its estimator's
        payload codec. ``format="frame"`` returns the columnar binary form
        (one frame, one block per attribute), ``format="jsonl"`` the
        envelope JSON-lines form. Invert with :meth:`ingest_feed` (or serve
        through :class:`repro.protocol.server.PlanServer`).
        """
        from repro.protocol.codecs import codec_for_estimator
        from repro.protocol.frames import encode_frame_blocks
        from repro.protocol.messages import encode_batch_v2

        unknown = set(reports) - set(self.attributes)
        if unknown:
            raise ValueError(f"reports for undeclared attributes {sorted(unknown)}")
        if not reports:
            raise ValueError("no reports to encode")
        blocks = [
            (name, codec_for_estimator(self._estimators[name]), batch)
            for name, batch in reports.items()
        ]
        if format == "frame":
            return encode_frame_blocks(round_id, blocks)
        if format == "jsonl":
            return "\n".join(
                encode_batch_v2(round_id, batch, codec, attr=name)
                for name, codec, batch in blocks
            )
        raise ValueError(f"format must be 'frame' or 'jsonl', got {format!r}")

    def ingest_feed(self, feed: bytes | str, round_id: str | None = None) -> int:
        """Decode a mixed frame/JSONL feed and route it; returns the count.

        Accepts the binary frame form (``bytes``) or v1/v2 JSON lines
        (``str``); each attribute's payloads must travel under the codec
        its planned estimator expects. The feed ingests **atomically**: if
        any attribute's block is rejected — wrong codec, reports outside
        the mechanism's domain — no aggregator keeps any of the feed, so a
        corrected retry cannot double-count the blocks that were valid.
        """
        from repro.protocol.codecs import codec_for_estimator
        from repro.protocol.frames import decode_any_feed

        _, groups = decode_any_feed(feed, expected_round=round_id)
        unknown = set(groups) - set(self.attributes)
        if unknown:
            raise ValueError(f"feed reports undeclared attributes {sorted(unknown)}")
        for name, group in groups.items():
            expected = codec_for_estimator(self._estimators[name]).name
            if group.mechanism != expected:
                raise ValueError(
                    f"attribute {name!r}: feed carries {group.mechanism!r} "
                    f"payloads, plan estimator expects {expected!r}"
                )
        # All-or-nothing: aggregation state is O(state), so snapshotting it
        # is cheap, and ingest errors (e.g. out-of-domain reports) must not
        # leave the earlier attributes' blocks half-applied.
        snapshots = {name: self._estimators[name]._state() for name in groups}
        total = 0
        try:
            for name, group in groups.items():
                self._estimators[name].ingest(group.reports)
                total += group.n
        except Exception:
            for name, state in snapshots.items():
                self._estimators[name]._load_state(state)
            raise
        return total

    # -- shard merge + serialization --------------------------------------
    def merge(self, other: "Session") -> "Session":
        """Combine another shard's session state into this one, exactly."""
        if not isinstance(other, Session):
            raise TypeError(f"cannot merge {type(other).__name__} into Session")
        if other.plan.to_dict() != self.plan.to_dict():
            raise ValueError("cannot merge sessions running different plans")
        for name, estimator in self._estimators.items():
            estimator.merge(other._estimators[name])
        return self

    def to_state(self) -> dict:
        """Serialize the plan and every aggregator for cross-shard transport."""
        return {
            "plan": self.plan.to_dict(),
            "estimators": {
                name: est.to_state() for name, est in self._estimators.items()
            },
        }

    @classmethod
    def from_state(cls, payload: dict) -> "Session":
        """Rebuild a session (plan + aggregation state) from :meth:`to_state`."""
        plan = AnalysisPlan.from_dict(payload["plan"])
        session = cls(plan)
        states = payload["estimators"]
        if set(states) != set(session.attributes):
            raise ValueError(
                f"state covers attributes {sorted(states)}, plan declares "
                f"{sorted(session.attributes)}"
            )
        for name, fresh in session._estimators.items():
            rebuilt = Estimator.from_state(states[name])
            if rebuilt._params() != fresh._params():
                raise ValueError(
                    f"attribute {name!r}: state was produced by a differently-"
                    "configured estimator than this plan resolves to"
                )
            session._estimators[name] = rebuilt
        return session

    @classmethod
    def from_estimators(
        cls,
        plan: AnalysisPlan,
        estimators: Mapping[str, Estimator],
        *,
        planned: PlannedAnalysis | None = None,
    ) -> "Session":
        """Adopt already-aggregated estimators as a session's state.

        The merge tier of a sharded deployment folds shard snapshots into
        one estimator per attribute; this wraps them back into a session so
        :meth:`results` can answer the plan without re-serializing state.
        Each estimator must match the configuration the plan resolves to
        for its attribute (same check as :meth:`from_state`); the session
        shares the passed aggregation state rather than copying it.
        """
        session = cls(plan, planned=planned)
        if set(estimators) != set(session.attributes):
            raise ValueError(
                f"estimators cover attributes {sorted(estimators)}, plan "
                f"declares {sorted(session.attributes)}"
            )
        for name, fresh in session._estimators.items():
            adopted = estimators[name]
            if adopted._params() != fresh._params():
                raise ValueError(
                    f"attribute {name!r}: estimator is configured differently "
                    "than this plan resolves to"
                )
            session._estimators[name] = adopted
        return session

    # -- results -----------------------------------------------------------
    def _estimate(self, name: str):
        try:
            return self._estimators[name].estimate()
        except EmptyAggregateError as exc:
            raise EmptyAggregateError(
                f"no reports ingested for attribute {name!r} "
                f"({_task_context(self.plan, name)})"
            ) from exc

    def _bands(self, name: str, confidence: float, n_bootstrap: int, rng):
        estimator = self._estimators[name]
        if not isinstance(estimator, WaveEstimator):
            return None
        return estimator.confidence_bands(
            coverage=confidence, n_bootstrap=n_bootstrap, rng=rng
        )

    @staticmethod
    def _stat_ci(bands, confidence: float, stat) -> tuple[float, float] | None:
        """CI of a scalar statistic pushed through the bootstrap samples."""
        if bands is None:
            return None
        stats = np.asarray([stat(sample) for sample in bands.samples])
        point = stat(bands.point)
        center = np.quantile(stats, 0.5)
        tail = (1.0 - confidence) / 2.0
        lower = point + (np.quantile(stats, tail) - center)
        upper = point + (np.quantile(stats, 1.0 - tail) - center)
        return (float(lower), float(upper))

    def _task_result(
        self,
        task: Task,
        spec: AttributeSpec,
        estimate,
        bands,
        confidence: float | None,
    ) -> TaskResult:
        choice = self.planned.choice_for(spec.name)
        estimator = self._estimators[spec.name]
        common = dict(
            task=task.task,
            attribute=spec.name,
            confidence=confidence if bands is not None else None,
            epsilon_spent=choice.epsilon,
            mechanism=choice.mechanism,
            n_reports=estimator.n_reports,
        )
        if task.task == "mean":
            if estimator.kind == "scalar":
                value = float(spec.from_unit(estimate))
                return TaskResult(value=value, **{**common, "confidence": None})
            value = float(spec.from_unit(histogram_mean(estimate)))
            ci = self._stat_ci(
                bands, confidence or 0.0, lambda h: float(spec.from_unit(histogram_mean(h)))
            )
            return TaskResult(value=value, ci=ci, **common)
        if task.task == "variance":
            scale = spec.span**2
            value = histogram_variance(estimate) * scale
            ci = self._stat_ci(
                bands, confidence or 0.0, lambda h: histogram_variance(h) * scale
            )
            return TaskResult(value=value, ci=ci, **common)
        if task.task == "quantiles":
            betas = task.quantiles
            value = tuple(
                float(spec.from_unit(histogram_quantile(estimate, q))) for q in betas
            )
            ci = None
            if bands is not None:
                per_q = [
                    self._stat_ci(
                        bands,
                        confidence or 0.0,
                        lambda h, q=q: float(spec.from_unit(histogram_quantile(h, q))),
                    )
                    for q in betas
                ]
                ci = (tuple(lo for lo, _ in per_q), tuple(hi for _, hi in per_q))
            return TaskResult(
                value=value, ci=ci, detail={"quantiles": list(betas)}, **common
            )
        if task.task == "range_queries":
            unit_windows = [
                ((lo - spec.low) / spec.span, (hi - spec.low) / spec.span)
                for lo, hi in task.windows
            ]
            value = tuple(float(v) for v in range_queries(estimate, unit_windows))
            ci = None
            if bands is not None:
                per_w = [
                    self._stat_ci(
                        bands,
                        confidence or 0.0,
                        lambda h, w=w: float(range_queries(h, [w])[0]),
                    )
                    for w in unit_windows
                ]
                ci = (tuple(lo for lo, _ in per_w), tuple(hi for _, hi in per_w))
            return TaskResult(
                value=value,
                ci=ci,
                detail={"windows": [list(w) for w in task.windows]},
                **common,
            )
        if task.task == "distribution":
            ci = None
            if bands is not None:
                ci = (bands.lower.tolist(), bands.upper.tolist())
            return TaskResult(
                value=np.asarray(estimate, dtype=np.float64).tolist(),
                ci=ci,
                detail={"edges": spec.bucket_edges(np.asarray(estimate).size).tolist()},
                **common,
            )
        raise ValueError(f"session cannot answer task type {task.task!r}")

    def results(
        self,
        *,
        confidence: float | None = None,
        n_bootstrap: int = 100,
        rng: RngLike = None,
        precomputed: Mapping[str, Any] | None = None,
    ) -> AnalysisReport:
        """Answer every task in the plan from the state aggregated so far.

        ``confidence`` turns on parametric-bootstrap intervals
        (:mod:`repro.core.confidence`) for attributes served by wave
        estimators; scalar and hierarchical mechanisms report ``ci=None``.
        ``precomputed`` supplies already-solved per-attribute estimates —
        the incremental posterior cache of a
        :class:`repro.protocol.server.PlanServer` — so serving doesn't
        re-run reconstructions the caller just produced; attributes absent
        from it are estimated fresh. Raises
        :class:`repro.EmptyAggregateError` naming the attribute and its
        tasks if any aggregator is still empty.
        """
        if confidence is not None and not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        gen = as_generator(rng)

        estimates: dict[str, Any] = {}
        bands: dict[str, Any] = {}
        for name in self.attributes:
            if precomputed is not None and name in precomputed:
                estimates[name] = precomputed[name]
            else:
                estimates[name] = self._estimate(name)
            # Bootstrap only where some task will consume the bands —
            # marginals-only attributes would waste n_bootstrap EM solves.
            wants_bands = confidence is not None and any(
                task.task != "marginals" for task in self.plan.tasks_for(name)
            )
            bands[name] = (
                self._bands(name, confidence, n_bootstrap, gen)
                if wants_bands
                else None
            )

        results: list[TaskResult] = []
        for task in self.plan.tasks:
            if task.task == "marginals":
                value = {
                    name: np.asarray(estimates[name], dtype=np.float64).tolist()
                    for name in task.attributes
                }
                detail = {
                    "edges": {
                        name: self.plan.attribute(name)
                        .bucket_edges(np.asarray(estimates[name]).size)
                        .tolist()
                        for name in task.attributes
                    }
                }
                choices = [self.planned.choice_for(name) for name in task.attributes]
                # Mirror audit_budget's composition rule: budget-split users
                # report every attribute (spends add up), population-split
                # users report one (worst single allocation).
                spent = (
                    sum(c.epsilon for c in choices)
                    if self.planned.composition == "sequential"
                    else max(c.epsilon for c in choices)
                )
                results.append(
                    TaskResult(
                        task=task.task,
                        attribute="+".join(task.attributes),
                        value=value,
                        detail=detail,
                        epsilon_spent=spent,
                        mechanism=",".join(sorted({c.mechanism for c in choices})),
                        n_reports=sum(
                            self._estimators[name].n_reports for name in task.attributes
                        ),
                    )
                )
                continue
            name = task.attributes[0]
            results.append(
                self._task_result(
                    task,
                    self.plan.attribute(name),
                    estimates[name],
                    bands[name],
                    confidence,
                )
            )

        audit = self.audit()
        return AnalysisReport(
            results=tuple(results),
            epsilon_budget=audit.epsilon_budget,
            per_user_epsilon=audit.per_user_epsilon,
            composition=audit.composition,
        )

    def __repr__(self) -> str:
        mechanisms = {c.attribute: c.mechanism for c in self.planned.choices}
        return (
            f"Session(epsilon={self.plan.epsilon}, split={self.plan.split!r}, "
            f"mechanisms={mechanisms}, n_reports={self.n_reports})"
        )
