"""Declarative analysis plans: attributes + tasks, no mechanism names.

The paper's central claim (Sections 1, 6.3, 8) is that an analyst should
state *what they want to know* — means, quantiles, range queries, whole
distributions — and let the system decide how to collect it. An
:class:`AnalysisPlan` is that statement: it names the attributes being
collected (domain, type, granularity) and the tasks to answer over them,
plus the total per-user privacy budget. Mechanism selection and budget
allocation happen later, in :mod:`repro.tasks.planner`; execution in
:mod:`repro.tasks.session`.

Plans are plain data: they serialize to/from JSON (and load from TOML), so
a deployment can check its collection contract into version control and
drive the CLI's ``analyze`` subcommand from the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import ClassVar

import numpy as np

from repro.metrics.statistics import DECILES
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = [
    "ATTRIBUTE_KINDS",
    "SPLIT_STRATEGIES",
    "AttributeSpec",
    "Task",
    "Distribution",
    "Mean",
    "Variance",
    "Quantiles",
    "RangeQueries",
    "Marginals",
    "task_from_dict",
    "AnalysisPlan",
    "load_plan",
]

#: Value types an attribute can declare. ``"discrete"`` routes to the
#: bucketize-before-randomize mechanisms (paper Section 5.4).
ATTRIBUTE_KINDS: tuple[str, ...] = ("continuous", "discrete")

#: How the planner spreads the budget over attributes: ``"population"``
#: assigns each user one attribute at full budget (parallel composition,
#: the Section 4.2 recommendation); ``"budget"`` has every user report
#: every attribute at a fraction of the budget (sequential composition).
SPLIT_STRATEGIES: tuple[str, ...] = ("population", "budget")


@dataclass(frozen=True)
class AttributeSpec:
    """One collected attribute: its name, domain, type, and granularity.

    ``low``/``high`` are the attribute's real-world bounds; estimators run
    on the normalized unit domain and results are mapped back. ``weight``
    biases the planner's budget/population split toward this attribute.
    """

    name: str
    low: float = 0.0
    high: float = 1.0
    d: int = 256
    kind: str = "continuous"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"attribute name must be a non-empty string, got {self.name!r}")
        if not (np.isfinite(self.low) and np.isfinite(self.high)):
            raise ValueError(f"attribute {self.name!r}: domain bounds must be finite")
        if self.high <= self.low:
            raise ValueError(
                f"attribute {self.name!r}: need low < high, got [{self.low}, {self.high}]"
            )
        check_domain_size(self.d)
        if self.kind not in ATTRIBUTE_KINDS:
            raise ValueError(
                f"attribute {self.name!r}: kind must be one of {ATTRIBUTE_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.weight > 0:
            raise ValueError(f"attribute {self.name!r}: weight must be > 0")

    @property
    def span(self) -> float:
        return float(self.high - self.low)

    def to_unit(self, values: np.ndarray) -> np.ndarray:
        """Map raw values from ``[low, high]`` onto the unit domain."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size and (
            not np.isfinite(arr).all() or arr.min() < self.low or arr.max() > self.high
        ):
            raise ValueError(
                f"attribute {self.name!r}: values must be finite and inside "
                f"[{self.low}, {self.high}]"
            )
        return (arr - self.low) / self.span

    def from_unit(self, positions) -> np.ndarray | float:
        """Map unit-domain positions back into ``[low, high]``."""
        return self.low + np.asarray(positions, dtype=np.float64) * self.span

    def bucket_edges(self, d: int | None = None) -> np.ndarray:
        """Edges of ``d`` equal-width buckets over the real-world domain."""
        return np.linspace(self.low, self.high, (d or self.d) + 1)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "low": float(self.low),
            "high": float(self.high),
            "d": int(self.d),
            "kind": self.kind,
            "weight": float(self.weight),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributeSpec":
        return _construct(cls, data)


def _construct(cls, data: dict):
    """Build a plan component, turning unknown/misnamed keys into ValueError.

    Plan files are hand-written; a typo'd key must surface as the CLI's
    clean ``error:`` path (which catches ``ValueError``), not a traceback.
    """
    try:
        return cls(**data)
    except TypeError as exc:
        raise ValueError(f"invalid {cls.__name__} entry: {exc}") from None


@dataclass(frozen=True)
class Task:
    """Base class for analysis tasks; subclasses name one or more attributes."""

    #: Wire/task-type name; subclasses override.
    task: ClassVar[str] = ""

    #: Registry metrics the serving mechanism must support (capability check).
    metrics: ClassVar[tuple[str, ...]] = ()

    @property
    def attributes(self) -> tuple[str, ...]:
        raise NotImplementedError

    @property
    def key(self) -> str:
        """Stable lookup key for this task's result: ``"task:attr[+attr]"``."""
        return f"{self.task}:{'+'.join(self.attributes)}"

    def to_dict(self) -> dict:
        data = {"task": self.task}
        for f in fields(self):
            if f.init:
                value = getattr(self, f.name)
                data[f.name] = list(value) if isinstance(value, tuple) else value
        return data


@dataclass(frozen=True)
class _SingleAttributeTask(Task):
    attribute: str = ""

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError(f"{type(self).__name__} needs an attribute name")

    @property
    def attributes(self) -> tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class Distribution(_SingleAttributeTask):
    """Reconstruct the attribute's full distribution (the paper's headline)."""

    task = "distribution"
    metrics = ("w1",)


@dataclass(frozen=True)
class Mean(_SingleAttributeTask):
    """Estimate the attribute's mean."""

    task = "mean"
    metrics = ("mean",)


@dataclass(frozen=True)
class Variance(_SingleAttributeTask):
    """Estimate the attribute's variance."""

    task = "variance"
    metrics = ("variance",)


@dataclass(frozen=True)
class Quantiles(_SingleAttributeTask):
    """Estimate a set of quantiles (defaults to the paper's deciles)."""

    task = "quantiles"
    metrics = ("quantile",)

    quantiles: tuple[float, ...] = DECILES

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "quantiles", tuple(float(q) for q in self.quantiles))
        if not self.quantiles:
            raise ValueError("quantiles must be non-empty")
        if any(not 0.0 <= q <= 1.0 for q in self.quantiles):
            raise ValueError(f"quantiles must lie in [0, 1], got {self.quantiles}")


@dataclass(frozen=True)
class RangeQueries(_SingleAttributeTask):
    """Estimate the mass inside ``(low, high)`` windows of the real domain."""

    task = "range_queries"
    metrics = ("range-0.1",)

    windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self,
            "windows",
            tuple((float(lo), float(hi)) for lo, hi in self.windows),
        )
        if not self.windows:
            raise ValueError("windows must be non-empty")
        for lo, hi in self.windows:
            if not (np.isfinite(lo) and np.isfinite(hi)) or hi < lo:
                raise ValueError(f"window endpoints must satisfy low <= high, got ({lo}, {hi})")

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "attribute": self.attribute,
            "windows": [list(w) for w in self.windows],
        }


@dataclass(frozen=True)
class Marginals(Task):
    """Reconstruct every named attribute's marginal distribution together."""

    task = "marginals"
    metrics = ("w1",)

    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(str(n) for n in self.names))
        if len(self.names) < 2:
            raise ValueError("Marginals needs at least two attribute names")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"Marginals attribute names must be unique, got {self.names}")

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.names


#: Task-type registry for deserialization; keys are wire names.
TASK_TYPES: dict[str, type] = {
    cls.task: cls
    for cls in (Distribution, Mean, Variance, Quantiles, RangeQueries, Marginals)
}


def task_from_dict(data: dict) -> Task:
    """Rebuild a task from :meth:`Task.to_dict` output (or a plan file)."""
    data = dict(data)
    name = data.pop("task", None)
    try:
        cls = TASK_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown task type {name!r}; known: {sorted(TASK_TYPES)}"
        ) from None
    if cls is RangeQueries and "windows" in data:
        data["windows"] = tuple(tuple(w) for w in data["windows"])
    if cls is Marginals and "names" in data:
        data["names"] = tuple(data["names"])
    if cls is Quantiles and "quantiles" in data:
        data["quantiles"] = tuple(data["quantiles"])
    return _construct(cls, data)


@dataclass(frozen=True)
class AnalysisPlan:
    """A declarative collection contract: budget, attributes, tasks.

    Parameters
    ----------
    epsilon:
        Total per-user privacy budget for the whole plan.
    attributes:
        The attributes being collected; every one must be referenced by at
        least one task (an unreferenced attribute would silently waste
        budget).
    tasks:
        What to answer; each task references declared attributes.
    split:
        Budget strategy over attributes (see :data:`SPLIT_STRATEGIES`).
    """

    epsilon: float
    attributes: tuple[AttributeSpec, ...]
    tasks: tuple[Task, ...]
    split: str = "population"

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        object.__setattr__(self, "attributes", tuple(self.attributes))
        object.__setattr__(self, "tasks", tuple(self.tasks))
        if not self.attributes:
            raise ValueError("plan must declare at least one attribute")
        if not self.tasks:
            raise ValueError("plan must declare at least one task")
        if self.split not in SPLIT_STRATEGIES:
            raise ValueError(
                f"split must be one of {SPLIT_STRATEGIES}, got {self.split!r}"
            )
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"attribute names must be unique, got {names}")
        known = set(names)
        referenced: set[str] = set()
        keys: set[str] = set()
        for task in self.tasks:
            if task.key in keys:
                raise ValueError(f"duplicate task {task.key!r} in plan")
            keys.add(task.key)
            for attr in task.attributes:
                if attr not in known:
                    raise ValueError(
                        f"task {task.key!r} references unknown attribute {attr!r}; "
                        f"declared: {sorted(known)}"
                    )
                referenced.add(attr)
            if isinstance(task, RangeQueries):
                spec = self.attribute(task.attribute)
                for lo, hi in task.windows:
                    if lo < spec.low or hi > spec.high:
                        raise ValueError(
                            f"task {task.key!r}: window ({lo}, {hi}) outside the "
                            f"attribute domain [{spec.low}, {spec.high}]"
                        )
        unused = known - referenced
        if unused:
            raise ValueError(
                f"attributes {sorted(unused)} are declared but no task uses them"
            )

    def attribute(self, name: str) -> AttributeSpec:
        """Look up one declared attribute by name."""
        for spec in self.attributes:
            if spec.name == name:
                return spec
        raise ValueError(
            f"unknown attribute {name!r}; declared: {[a.name for a in self.attributes]}"
        )

    def tasks_for(self, name: str) -> tuple[Task, ...]:
        """Every task that touches the named attribute."""
        return tuple(t for t in self.tasks if name in t.attributes)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "epsilon": float(self.epsilon),
            "split": self.split,
            "attributes": [a.to_dict() for a in self.attributes],
            "tasks": [t.to_dict() for t in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisPlan":
        if not isinstance(data, dict):
            raise ValueError(
                f"plan must be a JSON/TOML object, got {type(data).__name__}"
            )
        try:
            return cls(
                epsilon=float(data["epsilon"]),
                attributes=tuple(
                    AttributeSpec.from_dict(a) for a in data["attributes"]
                ),
                tasks=tuple(task_from_dict(t) for t in data["tasks"]),
                split=data.get("split", "population"),
            )
        except KeyError as exc:
            raise ValueError(f"plan is missing required key {exc}") from None
        except TypeError as exc:
            raise ValueError(f"malformed plan: {exc}") from None

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisPlan":
        return cls.from_dict(json.loads(text))


def load_plan(path: str | Path) -> AnalysisPlan:
    """Load a plan file: ``.json`` (any Python) or ``.toml`` (3.11+)."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11 only
            raise ValueError(
                f"{path}: TOML plans need Python >= 3.11 (tomllib); "
                "use a JSON plan instead"
            ) from None
        with path.open("rb") as handle:
            return AnalysisPlan.from_dict(tomllib.load(handle))
    return AnalysisPlan.from_json(path.read_text())
