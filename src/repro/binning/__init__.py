"""CFO-with-binning baseline (paper Section 4.1)."""

from repro.binning.cfo_binning import CFOBinning, spread_uniformly

__all__ = ["CFOBinning", "spread_uniformly"]
