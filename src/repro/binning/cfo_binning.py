"""CFO with binning (paper Section 4.1).

The unit domain is split into ``c`` equal chunks; each user reports their
chunk through the lower-variance CFO (GRR/OLH), the chunk frequencies are
Norm-Sub'ed into a distribution, and the mass of each chunk is spread
uniformly over the fine-grained histogram buckets it covers.

Choosing ``c`` trades noise (more chunks -> more noise) against binning bias
(fewer chunks -> coarser shape); the optimum is data- and epsilon-dependent,
which is exactly the weakness the paper's SW+EMS removes. The paper reports
``c in {16, 32, 64}``.

``CFOBinning`` implements the :class:`repro.api.Estimator` lifecycle. The
default post-processing is the paper's Norm-Sub, whose sufficient statistic
is the user-weighted chunk-frequency estimate (exact under ``merge``). With
an :class:`repro.api.EMConfig` the estimator instead reconstructs the fine
histogram by EM/EMS on the GRR chunk reports: the transition matrix composes
chunk membership with the GRR noise channel, so the smoothing prior (not the
uniform-within-bin assumption) fills in sub-chunk shape.
"""

from __future__ import annotations

import numpy as np

from repro.api.base import Estimator
from repro.api.config import EMConfig
from repro.api.errors import EmptyAggregateError
from repro.core.em import EMResult
from repro.engine.cache import (
    cached_matrix,
    cached_object,
    validated_channel_operator,
)
from repro.engine.operators import UniformPlusBandedChannel, channel_mode
from repro.freq_oracle.adaptive import choose_oracle
from repro.freq_oracle.grr import GRR
from repro.freq_oracle.olh import OLH
from repro.postprocess.norm_sub import norm_sub
from repro.utils.histograms import bucketize
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["CFOBinning", "spread_uniformly"]

_ORACLE_CHOICES = ("adaptive", "grr", "olh")


def spread_uniformly(chunk_distribution: np.ndarray, d: int) -> np.ndarray:
    """Expand a ``c``-chunk distribution onto ``d`` fine buckets.

    Requires ``d`` to be a multiple of ``c``; each chunk's mass is divided
    evenly among the ``d / c`` fine buckets it covers (the uniform-within-bin
    assumption of Section 4.1).
    """
    chunks = np.asarray(chunk_distribution, dtype=np.float64)
    if chunks.ndim != 1 or chunks.size == 0:
        raise ValueError("chunk_distribution must be a non-empty 1-d array")
    c = chunks.size
    d = check_domain_size(d)
    if d % c != 0:
        raise ValueError(f"d={d} must be a multiple of the chunk count c={c}")
    per = d // c
    return np.repeat(chunks / per, per)


class CFOBinning(Estimator):
    """Binning + categorical frequency oracle distribution estimator.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    d:
        Fine output granularity (must be a multiple of ``bins``).
    bins:
        Number of reporting chunks ``c``.
    oracle:
        ``"adaptive"`` (default: lower-variance GRR/OLH pick), ``"grr"``, or
        ``"olh"``.
    em:
        Optional :class:`repro.api.EMConfig` (or its ``to_dict()`` form)
        enabling EM/EMS reconstruction of the fine histogram from GRR chunk
        reports. EM needs per-bucket multinomial counts, so it forces the
        GRR oracle; combining it with ``oracle="olh"`` is an error.
    """

    kind = "distribution"

    def __init__(
        self,
        epsilon: float,
        d: int = 1024,
        bins: int = 32,
        *,
        oracle: str = "adaptive",
        em: EMConfig | dict | None = None,
    ) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.d = check_domain_size(d)
        self.bins = check_domain_size(bins, name="bins")
        if self.d % self.bins != 0:
            raise ValueError(f"d={d} must be a multiple of bins={bins}")
        if oracle not in _ORACLE_CHOICES:
            raise ValueError(
                f"oracle must be one of {_ORACLE_CHOICES}, got {oracle!r}"
            )
        if isinstance(em, dict):
            em = EMConfig(**em)
        if em is not None and oracle == "olh":
            raise ValueError(
                "EM reconstruction needs per-bucket report counts, which OLH "
                "does not produce; use oracle='grr' (or 'adaptive')"
            )
        self.oracle_choice = oracle
        self.em = em
        if em is not None or oracle == "grr":
            self.oracle = GRR(self.epsilon, self.bins)
        elif oracle == "olh":
            self.oracle = OLH(self.epsilon, self.bins)
        else:
            self.oracle = choose_oracle(self.epsilon, self.bins)
        self._matrix: np.ndarray | None = None
        self.result_: EMResult | None = None
        self.reset()

    @property
    def name(self) -> str:
        return f"cfo-binning-{self.bins}"

    @property
    def wire_codec(self) -> str:
        """Reports travel as GRR category ints or OLH triples, per oracle."""
        return "category" if isinstance(self.oracle, GRR) else "olh"

    @property
    def n_reports(self) -> int:
        """Reports ingested into the current aggregation state."""
        return self._n

    @property
    def transition_matrix(self) -> np.ndarray:
        """``(bins, d)``: chunk membership composed with the GRR channel.

        Column ``i`` (a fine bucket inside chunk ``c``) is the GRR report
        distribution of chunk ``c`` — ``p`` on the true chunk, ``q``
        elsewhere — so columns sum to ``p + (bins - 1) q = 1``. Served
        read-only from the process-wide engine cache, keyed on the channel
        parameters.
        """
        if self._matrix is None:
            if not isinstance(self.oracle, GRR):
                raise RuntimeError(
                    "transition_matrix is defined for the GRR channel only; "
                    f"this estimator uses {self.oracle.name}"
                )
            self._matrix = cached_matrix(self._channel_key(), self._build_matrix)
        return self._matrix

    def _channel_key(self) -> tuple:
        """One cache identity for the chunk channel, dense and structured.

        Both :attr:`transition_matrix` and :attr:`channel` key off this
        tuple (the operator entry tagged apart), so the two paths can
        never silently serve differently-parameterized channels.
        """
        return ("cfo-grr-channel", self.bins, self.d, self.oracle.p, self.oracle.q)

    def _build_matrix(self) -> np.ndarray:
        noise = np.full((self.bins, self.bins), self.oracle.q)
        np.fill_diagonal(noise, self.oracle.p)
        return np.repeat(noise, self.d // self.bins, axis=1)

    @property
    def channel(self):
        """What EM runs against: the chunk channel as a structured operator.

        Row ``c`` of the channel is ``p`` on chunk ``c``'s ``d / bins``
        fine buckets and ``q`` elsewhere — a uniform-plus-band structure,
        so both EM products run as cumulative-sum boxcars
        (:class:`~repro.engine.operators.UniformPlusBandedChannel`). The
        column-stochastic invariant is checked once at cache insert, like
        every engine-cached channel.
        ``repro.engine.set_channel_mode("dense")`` restores the dense
        matrix path.
        """
        if channel_mode() == "dense":
            return self.transition_matrix
        if not isinstance(self.oracle, GRR):
            raise RuntimeError(
                "the chunk channel is defined for the GRR oracle only; "
                f"this estimator uses {self.oracle.name}"
            )
        per = self.d // self.bins
        return cached_object(
            ("operator", *self._channel_key()),
            lambda: validated_channel_operator(
                UniformPlusBandedChannel(
                    self.d,
                    np.arange(self.bins, dtype=np.int64) * per,
                    (np.arange(self.bins, dtype=np.int64) + 1) * per,
                    inside=self.oracle.p,
                    outside=self.oracle.q,
                )
            ),
        )

    # -- lifecycle ---------------------------------------------------------
    def privatize(self, values: np.ndarray, rng=None):
        """Client-side: bucketize unit values into chunks, then CFO-randomize."""
        return self.oracle.privatize(bucketize(values, self.bins), rng=rng)

    def ingest(self, reports) -> None:
        """Fold one batch into the chunk accumulator (empty batch: no-op)."""
        n = self.oracle._report_count(reports)
        if n == 0:
            return
        if self.em is not None:
            arr = np.asarray(reports, dtype=np.int64)
            if arr.min() < 0 or arr.max() >= self.bins:
                raise ValueError("reports outside the GRR output domain")
            self._chunk_acc += np.bincount(arr, minlength=self.bins)
        else:
            self._chunk_acc += n * self.oracle.aggregate_batch(reports)
        self._n += n

    def estimate(self, *, x0: np.ndarray | None = None) -> np.ndarray:
        """Reconstruct the ``d``-bucket histogram from all ingested reports.

        In EM mode, ``x0`` warm-starts the solve from a previous posterior
        (see :meth:`repro.core.pipeline.WaveEstimator.estimate`); Norm-Sub
        mode has no iterative solve and ignores it.
        """
        if self._n == 0:
            raise EmptyAggregateError("no reports ingested yet")
        if self.em is not None:
            self.result_ = self.em.run(
                self.channel, self._chunk_acc, self.epsilon,
                validated=True, x0=x0,
            )
            return self.result_.estimate
        chunk_distribution = norm_sub(self._chunk_acc / self._n, total=1.0)
        return spread_uniformly(chunk_distribution, self.d)

    def reset(self) -> None:
        #: Norm-Sub mode: user-weighted chunk-frequency estimates;
        #: EM mode: raw per-chunk report counts. Both are linear in shards.
        self._chunk_acc = np.zeros(self.bins, dtype=np.float64)
        self._n = 0
        self.result_ = None

    # -- shard merge + serialization --------------------------------------
    def _merge_state(self, other: "CFOBinning") -> None:
        self._chunk_acc += other._chunk_acc
        self._n += other._n
        self.result_ = None

    def _params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "bins": self.bins,
            "oracle": self.oracle_choice,
            "em": self.em.to_dict() if self.em is not None else None,
        }

    def _state(self) -> dict:
        return {"n": int(self._n), "chunk_acc": self._chunk_acc.tolist()}

    def _load_state(self, state: dict) -> None:
        chunk_acc = np.asarray(state["chunk_acc"], dtype=np.float64)
        if chunk_acc.shape != (self.bins,):
            raise ValueError(
                f"state 'chunk_acc' must have shape ({self.bins},), "
                f"got {chunk_acc.shape}"
            )
        self._n = int(state["n"])
        self._chunk_acc = chunk_acc
        self.result_ = None

    def _repr_fields(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "d": self.d,
            "bins": self.bins,
            "oracle": self.oracle.name,
            "postprocess": self.em.postprocess if self.em is not None else "norm-sub",
        }
