"""CFO with binning (paper Section 4.1).

The unit domain is split into ``c`` equal chunks; each user reports their
chunk through the lower-variance CFO (GRR/OLH), the chunk frequencies are
Norm-Sub'ed into a distribution, and the mass of each chunk is spread
uniformly over the fine-grained histogram buckets it covers.

Choosing ``c`` trades noise (more chunks -> more noise) against binning bias
(fewer chunks -> coarser shape); the optimum is data- and epsilon-dependent,
which is exactly the weakness the paper's SW+EMS removes. The paper reports
``c in {16, 32, 64}``.
"""

from __future__ import annotations

import numpy as np

from repro.freq_oracle.adaptive import choose_oracle
from repro.postprocess.norm_sub import norm_sub
from repro.utils.histograms import bucketize
from repro.utils.validation import check_domain_size, check_epsilon

__all__ = ["CFOBinning", "spread_uniformly"]


def spread_uniformly(chunk_distribution: np.ndarray, d: int) -> np.ndarray:
    """Expand a ``c``-chunk distribution onto ``d`` fine buckets.

    Requires ``d`` to be a multiple of ``c``; each chunk's mass is divided
    evenly among the ``d / c`` fine buckets it covers (the uniform-within-bin
    assumption of Section 4.1).
    """
    chunks = np.asarray(chunk_distribution, dtype=np.float64)
    if chunks.ndim != 1 or chunks.size == 0:
        raise ValueError("chunk_distribution must be a non-empty 1-d array")
    c = chunks.size
    d = check_domain_size(d)
    if d % c != 0:
        raise ValueError(f"d={d} must be a multiple of the chunk count c={c}")
    per = d // c
    return np.repeat(chunks / per, per)


class CFOBinning:
    """Binning + categorical frequency oracle distribution estimator.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    d:
        Fine output granularity (must be a multiple of ``bins``).
    bins:
        Number of reporting chunks ``c``.
    """

    def __init__(self, epsilon: float, d: int = 1024, bins: int = 32) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.d = check_domain_size(d)
        self.bins = check_domain_size(bins, name="bins")
        if self.d % self.bins != 0:
            raise ValueError(f"d={d} must be a multiple of bins={bins}")
        self.oracle = choose_oracle(self.epsilon, self.bins)

    @property
    def name(self) -> str:
        return f"cfo-binning-{self.bins}"

    def fit(self, values: np.ndarray, rng=None) -> np.ndarray:
        """Estimate the ``d``-bucket histogram from unit-domain ``values``."""
        chunk_values = bucketize(values, self.bins)
        raw = self.oracle.estimate_from_values(chunk_values, rng=rng)
        chunk_distribution = norm_sub(raw, total=1.0)
        return spread_uniformly(chunk_distribution, self.d)
