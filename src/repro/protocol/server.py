"""Server side of an SW collection round: streaming ingestion + estimation.

``SWServer`` accumulates report *counts* rather than raw reports, so memory
stays O(d) no matter how many users stream in, and an estimate can be
produced at any point mid-round (each estimate reruns EMS on the counts so
far — the reports themselves are never needed again after bucketization).
"""

from __future__ import annotations

import numpy as np

from repro.core.em import DEFAULT_MAX_ITER, EMResult, expectation_maximization
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import SquareWave
from repro.protocol.messages import SWReport, decode_batch
from repro.utils.validation import check_domain_size

__all__ = ["SWServer"]


class SWServer:
    """Aggregates SW reports for one round and reconstructs the histogram.

    Parameters
    ----------
    round_id, epsilon, b:
        Must match the round's :class:`~repro.protocol.client.SWClient`.
    d:
        Reconstruction granularity (also the report bucket count).
    postprocess:
        ``"ems"`` (default) or ``"em"``.
    """

    def __init__(
        self,
        round_id: str,
        epsilon: float,
        d: int = 1024,
        *,
        b: float | None = None,
        postprocess: str = "ems",
        tol: float | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
    ) -> None:
        if postprocess not in ("ems", "em"):
            raise ValueError(f"postprocess must be 'ems' or 'em', got {postprocess!r}")
        self.round_id = str(round_id)
        self.mechanism = SquareWave(epsilon, b=b)
        self.d = check_domain_size(d)
        self.postprocess = postprocess
        if tol is None:
            tol = 1e-3 * np.exp(epsilon) if postprocess == "em" else 1e-3
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self._counts = np.zeros(self.d, dtype=np.float64)
        self._matrix: np.ndarray | None = None
        self.result_: EMResult | None = None

    @property
    def n_reports(self) -> int:
        """Reports ingested so far."""
        return int(self._counts.sum())

    def ingest(self, report: SWReport) -> None:
        """Add one report to the round."""
        if report.round_id != self.round_id:
            raise ValueError(
                f"report for round {report.round_id!r} sent to round "
                f"{self.round_id!r}"
            )
        self._ingest_values(np.array([report.value]))

    def ingest_batch(self, payload: str) -> int:
        """Add a JSON-lines batch; returns the number of reports ingested."""
        values = decode_batch(payload, expected_round=self.round_id)
        self._ingest_values(values)
        return values.size

    def ingest_values(self, values: np.ndarray) -> None:
        """Add already-decoded randomized values (simulation fast path)."""
        self._ingest_values(np.asarray(values, dtype=np.float64))

    def _ingest_values(self, values: np.ndarray) -> None:
        self._counts += self.mechanism.bucketize_reports(values, self.d)

    def estimate(self) -> np.ndarray:
        """Reconstruct the input histogram from all reports so far."""
        if self.n_reports == 0:
            raise RuntimeError("no reports ingested yet")
        if self._matrix is None:
            self._matrix = self.mechanism.transition_matrix(self.d, self.d)
        kernel = binomial_kernel(2) if self.postprocess == "ems" else None
        self.result_ = expectation_maximization(
            self._matrix,
            self._counts,
            tol=self.tol,
            max_iter=self.max_iter,
            smoothing_kernel=kernel,
        )
        return self.result_.estimate
