"""Server side of an SW collection round: streaming ingestion + estimation.

``SWServer`` accumulates report *counts* rather than raw reports, so memory
stays O(d) no matter how many users stream in, and an estimate can be
produced at any point mid-round (each estimate reruns EMS on the counts so
far — the reports themselves are never needed again after bucketization).

The server is a thin round-scoped wrapper around
:class:`~repro.core.pipeline.SWEstimator`: wire-format decoding and round-id
enforcement live here, while the EM configuration comes from one shared
:class:`repro.api.EMConfig` (so e.g. the paper's EM tolerance rule cannot
drift between the server and the offline estimators). Shard servers for the
same round ``merge`` exactly and serialize via ``to_state()``/``from_state()``.

Reconstruction routes through :mod:`repro.engine`: the round's transition
matrix is served read-only from the process-wide cache (validated once at
insert), so many concurrent rounds with the same mechanism parameters share
one array, and each mid-round ``estimate()`` skips re-validating it.
"""

from __future__ import annotations

import numpy as np

from repro.api.base import Estimator
from repro.api.config import DEFAULT_MAX_ITER, EMConfig
from repro.core.em import EMResult
from repro.core.pipeline import SWEstimator
from repro.protocol.messages import DEFAULT_ATTR, SWReport, decode_batch

__all__ = ["SWServer"]


class SWServer:
    """Aggregates SW reports for one round and reconstructs the histogram.

    Parameters
    ----------
    round_id, epsilon, b:
        Must match the round's :class:`~repro.protocol.client.SWClient`.
    d:
        Reconstruction granularity (also the report bucket count).
    postprocess, tol, max_iter:
        EM/EMS controls; equivalently pass a pre-built ``config``
        (:class:`repro.api.EMConfig`), which takes precedence.
    attr:
        Attribute id this single-attribute round serves. Batch decoding
        rejects reports stamped with any other attribute, so a mixed
        multi-attribute session feed fails loudly instead of being
        silently folded into one histogram.
    """

    def __init__(
        self,
        round_id: str,
        epsilon: float,
        d: int = 1024,
        *,
        b: float | None = None,
        postprocess: str = "ems",
        tol: float | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        config: EMConfig | None = None,
        attr: str = DEFAULT_ATTR,
    ) -> None:
        if config is None:
            config = EMConfig(postprocess=postprocess, tol=tol, max_iter=max_iter)
        self.round_id = str(round_id)
        self.attr = str(attr)
        self._estimator = SWEstimator(epsilon, d, b=b, config=config)

    # -- delegated views ---------------------------------------------------
    @property
    def estimator(self) -> SWEstimator:
        """The underlying streaming estimator (shared aggregation state)."""
        return self._estimator

    @property
    def mechanism(self):
        return self._estimator.mechanism

    @property
    def config(self) -> EMConfig:
        return self._estimator.config

    @property
    def epsilon(self) -> float:
        return self._estimator.epsilon

    @property
    def d(self) -> int:
        return self._estimator.d

    @property
    def postprocess(self) -> str:
        return self._estimator.postprocess

    @property
    def tol(self) -> float:
        """Effective stopping tolerance (always a plain ``float``)."""
        return self._estimator.tol

    @property
    def max_iter(self) -> int:
        return self._estimator.max_iter

    @property
    def transition_matrix(self) -> np.ndarray:
        """The round's ``(d, d)`` channel matrix (shared, read-only)."""
        return self._estimator.transition_matrix

    @property
    def result_(self) -> EMResult | None:
        return self._estimator.result_

    @property
    def n_reports(self) -> int:
        """Reports ingested so far."""
        return self._estimator.n_reports

    # -- ingestion ---------------------------------------------------------
    def ingest(self, report: SWReport) -> None:
        """Add one report to the round."""
        if report.round_id != self.round_id:
            raise ValueError(
                f"report for round {report.round_id!r} sent to round "
                f"{self.round_id!r}"
            )
        if report.attr != self.attr:
            raise ValueError(
                f"report for attribute {report.attr!r} sent to server for "
                f"attribute {self.attr!r}"
            )
        self._estimator.ingest(np.array([report.value]))

    def ingest_batch(self, payload: str) -> int:
        """Add a JSON-lines batch; returns the number of reports ingested."""
        values = decode_batch(
            payload, expected_round=self.round_id, expected_attr=self.attr
        )
        self._estimator.ingest(values)
        return values.size

    def ingest_values(self, values: np.ndarray) -> None:
        """Add already-decoded randomized values (simulation fast path)."""
        self._estimator.ingest(np.asarray(values, dtype=np.float64))

    def estimate(self) -> np.ndarray:
        """Reconstruct the input histogram from all reports so far."""
        return self._estimator.estimate()

    # -- shard merge + serialization --------------------------------------
    def merge(self, other: "SWServer") -> "SWServer":
        """Fold another shard server's counts into this round's state."""
        if not isinstance(other, SWServer):
            raise TypeError(f"cannot merge {type(other).__name__} into SWServer")
        if other.round_id != self.round_id:
            raise ValueError(
                f"cannot merge round {other.round_id!r} into round "
                f"{self.round_id!r}"
            )
        if other.attr != self.attr:
            raise ValueError(
                f"cannot merge attribute {other.attr!r} into attribute "
                f"{self.attr!r}"
            )
        self._estimator.merge(other._estimator)
        return self

    def to_state(self) -> dict:
        """Serialize the round identity plus the aggregation state."""
        return {
            "class": "repro.protocol.server:SWServer",
            "round_id": self.round_id,
            "attr": self.attr,
            "sw": self._estimator.to_state(),
        }

    @classmethod
    def from_state(cls, payload: dict) -> "SWServer":
        """Rebuild a shard server from :meth:`to_state` output."""
        inner = Estimator.from_state(payload["sw"])
        if not isinstance(inner, SWEstimator):
            raise ValueError("SWServer state must wrap an SWEstimator")
        server = cls(
            payload["round_id"],
            inner.epsilon,
            inner.d,
            b=inner.mechanism.b,
            config=inner.config,
            attr=payload.get("attr", DEFAULT_ATTR),
        )
        server._estimator = inner
        return server

    def __repr__(self) -> str:
        return (
            f"SWServer(round_id={self.round_id!r}, epsilon={self.epsilon}, "
            f"d={self.d}, postprocess={self.postprocess!r}, "
            f"n_reports={self.n_reports})"
        )
