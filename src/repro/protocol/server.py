"""Server side of a collection round: mechanism-agnostic streaming ingestion.

:class:`CollectionServer` is a round-scoped wrapper around *any* registry
estimator (:func:`repro.api.make_estimator`): wire-format decoding and
round/attribute enforcement live here, while aggregation rides the
estimator's own ingest/merge/to_state machinery — memory stays O(state) no
matter how many users stream in, and shard servers for the same round
``merge`` exactly. Both wire transports route through one code path: the
columnar binary frames of :mod:`repro.protocol.frames` for bulk feeds, and
v1/v2 JSON lines (:mod:`repro.protocol.messages`) for the greppable form.

Mid-round ``estimate()`` is *incremental*: the server caches the last
posterior keyed on a fingerprint of the aggregation state, skips the solve
entirely when nothing new arrived, and — for the EM-backed families —
warm-starts the solver from the cached posterior
(:meth:`repro.api.EMConfig.run` ``x0``), so a small ingest delta costs a
handful of EM iterations instead of a cold solve from the uniform prior.
Those iterations themselves run against the structured channel operators
of :mod:`repro.engine.operators` (the wrapped estimators request them by
default), so a wave-mechanism round pays ``O(d)`` per iteration rather
than a dense ``O(d^2)`` matmul.

:class:`PlanServer` serves a whole :class:`~repro.tasks.plan.AnalysisPlan`
— one ``CollectionServer`` per planned attribute — off a single mixed
frame/JSONL feed, and emits the typed
:class:`~repro.tasks.results.AnalysisReport`.

:class:`SWServer` remains as a thin deprecation shim over
``CollectionServer`` for the original Square-Wave-only API.
"""

from __future__ import annotations

import json
import threading
import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.base import Estimator
from repro.api.config import DEFAULT_MAX_ITER, EMConfig
from repro.api.errors import EmptyAggregateError
from repro.api.registry import make_estimator
from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import SWEstimator, WaveEstimator
from repro.protocol.codecs import codec_for_estimator
from repro.protocol.frames import (
    decode_any_feed,
    decode_frame_grouped,
    encode_frame,
)
from repro.protocol.messages import (
    DEFAULT_ATTR,
    FeedGroup,
    SWReport,
    decode_feed_grouped,
    encode_batch_v2,
)
from repro.utils.rng import RngLike

__all__ = [
    "CollectionServer",
    "EstimateFailure",
    "PlanServer",
    "SWServer",
    "estimate_rounds",
]

#: Uniform-mixing weight applied to a cached posterior before it warm-starts
#: EM — keeps every coordinate strictly positive (EM cannot move a zero), at
#: a perturbation far below the noise floor of any real round.
_WARM_START_MIX = 1e-6


def _copy_estimate(value: Any) -> Any:
    """Defensive copy of an estimate (ndarray, list of ndarrays, or scalar)."""
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return [_copy_estimate(item) for item in value]
    return value


@dataclass(frozen=True)
class EstimateFailure:
    """One round's failed solve inside an :func:`estimate_rounds` batch.

    Carries the key it failed under and the original exception, so callers
    (the service's estimate endpoint, monitoring) can report per-round
    errors structurally instead of losing every other round's result to
    the first raise.
    """

    key: str
    error: Exception

    @property
    def message(self) -> str:
        return str(self.error)

    def to_dict(self) -> dict[str, str]:
        """JSON-serializable form for service responses and logs."""
        return {
            "key": self.key,
            "type": type(self.error).__name__,
            "message": str(self.error),
        }


def estimate_rounds(
    servers: Mapping[str, "CollectionServer"],
    *,
    on_error: str = "raise",
    backend: Any = None,
) -> dict[str, Any]:
    """Reconstruct several independent servers' estimates in one pass.

    The multi-shard solve scheduler: each server's :meth:`estimate` is an
    independent solve (its own estimator, its own channel), so the batch
    fans out across the compute backend's workers (``backend=`` — a
    :class:`~repro.engine.backend.ComputeBackend`, a spec string like
    ``"threaded:4"``, or ``None`` for the process-wide active backend) — a
    plan's attributes, or several rounds' servers, solve concurrently
    instead of one after another. The engine's matrix cache is
    lock-protected, so concurrent solves sharing a channel are safe.

    Every solve runs to completion regardless of the others: one empty or
    broken round no longer aborts the whole batch. Failures surface per
    key — with ``on_error="return"`` the result maps each failed key to an
    :class:`EstimateFailure` (successes map to their estimates as usual);
    with the default ``on_error="raise"`` the first failed key's original
    exception (notably :class:`repro.EmptyAggregateError` from a
    still-empty round) is re-raised after the batch finishes, so the
    surviving rounds' posteriors are still cached for the retry.

    Returns ``{name: estimate_or_failure}`` in the mapping's iteration
    order. Servers must be distinct aggregation states — don't pass the
    same underlying estimator twice.
    """
    if on_error not in ("raise", "return"):
        raise ValueError(
            f"on_error must be 'raise' or 'return', got {on_error!r}"
        )
    from repro.engine.backend import resolve_backend

    names = list(servers)

    def solve(name: str) -> Any:
        try:
            return servers[name].estimate()
        except Exception as exc:  # surfaced per key, not aborted mid-batch
            return EstimateFailure(key=name, error=exc)

    estimates = resolve_backend(backend).map_ordered(solve, names)
    results = dict(zip(names, estimates, strict=True))
    if on_error == "raise":
        for value in results.values():
            if isinstance(value, EstimateFailure):
                raise value.error
    return results


class CollectionServer:
    """Aggregates any mechanism's reports for one round and reconstructs.

    Parameters
    ----------
    round_id:
        Identifier all of the round's feeds must carry.
    mechanism:
        Registry estimator name (see ``repro.api.list_estimators``).
    epsilon, d, kwargs:
        Forwarded to :func:`repro.api.make_estimator`.
    attr:
        Attribute id this single-attribute round serves; feeds stamped with
        any other attribute are rejected, so a mixed multi-attribute
        session feed fails loudly instead of being silently folded in.
    incremental:
        Keep the last posterior (keyed on the aggregation-state
        fingerprint) so mid-round ``estimate()`` calls skip unchanged
        solves and warm-start EM after small deltas. ``False`` restores
        the always-cold behaviour (useful for benchmarking the
        difference).
    """

    def __init__(
        self,
        round_id: str,
        mechanism: str,
        epsilon: float,
        d: int | None = None,
        *,
        attr: str = DEFAULT_ATTR,
        incremental: bool = True,
        **kwargs,
    ) -> None:
        estimator = make_estimator(mechanism, epsilon, d, **kwargs)
        self._bind(round_id, estimator, attr, str(mechanism), incremental)

    def _bind(
        self,
        round_id: str,
        estimator: Estimator,
        attr: str,
        mechanism_name: str,
        incremental: bool,
    ) -> None:
        self.round_id = str(round_id)
        self.attr = str(attr)
        self.mechanism_name = mechanism_name
        self.incremental = bool(incremental)
        self._estimator = estimator
        self._codec = codec_for_estimator(estimator)
        self._cached: Any = None
        self._cached_key: str | None = None
        # Ingest, estimate, merge, and snapshot all cross this lock: a shard
        # worker folding reports in while another thread solves must never
        # interleave a half-applied batch into the fingerprint the posterior
        # cache is keyed on. Reentrant, because estimate() fans out through
        # backend pools whose map may run inline on this thread.
        self._lock = threading.RLock()

    @classmethod
    def for_estimator(
        cls,
        round_id: str,
        estimator: Estimator,
        *,
        attr: str = DEFAULT_ATTR,
        mechanism: str | None = None,
        incremental: bool = True,
    ) -> "CollectionServer":
        """Wrap an existing estimator (shared aggregation state) in a server."""
        server = cls.__new__(cls)
        CollectionServer._bind(
            server,
            round_id,
            estimator,
            attr,
            estimator.name if mechanism is None else str(mechanism),
            incremental,
        )
        return server

    # -- delegated views ---------------------------------------------------
    @property
    def estimator(self) -> Estimator:
        """The underlying streaming estimator (shared aggregation state)."""
        return self._estimator

    @property
    def codec(self):
        """The payload codec this round's reports travel under."""
        return self._codec

    @property
    def n_reports(self) -> int:
        """Reports ingested so far."""
        return self._estimator.n_reports

    # -- client-side conveniences (simulation) -----------------------------
    def privatize(self, values: np.ndarray, rng: RngLike = None) -> Any:
        """Randomize raw values with the round's mechanism (client side)."""
        return self._estimator.privatize(values, rng=rng)

    def encode(self, reports: Any, *, format: str = "frame") -> bytes | str:
        """Encode one report batch as this round's wire feed.

        ``format="frame"`` produces the columnar binary form,
        ``format="jsonl"`` the v2 JSON-lines form.
        """
        if format == "frame":
            return encode_frame(self.round_id, reports, self._codec, attr=self.attr)
        if format == "jsonl":
            return encode_batch_v2(self.round_id, reports, self._codec, attr=self.attr)
        raise ValueError(f"format must be 'frame' or 'jsonl', got {format!r}")

    def rebind_estimator(self, estimator: Estimator) -> None:
        """Swap in a replacement aggregation state, keeping the posterior cache.

        The estimate tier of a sharded deployment folds shard snapshots
        into a freshly merged estimator each round; rebinding it here
        (instead of rebuilding the server) preserves the fingerprint-keyed
        posterior cache, so an unchanged merge skips the solve entirely and
        a small delta warm-starts EM from the previous posterior. The
        replacement must speak the same wire codec as the original.
        """
        codec = codec_for_estimator(estimator)
        if codec.name != self._codec.name:
            raise ValueError(
                f"cannot rebind {type(estimator).__name__} ({codec.name!r} "
                f"payloads) into a server expecting {self._codec.name!r}"
            )
        with self._lock:
            self._estimator = estimator

    # -- ingestion ---------------------------------------------------------
    def ingest_reports(self, reports: Any) -> int:
        """Add one already-decoded report batch; returns the report count."""
        n = self._codec.n_reports(reports)
        with self._lock:
            self._estimator.ingest(reports)
        return n

    def _ingest_group(self, group: FeedGroup) -> int:
        if group.mechanism != self._codec.name:
            raise ValueError(
                f"feed for attribute {self.attr!r} carries "
                f"{group.mechanism!r} payloads, server expects "
                f"{self._codec.name!r}"
            )
        with self._lock:
            self._estimator.ingest(group.reports)
        return group.n

    def _ingest_groups(self, groups: dict[str, FeedGroup]) -> int:
        foreign = set(groups) - {self.attr}
        if foreign:
            raise ValueError(
                f"feed for attribute {sorted(foreign)[0]!r} sent to "
                f"attribute {self.attr!r}"
            )
        return self._ingest_group(groups[self.attr])

    def ingest_frame(self, data: bytes) -> int:
        """Add a binary frame; returns the number of reports ingested."""
        _, groups = decode_frame_grouped(data, expected_round=self.round_id)
        return self._ingest_groups(groups)

    def ingest_lines(self, payload: str) -> int:
        """Add a v1/v2 JSON-lines batch; returns the reports ingested."""
        _, groups = decode_feed_grouped(payload, expected_round=self.round_id)
        return self._ingest_groups(groups)

    def ingest_feed(self, data: bytes | str) -> int:
        """Add a feed of either transport (binary frame or JSON lines)."""
        _, groups = decode_any_feed(data, expected_round=self.round_id)
        return self._ingest_groups(groups)

    # -- estimation --------------------------------------------------------
    def _warm_startable(self) -> bool:
        est = self._estimator
        if isinstance(est, WaveEstimator):
            return True
        return isinstance(est, CFOBinning) and est.em is not None

    def _state_key(self) -> str:
        """Cheap fingerprint of the aggregation state the cache is keyed on.

        Serializing ``_state()`` is O(state) — negligible next to a solve —
        and content-based, so the cache cannot serve a stale posterior when
        the state changed without the report count changing (e.g. a caller
        ``reset()`` the shared estimator and re-ingested an equal-sized
        batch).
        """
        return json.dumps(self._estimator._state(), sort_keys=True)

    def estimate(self) -> Any:
        """Reconstruct from all reports so far (incremental mid-round).

        With ``incremental=True`` (the default) the solve is skipped when
        the aggregation state is unchanged since the last call, and
        EM-backed estimators warm-start from the cached posterior
        otherwise. Raises :class:`repro.EmptyAggregateError` naming the
        round and attribute while the round is still empty.
        """
        with self._lock:
            if self._estimator.n_reports == 0:
                raise EmptyAggregateError(
                    f"no reports ingested for round {self.round_id!r}, "
                    f"attribute {self.attr!r}"
                )
            key = self._state_key() if self.incremental else None
            if self.incremental and key == self._cached_key:
                return _copy_estimate(self._cached)
            x0 = None
            if (
                self.incremental
                and isinstance(self._cached, np.ndarray)
                and self._warm_startable()
            ):
                prev = self._cached
                x0 = (1.0 - _WARM_START_MIX) * prev + _WARM_START_MIX / prev.size
            if x0 is not None:
                estimate = self._estimator.estimate(x0=x0)
            else:
                estimate = self._estimator.estimate()
            if self.incremental:
                self._cached = _copy_estimate(estimate)
                self._cached_key = key
            return estimate

    # -- shard merge + serialization --------------------------------------
    def merge(self, other: "CollectionServer") -> "CollectionServer":
        """Fold another shard server's aggregation state into this round's."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other.round_id != self.round_id:
            raise ValueError(
                f"cannot merge round {other.round_id!r} into round "
                f"{self.round_id!r}"
            )
        if other.attr != self.attr:
            raise ValueError(
                f"cannot merge attribute {other.attr!r} into attribute "
                f"{self.attr!r}"
            )
        # Both states cross the fold; take the locks in id order so two
        # threads merging opposite directions cannot deadlock.
        first, second = sorted((self._lock, other._lock), key=id)
        with first, second:
            self._estimator.merge(other._estimator)
            self._cached = None
            self._cached_key = None
        return self

    def to_state(self) -> dict:
        """Serialize the round identity plus the aggregation state."""
        with self._lock:
            return {
                "class": "repro.protocol.server:CollectionServer",
                "round_id": self.round_id,
                "attr": self.attr,
                "mechanism": self.mechanism_name,
                "incremental": self.incremental,
                "estimator": self._estimator.to_state(),
            }

    @classmethod
    def from_state(cls, payload: dict) -> "CollectionServer":
        """Rebuild a shard server from :meth:`to_state` output."""
        estimator = Estimator.from_state(payload["estimator"])
        return cls.for_estimator(
            payload["round_id"],
            estimator,
            attr=payload.get("attr", DEFAULT_ATTR),
            mechanism=payload.get("mechanism"),
            incremental=payload.get("incremental", True),
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(round_id={self.round_id!r}, "
            f"mechanism={self.mechanism_name!r}, attr={self.attr!r}, "
            f"codec={self._codec.name!r}, n_reports={self.n_reports})"
        )


class PlanServer:
    """Serves a whole analysis plan off one mixed multi-attribute feed.

    One :class:`CollectionServer` per planned attribute, all sharing the
    underlying :class:`~repro.tasks.session.Session` aggregation state —
    frames and JSON-lines feeds route each block to the right attribute's
    server, per-attribute ``estimate()`` is incremental, and
    :meth:`report` emits the typed
    :class:`~repro.tasks.results.AnalysisReport` in real-world units.

    Parameters
    ----------
    plan:
        The declarative :class:`~repro.tasks.plan.AnalysisPlan` to serve.
    round_id:
        Identifier all of the round's feeds must carry.
    planned:
        Optional pre-resolved :class:`~repro.tasks.planner.PlannedAnalysis`
        (plan once, fan out to shard servers).
    incremental:
        Forwarded to every per-attribute :class:`CollectionServer`.
    """

    def __init__(
        self,
        plan,
        round_id: str,
        *,
        planned=None,
        incremental: bool = True,
    ) -> None:
        from repro.tasks.session import Session

        self._bind_session(Session(plan, planned=planned), round_id, incremental)

    def _bind_session(self, session, round_id: str, incremental: bool) -> None:
        self.session = session
        self.round_id = str(round_id)
        self.incremental = bool(incremental)
        self._servers = {
            name: CollectionServer.for_estimator(
                self.round_id,
                estimator,
                attr=name,
                mechanism=session.planned.choice_for(name).mechanism,
                incremental=incremental,
            )
            for name, estimator in session.estimators.items()
        }

    # -- introspection -----------------------------------------------------
    @property
    def plan(self):
        return self.session.plan

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.session.attributes

    @property
    def n_reports(self) -> dict[str, int]:
        """Reports ingested so far, per attribute."""
        return self.session.n_reports

    def server(self, attr: str) -> CollectionServer:
        """The per-attribute collection server (shared aggregation state)."""
        try:
            return self._servers[attr]
        except KeyError:
            raise ValueError(
                f"plan declares no attribute {attr!r}; "
                f"available: {sorted(self._servers)}"
            ) from None

    # -- ingestion ---------------------------------------------------------
    def ingest_feed(self, data: bytes | str) -> int:
        """Route one mixed frame/JSONL feed; returns the reports ingested.

        Delegates to :meth:`repro.tasks.session.Session.ingest_feed` (the
        per-attribute servers share the session's estimators), inheriting
        its all-or-nothing guarantee: a feed rejected for any block leaves
        no aggregator changed.
        """
        return self.session.ingest_feed(data, round_id=self.round_id)

    # -- estimation --------------------------------------------------------
    def estimate(self, attr: str) -> Any:
        """One attribute's reconstruction (incremental mid-round)."""
        return self.server(attr).estimate()

    def report(self, *, confidence: float | None = None, n_bootstrap: int = 100, rng: RngLike = None):
        """Answer every task in the plan from the state aggregated so far.

        Reconstructions route through each attribute's incremental server
        (cached posteriors are reused, EM warm-starts after deltas), with
        independent attributes solved concurrently via
        :func:`estimate_rounds` when the active compute backend has
        workers; the session turns them into the typed
        :class:`~repro.tasks.results.AnalysisReport`. Raises
        :class:`repro.EmptyAggregateError` naming the round and the
        still-empty attribute if any aggregator has no reports yet.
        """
        try:
            estimates = estimate_rounds(self._servers)
            return self.session.results(
                confidence=confidence,
                n_bootstrap=n_bootstrap,
                rng=rng,
                precomputed=estimates,
            )
        except EmptyAggregateError as exc:
            raise EmptyAggregateError(f"round {self.round_id!r}: {exc}") from exc

    # -- shard merge + serialization --------------------------------------
    def merge(self, other: "PlanServer") -> "PlanServer":
        """Fold another shard plan-server's state into this round's."""
        if not isinstance(other, PlanServer):
            raise TypeError(f"cannot merge {type(other).__name__} into PlanServer")
        if other.round_id != self.round_id:
            raise ValueError(
                f"cannot merge round {other.round_id!r} into round "
                f"{self.round_id!r}"
            )
        self.session.merge(other.session)
        for server in self._servers.values():
            server._cached = None
            server._cached_key = None
        return self

    def to_state(self) -> dict:
        """Serialize the round identity plus the whole session state."""
        return {
            "class": "repro.protocol.server:PlanServer",
            "round_id": self.round_id,
            "incremental": self.incremental,
            "session": self.session.to_state(),
        }

    @classmethod
    def from_state(cls, payload: dict) -> "PlanServer":
        """Rebuild a shard plan-server from :meth:`to_state` output."""
        from repro.tasks.session import Session

        server = cls.__new__(cls)
        server._bind_session(
            Session.from_state(payload["session"]),
            payload["round_id"],
            payload.get("incremental", True),
        )
        return server

    def __repr__(self) -> str:
        mechanisms = {name: s.mechanism_name for name, s in self._servers.items()}
        return (
            f"PlanServer(round_id={self.round_id!r}, mechanisms={mechanisms}, "
            f"n_reports={self.n_reports})"
        )


class SWServer(CollectionServer):
    """Deprecated Square-Wave-only server; use :class:`CollectionServer`.

    Kept as a thin shim so existing deployments keep working: the full
    pre-v2 API (v1 ``ingest_batch``, delegated EM views, ``to_state``
    layout) is preserved on top of the generic server — including its new
    incremental ``estimate()``.
    """

    def __init__(
        self,
        round_id: str,
        epsilon: float,
        d: int = 1024,
        *,
        b: float | None = None,
        postprocess: str = "ems",
        tol: float | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        config: EMConfig | None = None,
        attr: str = DEFAULT_ATTR,
    ) -> None:
        warnings.warn(
            "SWServer is deprecated; use CollectionServer(round_id, 'sw-ems', "
            "epsilon, d, ...) which serves every registered mechanism",
            DeprecationWarning,
            stacklevel=2,
        )
        if config is None:
            config = EMConfig(postprocess=postprocess, tol=tol, max_iter=max_iter)
        estimator = SWEstimator(epsilon, d, b=b, config=config)
        self._bind(round_id, estimator, attr, f"sw-{config.postprocess}", True)

    # -- pre-v2 delegated views -------------------------------------------
    @property
    def mechanism(self):
        return self._estimator.mechanism

    @property
    def config(self) -> EMConfig:
        return self._estimator.config

    @property
    def epsilon(self) -> float:
        return self._estimator.epsilon

    @property
    def d(self) -> int:
        return self._estimator.d

    @property
    def postprocess(self) -> str:
        return self._estimator.postprocess

    @property
    def tol(self) -> float:
        """Effective stopping tolerance (always a plain ``float``)."""
        return self._estimator.tol

    @property
    def max_iter(self) -> int:
        return self._estimator.max_iter

    @property
    def transition_matrix(self) -> np.ndarray:
        """The round's ``(d, d)`` channel matrix (shared, read-only)."""
        return self._estimator.transition_matrix

    @property
    def result_(self):
        return self._estimator.result_

    # -- pre-v2 ingestion API ---------------------------------------------
    def ingest(self, report: SWReport) -> None:
        """Add one v1 report to the round."""
        if report.round_id != self.round_id:
            raise ValueError(
                f"report for round {report.round_id!r} sent to round "
                f"{self.round_id!r}"
            )
        if report.attr != self.attr:
            raise ValueError(
                f"report for attribute {report.attr!r} sent to server for "
                f"attribute {self.attr!r}"
            )
        self._estimator.ingest(np.array([report.value]))

    def ingest_batch(self, payload: str) -> int:
        """Add a JSON-lines batch; returns the number of reports ingested."""
        return self.ingest_lines(payload)

    def ingest_values(self, values: np.ndarray) -> None:
        """Add already-decoded randomized values (simulation fast path)."""
        self._estimator.ingest(np.asarray(values, dtype=np.float64))

    # -- pre-v2 serialization layout --------------------------------------
    def to_state(self) -> dict:
        """Serialize the round identity plus the aggregation state."""
        return {
            "class": "repro.protocol.server:SWServer",
            "round_id": self.round_id,
            "attr": self.attr,
            "sw": self._estimator.to_state(),
        }

    @classmethod
    def from_state(cls, payload: dict) -> "SWServer":
        """Rebuild a shard server from :meth:`to_state` output."""
        inner = Estimator.from_state(payload["sw"])
        if not isinstance(inner, SWEstimator):
            raise ValueError("SWServer state must wrap an SWEstimator")
        server = cls(
            payload["round_id"],
            inner.epsilon,
            inner.d,
            b=inner.mechanism.b,
            config=inner.config,
            attr=payload.get("attr", DEFAULT_ATTR),
        )
        server._estimator = inner
        return server

    def __repr__(self) -> str:
        return (
            f"SWServer(round_id={self.round_id!r}, epsilon={self.epsilon}, "
            f"d={self.d}, postprocess={self.postprocess!r}, "
            f"n_reports={self.n_reports})"
        )
