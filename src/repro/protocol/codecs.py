"""Per-mechanism wire payload codecs (protocol v2).

Every estimator family produces a different report object — a float per
user for Square Wave, a category index for GRR and discrete SW, an
``(a, b, y)`` hash triple for OLH, a ``(row, bit)`` Hadamard coefficient for
HRR, per-level oracle bundles for the hierarchical estimators — yet the
collection service must carry all of them over one wire. A
:class:`PayloadCodec` closes that gap: it maps a mechanism's report batch to
and from a set of named, fixed-dtype *columns*, which serve two encodings at
once:

* the v2 JSON-lines form (:class:`repro.protocol.messages.ReportEnvelope`)
  carries one row's payload per line — a scalar for single-column codecs, a
  small array otherwise;
* the binary frame form (:mod:`repro.protocol.frames`) writes each column as
  one raw little-endian buffer, so encoding and decoding a million reports
  is a handful of ``ndarray`` operations instead of a Python loop.

Codecs are registered by name next to the estimator registry
(:class:`repro.api.registry.EstimatorSpec` records each family's default
codec) and every estimator instance names its codec via the ``wire_codec``
attribute, so :func:`codec_for_estimator` resolves the right one even for
families whose payload type depends on construction (CFO binning reports
through GRR or OLH depending on the chosen oracle).

Nothing privacy-relevant lives here — payloads are already randomized — but
decoding validates shapes and dtypes, so a corrupted feed fails loudly
instead of silently biasing the estimate.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

__all__ = [
    "PayloadCodec",
    "register_codec",
    "get_codec",
    "list_codecs",
    "codec_for_estimator",
]

#: Wire dtypes a codec column may use (little-endian, fixed width).
_WIRE_DTYPES = ("<f8", "<i8")


class PayloadCodec(abc.ABC):
    """Maps one mechanism family's report batches to/from wire columns.

    Subclasses declare ``name`` and ``columns`` — an ordered tuple of
    ``(column_name, dtype_str)`` pairs with dtypes from ``{"<f8", "<i8"}`` —
    and implement :meth:`to_columns` / :meth:`from_columns`. The JSON-lines
    payload forms (:meth:`to_payloads` / :meth:`from_payloads`) are derived:
    a single-column codec's payload is the bare value, a multi-column
    codec's payload is the row as a list.
    """

    #: Registry key; also what travels in the envelope ``mech`` field.
    name: str = ""

    #: Ordered ``(name, dtype)`` column layout of one report batch.
    columns: tuple[tuple[str, str], ...] = ()

    # ------------------------------------------------------------------
    # columnar form (frames)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        """Decompose a report batch into equal-length 1-d column arrays."""

    @abc.abstractmethod
    def from_columns(self, columns: dict[str, np.ndarray]) -> Any:
        """Rebuild the report batch a matching estimator's ``ingest`` takes."""

    def n_reports(self, reports: Any) -> int:
        """Number of users behind one report batch."""
        n = getattr(reports, "n", None)
        if n is not None:
            return int(n)
        return int(np.asarray(reports).shape[0])

    def _check_columns(self, columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Validate presence, dtype, and equal length of decoded columns."""
        out: dict[str, np.ndarray] = {}
        length: int | None = None
        for col_name, dtype in self.columns:
            if col_name not in columns:
                raise ValueError(
                    f"codec {self.name!r}: missing column {col_name!r}"
                )
            arr = np.asarray(columns[col_name])
            if arr.ndim != 1 or arr.size == 0:
                raise ValueError(
                    f"codec {self.name!r}: column {col_name!r} must be a "
                    f"non-empty 1-d array, got shape {arr.shape}"
                )
            if arr.dtype.kind not in "fiu":
                # Corrupted payloads (null, strings, nested objects) must
                # fail as ValueError, not as astype's TypeError.
                raise ValueError(
                    f"codec {self.name!r}: column {col_name!r} carries "
                    f"non-numeric values"
                )
            if np.dtype(dtype).kind == "f":
                arr = arr.astype(np.float64)
                if not np.isfinite(arr).all():
                    raise ValueError(
                        f"codec {self.name!r}: column {col_name!r} must be finite"
                    )
            else:
                if arr.dtype.kind == "f" and not np.equal(np.mod(arr, 1), 0).all():
                    raise ValueError(
                        f"codec {self.name!r}: column {col_name!r} must be integral"
                    )
                arr = arr.astype(np.int64)
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise ValueError(
                    f"codec {self.name!r}: columns have mismatched lengths"
                )
            out[col_name] = arr
        unknown = set(columns) - {name for name, _ in self.columns}
        if unknown:
            raise ValueError(
                f"codec {self.name!r}: unexpected columns {sorted(unknown)}"
            )
        return out

    # ------------------------------------------------------------------
    # row form (JSON lines)
    # ------------------------------------------------------------------
    def to_payloads(self, reports: Any) -> list:
        """One JSON-ready payload per report (scalar or per-row list)."""
        cols = self.to_columns(reports)
        arrays = [cols[col_name].tolist() for col_name, _ in self.columns]
        if len(arrays) == 1:
            return arrays[0]
        return [list(row) for row in zip(*arrays, strict=True)]

    def from_payloads(self, payloads: Sequence) -> Any:
        """Rebuild a report batch from a list of per-report payloads."""
        if len(payloads) == 0:
            raise ValueError(f"codec {self.name!r}: no payloads to decode")
        names = [col_name for col_name, _ in self.columns]
        try:
            arr = np.asarray(payloads)
        except ValueError:
            arr = np.asarray(payloads, dtype=object)  # ragged rows
        if len(names) == 1:
            columns = {names[0]: arr}
        else:
            if arr.ndim != 2 or arr.shape[1] != len(names):
                raise ValueError(
                    f"codec {self.name!r}: each payload must be a "
                    f"{len(names)}-element row, got array shape {arr.shape}"
                )
            columns = {name: arr[:, j] for j, name in enumerate(names)}
        return self.from_columns(columns)

    def __repr__(self) -> str:
        layout = ", ".join(f"{n}:{d}" for n, d in self.columns)
        return f"{type(self).__name__}(name={self.name!r}, columns=[{layout}])"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_CODECS: dict[str, PayloadCodec] = {}


def register_codec(codec: PayloadCodec, *, overwrite: bool = False) -> PayloadCodec:
    """Register a codec instance under its ``name`` (third parties welcome)."""
    if not codec.name:
        raise ValueError("codec must declare a non-empty name")
    if not codec.columns:
        raise ValueError(f"codec {codec.name!r} must declare its columns")
    for col_name, dtype in codec.columns:
        if dtype not in _WIRE_DTYPES:
            raise ValueError(
                f"codec {codec.name!r} column {col_name!r}: dtype must be one "
                f"of {_WIRE_DTYPES}, got {dtype!r}"
            )
    if not overwrite and codec.name in _CODECS:
        raise ValueError(f"codec {codec.name!r} is already registered")
    _CODECS[codec.name] = codec
    return codec


def get_codec(name: str) -> PayloadCodec:
    """Look up a codec; raises ``ValueError`` for unknown names."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown payload codec {name!r}; registered: {sorted(_CODECS)}"
        ) from None


def list_codecs() -> list[PayloadCodec]:
    """All registered codecs, sorted by name."""
    return sorted(_CODECS.values(), key=lambda codec: codec.name)


def codec_for_estimator(estimator: Any) -> PayloadCodec:
    """The codec an estimator instance's reports travel under.

    Every built-in estimator names its codec via the ``wire_codec``
    attribute (a property where the payload type depends on construction,
    e.g. CFO binning). ``None`` means the family's reports have no wire
    form and shard state must travel via ``to_state()`` instead.
    """
    name = getattr(estimator, "wire_codec", None)
    if name is None:
        raise ValueError(
            f"{type(estimator).__name__} reports have no wire codec; "
            "ship shard state via to_state() instead"
        )
    return get_codec(name)


# ----------------------------------------------------------------------
# built-in codecs
# ----------------------------------------------------------------------


class FloatValueCodec(PayloadCodec):
    """One float per report: continuous SW and the scalar SR/PM mechanisms."""

    name = "float"
    columns = (("value", "<f8"),)

    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        arr = np.asarray(reports, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("float reports must be a non-empty 1-d array")
        if not np.isfinite(arr).all():
            raise ValueError("float reports must be finite")
        return {"value": arr}

    def from_columns(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return self._check_columns(columns)["value"]


class CategoryCodec(PayloadCodec):
    """One category index per report: GRR and the discrete SW variant."""

    name = "category"
    columns = (("value", "<i8"),)

    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        arr = np.asarray(reports)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("category reports must be a non-empty 1-d array")
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValueError("category reports must be integers")
        return {"value": arr.astype(np.int64)}

    def from_columns(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return self._check_columns(columns)["value"]


class OLHCodec(PayloadCodec):
    """Per-report ``(a, b, y)``: OLH hash coefficients + perturbed hash."""

    name = "olh"
    columns = (("a", "<i8"), ("b", "<i8"), ("y", "<i8"))

    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        from repro.freq_oracle.olh import OLHReports

        if not isinstance(reports, OLHReports):
            raise ValueError(
                f"olh codec expects OLHReports, got {type(reports).__name__}"
            )
        return {
            "a": reports.a.astype(np.int64),
            "b": reports.b.astype(np.int64),
            "y": reports.y.astype(np.int64),
        }

    def from_columns(self, columns: dict[str, np.ndarray]):
        from repro.freq_oracle.olh import OLHReports

        cols = self._check_columns(columns)
        return OLHReports(a=cols["a"], b=cols["b"], y=cols["y"])


class HRRCodec(PayloadCodec):
    """Per-report ``(row, bit)``: a perturbed Hadamard coefficient."""

    name = "hrr"
    columns = (("row", "<i8"), ("bit", "<i8"))

    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        from repro.freq_oracle.hrr import HRRReports

        if not isinstance(reports, HRRReports):
            raise ValueError(
                f"hrr codec expects HRRReports, got {type(reports).__name__}"
            )
        return {
            "row": reports.row.astype(np.int64),
            "bit": reports.bit.astype(np.int64),
        }

    def from_columns(self, columns: dict[str, np.ndarray]):
        from repro.freq_oracle.hrr import HRRReports

        cols = self._check_columns(columns)
        if not np.isin(cols["bit"], (-1, 1)).all():
            raise ValueError("hrr codec: bit column must be -1 or +1")
        return HRRReports(row=cols["row"], bit=cols["bit"])


#: Oracle discriminants used by :class:`TreeCodec` rows.
_TREE_ORACLE_CATEGORY = 0
_TREE_ORACLE_OLH = 1
_TREE_ORACLE_HRR = 2


class TreeCodec(PayloadCodec):
    """Hierarchical reports (HH, HaarHRR): one level-tagged row per user.

    Each user reported at exactly one tree level through that level's
    oracle, so a row is ``(level, oracle, c0, c1, c2)`` — the oracle
    discriminant (0 = category/GRR, 1 = OLH, 2 = HRR) plus up to three
    generic integer coefficients (GRR uses ``c0``; HRR uses ``c0, c1``; OLH
    uses all three). Decoding regroups rows into the
    :class:`repro.hierarchy.hh.TreeReports` bundle ``ingest`` expects;
    levels must be oracle-homogeneous (they are by construction).
    """

    name = "tree"
    columns = (
        ("level", "<i8"),
        ("oracle", "<i8"),
        ("c0", "<i8"),
        ("c1", "<i8"),
        ("c2", "<i8"),
    )

    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        from repro.freq_oracle.hrr import HRRReports
        from repro.freq_oracle.olh import OLHReports
        from repro.hierarchy.hh import TreeReports

        if not isinstance(reports, TreeReports):
            raise ValueError(
                f"tree codec expects TreeReports, got {type(reports).__name__}"
            )
        levels, oracles, c0s, c1s, c2s = [], [], [], [], []
        for level in sorted(reports.reports):
            batch = reports.reports[level]
            if isinstance(batch, OLHReports):
                kind, n = _TREE_ORACLE_OLH, batch.n
                c0, c1, c2 = batch.a, batch.b, batch.y
            elif isinstance(batch, HRRReports):
                kind, n = _TREE_ORACLE_HRR, batch.n
                c0, c1 = batch.row, batch.bit
                c2 = np.zeros(n, dtype=np.int64)
            else:
                arr = np.asarray(batch)
                if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
                    raise ValueError(
                        f"tree codec: level {level} carries unsupported "
                        f"reports of type {type(batch).__name__}"
                    )
                kind, n = _TREE_ORACLE_CATEGORY, arr.size
                c0 = arr.astype(np.int64)
                c1 = np.zeros(n, dtype=np.int64)
                c2 = np.zeros(n, dtype=np.int64)
            if n != reports.counts.get(level):
                raise ValueError(
                    f"tree codec: level {level} count mismatch "
                    f"({reports.counts.get(level)} != {n})"
                )
            levels.append(np.full(n, level, dtype=np.int64))
            oracles.append(np.full(n, kind, dtype=np.int64))
            c0s.append(np.asarray(c0, dtype=np.int64))
            c1s.append(np.asarray(c1, dtype=np.int64))
            c2s.append(np.asarray(c2, dtype=np.int64))
        if not levels:
            raise ValueError("tree codec: batch contains no reports")
        return {
            "level": np.concatenate(levels),
            "oracle": np.concatenate(oracles),
            "c0": np.concatenate(c0s),
            "c1": np.concatenate(c1s),
            "c2": np.concatenate(c2s),
        }

    def from_columns(self, columns: dict[str, np.ndarray]):
        from repro.freq_oracle.hrr import HRRReports
        from repro.freq_oracle.olh import OLHReports
        from repro.hierarchy.hh import TreeReports

        cols = self._check_columns(columns)
        level_col, oracle_col = cols["level"], cols["oracle"]
        reports: dict[int, Any] = {}
        counts: dict[int, int] = {}
        for level in np.unique(level_col):
            mask = level_col == level
            kinds = np.unique(oracle_col[mask])
            if kinds.size != 1:
                raise ValueError(
                    f"tree codec: level {int(level)} mixes oracle kinds"
                )
            kind = int(kinds[0])
            c0, c1, c2 = cols["c0"][mask], cols["c1"][mask], cols["c2"][mask]
            if kind == _TREE_ORACLE_CATEGORY:
                batch: Any = c0
            elif kind == _TREE_ORACLE_OLH:
                batch = OLHReports(a=c0, b=c1, y=c2)
            elif kind == _TREE_ORACLE_HRR:
                if not np.isin(c1, (-1, 1)).all():
                    raise ValueError(
                        "tree codec: HRR bit column must be -1 or +1"
                    )
                batch = HRRReports(row=c0, bit=c1)
            else:
                raise ValueError(f"tree codec: unknown oracle kind {kind}")
            reports[int(level)] = batch
            counts[int(level)] = int(mask.sum())
        return TreeReports(reports=reports, counts=counts)


class MultiAttributeCodec(PayloadCodec):
    """Population-split marginals: ``(attribute slot, SW float)`` per user."""

    name = "multi"
    columns = (("attribute", "<i8"), ("value", "<f8"))

    def to_columns(self, reports: Any) -> dict[str, np.ndarray]:
        from repro.multidim.marginals import MultiAttributeReports

        if not isinstance(reports, MultiAttributeReports):
            raise ValueError(
                "multi codec expects MultiAttributeReports, got "
                f"{type(reports).__name__}"
            )
        return {
            "attribute": reports.attribute.astype(np.int64),
            "value": reports.value.astype(np.float64),
        }

    def from_columns(self, columns: dict[str, np.ndarray]):
        from repro.multidim.marginals import MultiAttributeReports

        cols = self._check_columns(columns)
        if cols["attribute"].min() < 0:
            raise ValueError("multi codec: attribute slots must be >= 0")
        return MultiAttributeReports(
            attribute=cols["attribute"], value=cols["value"]
        )


register_codec(FloatValueCodec())
register_codec(CategoryCodec())
register_codec(OLHCodec())
register_codec(HRRCodec())
register_codec(TreeCodec())
register_codec(MultiAttributeCodec())
