"""Client side of an SW collection round.

``SWClient`` holds only public parameters (epsilon, b, round id) — it can be
shipped to untrusted devices. ``report`` randomizes one private value and
returns the wire message; nothing unrandomized ever leaves the call.
"""

from __future__ import annotations

import numpy as np

from repro.core.square_wave import SquareWave
from repro.protocol.messages import SWReport, encode_batch
from repro.utils.rng import RngLike, as_generator

__all__ = ["SWClient"]


class SWClient:
    """Randomizes private values for one collection round.

    Parameters
    ----------
    round_id:
        Identifier the server uses to group reports; also pins the
        public parameters (epsilon, b) for the round.
    epsilon, b:
        Square Wave parameters (``b`` defaults to ``b*(epsilon)``).
    """

    def __init__(self, round_id: str, epsilon: float, b: float | None = None) -> None:
        self.round_id = str(round_id)
        self.mechanism = SquareWave(epsilon, b=b)

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    def report(self, value: float, rng: RngLike = None) -> SWReport:
        """Randomize one private value into a wire message."""
        gen = as_generator(rng)
        randomized = self.mechanism.privatize(np.array([value]), rng=gen)
        return SWReport(self.round_id, float(randomized[0]))

    def report_batch(self, values: np.ndarray, rng: RngLike = None) -> str:
        """Randomize many values (e.g. one per device in a fleet simulator)
        and encode them as JSON lines."""
        randomized = self.mechanism.privatize(values, rng=rng)
        return encode_batch(self.round_id, randomized)

    def __repr__(self) -> str:
        return (
            f"SWClient(round_id={self.round_id!r}, epsilon={self.epsilon}, "
            f"b={self.mechanism.b:.4f})"
        )
