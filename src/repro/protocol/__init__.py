"""Deployment-shaped client/server layer for SW collection rounds."""

from repro.protocol.client import SWClient
from repro.protocol.messages import (
    DEFAULT_ATTR,
    PROTOCOL_VERSION,
    SWReport,
    decode_batch,
    decode_batch_grouped,
    encode_batch,
)
from repro.protocol.server import SWServer

__all__ = [
    "SWClient",
    "SWServer",
    "SWReport",
    "PROTOCOL_VERSION",
    "DEFAULT_ATTR",
    "encode_batch",
    "decode_batch",
    "decode_batch_grouped",
]
