"""Deployment-shaped client/server layer for LDP collection rounds.

Protocol v1 is the original Square-Wave JSON-lines format; protocol v2
generalizes the wire to every registered mechanism via payload codecs
(:mod:`repro.protocol.codecs`), adds a columnar binary frame transport
(:mod:`repro.protocol.frames`), and serves any registry estimator through
:class:`CollectionServer` / :class:`PlanServer`.
"""

from repro.protocol.client import SWClient
from repro.protocol.codecs import (
    PayloadCodec,
    codec_for_estimator,
    get_codec,
    list_codecs,
    register_codec,
)
from repro.protocol.frames import (
    FRAME_MAGIC,
    FrameBlock,
    decode_frame,
    decode_frame_grouped,
    encode_frame,
    encode_frame_blocks,
    is_frame,
    iter_frame_blocks,
)
from repro.protocol.messages import (
    DEFAULT_ATTR,
    PROTOCOL_V2,
    PROTOCOL_VERSION,
    FeedGroup,
    ReportEnvelope,
    SWReport,
    decode_batch,
    decode_batch_grouped,
    decode_feed,
    decode_feed_grouped,
    encode_batch,
    encode_batch_v2,
)
from repro.protocol.server import (
    CollectionServer,
    EstimateFailure,
    PlanServer,
    SWServer,
    estimate_rounds,
)

__all__ = [
    "SWClient",
    "CollectionServer",
    "PlanServer",
    "SWServer",
    "EstimateFailure",
    "estimate_rounds",
    "SWReport",
    "ReportEnvelope",
    "FeedGroup",
    "PROTOCOL_VERSION",
    "PROTOCOL_V2",
    "DEFAULT_ATTR",
    "FRAME_MAGIC",
    "FrameBlock",
    "iter_frame_blocks",
    "PayloadCodec",
    "register_codec",
    "get_codec",
    "list_codecs",
    "codec_for_estimator",
    "encode_batch",
    "decode_batch",
    "decode_batch_grouped",
    "encode_batch_v2",
    "decode_feed",
    "decode_feed_grouped",
    "encode_frame",
    "encode_frame_blocks",
    "decode_frame",
    "decode_frame_grouped",
    "is_frame",
]
