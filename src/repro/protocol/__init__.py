"""Deployment-shaped client/server layer for SW collection rounds."""

from repro.protocol.client import SWClient
from repro.protocol.messages import PROTOCOL_VERSION, SWReport, decode_batch, encode_batch
from repro.protocol.server import SWServer

__all__ = [
    "SWClient",
    "SWServer",
    "SWReport",
    "PROTOCOL_VERSION",
    "encode_batch",
    "decode_batch",
]
