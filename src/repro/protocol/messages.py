"""Wire formats for collection rounds: v1 SW JSON lines + generic v2 envelopes.

A deployment sends one small message per user. Protocol **v1** is the
original Square-Wave-only format — ``SWReport`` carries the protocol
version, the collection round, the attribute (multi-attribute sessions
share one feed), and the randomized float. Protocol **v2** generalizes the
same JSON-lines shape to *every* mechanism family: a :class:`ReportEnvelope`
carries the round, attribute, the payload codec name, and a codec-specific
payload (see :mod:`repro.protocol.codecs`), so OLH hash triples and
hierarchical level reports travel the same feed as SW floats.

:func:`decode_feed_grouped` is the server-side entry point: it accepts a
mixed v1/v2 feed (v1 lines decode as ``float`` payloads, byte-for-byte
compatibly) and partitions it into per-attribute report batches. For bulk
transport, prefer the columnar binary frames in
:mod:`repro.protocol.frames`; JSON lines stay the greppable,
language-neutral interchange form.

Nothing privacy-relevant lives here — by the time a value reaches a report
it is already randomized — but decoding *validates* that reports are
well-formed (and, for v1 floats, finite), so a corrupted or mismatched feed
fails loudly instead of silently biasing the estimate. Malformed lines are
reported with their 1-based line number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.protocol.codecs import PayloadCodec, get_codec

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_V2",
    "DEFAULT_ATTR",
    "SWReport",
    "ReportEnvelope",
    "FeedGroup",
    "encode_batch",
    "decode_batch",
    "decode_batch_grouped",
    "encode_batch_v2",
    "decode_feed",
    "decode_feed_grouped",
]

PROTOCOL_VERSION = 1

#: Generic-envelope protocol version (mechanism-agnostic payloads).
PROTOCOL_V2 = 2

#: Attribute id single-attribute rounds implicitly report under. Lines
#: written before the field existed decode to this, so old feeds stay valid.
DEFAULT_ATTR = "value"


def _at_line(lineno: int | None) -> str:
    return f"line {lineno}: " if lineno is not None else ""


@dataclass(frozen=True)
class SWReport:
    """One user's randomized report for one collection round (protocol v1).

    ``attr`` identifies which attribute of a multi-attribute session the
    report belongs to; single-attribute rounds leave it at
    :data:`DEFAULT_ATTR` and the wire line omits it entirely, so the format
    is byte-identical to the pre-``attr`` protocol in that case.
    """

    round_id: str
    value: float
    version: int = PROTOCOL_VERSION
    attr: str = DEFAULT_ATTR

    def to_json(self) -> str:
        data = {"round_id": self.round_id, "value": self.value, "version": self.version}
        if self.attr != DEFAULT_ATTR:
            data["attr"] = self.attr
        return json.dumps(data, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str, *, lineno: int | None = None) -> "SWReport":
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"{_at_line(lineno)}malformed SW report line: {line!r}"
            ) from exc
        return cls._from_data(data, line, lineno=lineno)

    @classmethod
    def _from_data(
        cls, data: Any, line: str, *, lineno: int | None = None
    ) -> "SWReport":
        try:
            report = cls(
                round_id=str(data["round_id"]),
                value=float(data["value"]),
                version=int(data.get("version", PROTOCOL_VERSION)),
                attr=str(data.get("attr", DEFAULT_ATTR)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{_at_line(lineno)}malformed SW report line: {line!r}"
            ) from exc
        if report.version != PROTOCOL_VERSION:
            raise ValueError(
                f"{_at_line(lineno)}unsupported protocol version {report.version} "
                f"(this decoder speaks {PROTOCOL_VERSION})"
            )
        if not np.isfinite(report.value):
            raise ValueError(f"{_at_line(lineno)}report value must be finite")
        return report


@dataclass(frozen=True)
class ReportEnvelope:
    """One user's randomized report for any mechanism (protocol v2).

    ``mechanism`` names the payload codec (:mod:`repro.protocol.codecs`);
    ``payload`` is that codec's per-report form — a scalar for
    single-column codecs (SW float, GRR category), a small list otherwise
    (OLH ``[a, b, y]``, HRR ``[row, bit]``, tree rows). As in v1, the wire
    line omits ``attr`` when it is the default.
    """

    round_id: str
    mechanism: str
    payload: Any
    version: int = PROTOCOL_V2
    attr: str = DEFAULT_ATTR

    def to_json(self) -> str:
        data = {
            "round_id": self.round_id,
            "mech": self.mechanism,
            "payload": self.payload,
            "version": self.version,
        }
        if self.attr != DEFAULT_ATTR:
            data["attr"] = self.attr
        return json.dumps(data, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str, *, lineno: int | None = None) -> "ReportEnvelope":
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"{_at_line(lineno)}malformed report envelope: {line!r}"
            ) from exc
        return cls._from_data(data, line, lineno=lineno)

    @classmethod
    def _from_data(
        cls, data: Any, line: str, *, lineno: int | None = None
    ) -> "ReportEnvelope":
        if not isinstance(data, dict):
            raise ValueError(
                f"{_at_line(lineno)}malformed report envelope: {line!r}"
            )
        try:
            # Coerce like the v1 decoder does, so e.g. "version": "1" keeps
            # decoding through every v2-routed path too.
            version = int(data.get("version", PROTOCOL_VERSION))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"{_at_line(lineno)}malformed report envelope: {line!r}"
            ) from exc
        if version == PROTOCOL_VERSION:
            # A v1 line is exactly a float-codec envelope; route through the
            # v1 validator (on the already-parsed data — no second
            # json.loads on the per-report hot path) so old feeds keep
            # their old failure modes.
            report = SWReport._from_data(data, line, lineno=lineno)
            return cls(
                round_id=report.round_id,
                mechanism="float",
                payload=report.value,
                version=PROTOCOL_VERSION,
                attr=report.attr,
            )
        if version != PROTOCOL_V2:
            raise ValueError(
                f"{_at_line(lineno)}unsupported protocol version {version} "
                f"(this decoder speaks {PROTOCOL_VERSION} and {PROTOCOL_V2})"
            )
        try:
            return cls(
                round_id=str(data["round_id"]),
                mechanism=str(data["mech"]),
                payload=data["payload"],
                version=PROTOCOL_V2,
                attr=str(data.get("attr", DEFAULT_ATTR)),
            )
        except KeyError as exc:
            raise ValueError(
                f"{_at_line(lineno)}malformed report envelope: {line!r}"
            ) from exc


@dataclass(frozen=True)
class FeedGroup:
    """One attribute's worth of a decoded feed: codec name + report batch."""

    attr: str
    mechanism: str
    reports: Any
    n: int


# ----------------------------------------------------------------------
# protocol v1 (SW floats)
# ----------------------------------------------------------------------


def encode_batch(round_id: str, values: np.ndarray, attr: str = DEFAULT_ATTR) -> str:
    """Encode randomized values as v1 JSON lines (one report per line).

    Lines are built from one pre-formatted array pass — ``json.dumps``
    serializes finite doubles via ``float.__repr__``, so gluing
    ``repr(value)`` between a constant prefix and suffix is byte-identical
    to per-report ``SWReport(...).to_json()`` at a fraction of the cost.
    Non-finite values fall back to the dataclass path so their (legacy)
    ``Infinity``/``NaN`` spellings are preserved.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("values must be 1-dimensional")
    if not np.isfinite(arr).all():  # pragma: no cover - legacy spelling path
        return "\n".join(SWReport(round_id, float(v), attr=attr).to_json() for v in arr)
    prefix = f'{{"round_id":{json.dumps(round_id)},"value":'
    attr_part = "" if attr == DEFAULT_ATTR else f',"attr":{json.dumps(attr)}'
    suffix = f',"version":{PROTOCOL_VERSION}{attr_part}}}'
    return "\n".join(f"{prefix}{v!r}{suffix}" for v in arr.tolist())


def _iter_reports(payload: str, expected_round: str | None):
    for lineno, line in enumerate(payload.splitlines(), start=1):
        if not line.strip():
            continue
        report = SWReport.from_json(line, lineno=lineno)
        if expected_round is not None and report.round_id != expected_round:
            raise ValueError(
                f"{_at_line(lineno)}report for round {report.round_id!r} mixed "
                f"into round {expected_round!r}"
            )
        yield report


def decode_batch(
    payload: str,
    expected_round: str | None = None,
    expected_attr: str | None = None,
) -> np.ndarray:
    """Decode v1 JSON lines into a report array, checking feed consistency.

    ``expected_attr`` (when given) rejects reports for any other attribute —
    the guard a single-attribute server uses against a mixed
    multi-attribute feed. The default accepts everything, preserving the
    pre-``attr`` behaviour.
    """
    values = []
    for report in _iter_reports(payload, expected_round):
        if expected_attr is not None and report.attr != expected_attr:
            raise ValueError(
                f"report for attribute {report.attr!r} mixed into "
                f"attribute {expected_attr!r}"
            )
        values.append(report.value)
    if not values:
        raise ValueError("payload contained no reports")
    return np.asarray(values, dtype=np.float64)


def decode_batch_grouped(
    payload: str, expected_round: str | None = None
) -> dict[str, np.ndarray]:
    """Decode a mixed multi-attribute v1 feed into per-attribute arrays."""
    groups: dict[str, list[float]] = {}
    for report in _iter_reports(payload, expected_round):
        groups.setdefault(report.attr, []).append(report.value)
    if not groups:
        raise ValueError("payload contained no reports")
    return {
        attr: np.asarray(values, dtype=np.float64)
        for attr, values in groups.items()
    }


# ----------------------------------------------------------------------
# protocol v2 (generic envelopes)
# ----------------------------------------------------------------------


def encode_batch_v2(
    round_id: str,
    reports: Any,
    codec: str | PayloadCodec,
    attr: str = DEFAULT_ATTR,
) -> str:
    """Encode one mechanism's report batch as v2 JSON lines.

    ``codec`` is a registered payload codec (or its name); each line is one
    :class:`ReportEnvelope`. Like v1 encoding, lines share a pre-formatted
    prefix/suffix so only the payload is serialized per report.
    """
    if isinstance(codec, str):
        codec = get_codec(codec)
    payloads = codec.to_payloads(reports)
    prefix = (
        f'{{"round_id":{json.dumps(round_id)},'
        f'"mech":{json.dumps(codec.name)},"payload":'
    )
    attr_part = "" if attr == DEFAULT_ATTR else f',"attr":{json.dumps(attr)}'
    suffix = f',"version":{PROTOCOL_V2}{attr_part}}}'
    dumps = json.dumps
    return "\n".join(
        f"{prefix}{dumps(p, separators=(',', ':'))}{suffix}" for p in payloads
    )


def decode_feed_grouped(
    payload: str, expected_round: str | None = None
) -> tuple[str, dict[str, FeedGroup]]:
    """Decode a mixed v1/v2 feed into per-attribute report batches.

    All lines must belong to one collection round (checked against
    ``expected_round`` when given) and each attribute must report through a
    single mechanism codec. Returns ``(round_id, {attr: FeedGroup})``; the
    groups partition the feed exactly — every line lands in exactly one
    group, in feed order.
    """
    round_id: str | None = expected_round
    mechanisms: dict[str, str] = {}
    payloads: dict[str, list] = {}
    for lineno, line in enumerate(payload.splitlines(), start=1):
        if not line.strip():
            continue
        envelope = ReportEnvelope.from_json(line, lineno=lineno)
        if round_id is None:
            round_id = envelope.round_id
        elif envelope.round_id != round_id:
            raise ValueError(
                f"{_at_line(lineno)}report for round {envelope.round_id!r} "
                f"mixed into round {round_id!r}"
            )
        known = mechanisms.setdefault(envelope.attr, envelope.mechanism)
        if envelope.mechanism != known:
            raise ValueError(
                f"{_at_line(lineno)}attribute {envelope.attr!r} mixes "
                f"mechanism {envelope.mechanism!r} into {known!r}"
            )
        payloads.setdefault(envelope.attr, []).append(envelope.payload)
    if not payloads:
        raise ValueError("payload contained no reports")
    assert round_id is not None
    groups = {}
    for attr, rows in payloads.items():
        codec = get_codec(mechanisms[attr])
        try:
            reports = codec.from_payloads(rows)
        except ValueError as exc:
            raise ValueError(f"attribute {attr!r}: {exc}") from exc
        groups[attr] = FeedGroup(
            attr=attr, mechanism=codec.name, reports=reports, n=len(rows)
        )
    return round_id, groups


def decode_feed(
    payload: str,
    expected_round: str | None = None,
    expected_attr: str | None = None,
) -> FeedGroup:
    """Decode a single-attribute v1/v2 feed into one report batch.

    The single-attribute counterpart of :func:`decode_feed_grouped`: a feed
    carrying any other attribute fails loudly (against ``expected_attr``
    when given, or against homogeneity otherwise).
    """
    _, groups = decode_feed_grouped(payload, expected_round=expected_round)
    if expected_attr is not None:
        foreign = set(groups) - {expected_attr}
        if foreign:
            raise ValueError(
                f"report for attribute {sorted(foreign)[0]!r} mixed into "
                f"attribute {expected_attr!r}"
            )
        return groups[expected_attr]
    if len(groups) != 1:
        raise ValueError(
            f"feed mixes attributes {sorted(groups)}; use decode_feed_grouped"
        )
    return next(iter(groups.values()))
