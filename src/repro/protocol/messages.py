"""Wire format for SW collection rounds.

A deployment sends one small message per user. ``SWReport`` is that message:
the protocol version, the collection round it belongs to, and the randomized
float. JSON-lines encoding keeps the format greppable and language-neutral;
``encode_batch``/``decode_batch`` handle whole files.

Nothing privacy-relevant lives here — by the time a value reaches a report
it is already randomized — but decoding *validates* that reports fall inside
the advertised output domain, so a corrupted or mismatched feed fails loudly
instead of silently biasing the estimate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["PROTOCOL_VERSION", "SWReport", "encode_batch", "decode_batch"]

PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class SWReport:
    """One user's randomized report for one collection round."""

    round_id: str
    value: float
    version: int = PROTOCOL_VERSION

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "SWReport":
        data = json.loads(line)
        try:
            report = cls(
                round_id=str(data["round_id"]),
                value=float(data["value"]),
                version=int(data.get("version", PROTOCOL_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed SW report line: {line!r}") from exc
        if report.version != PROTOCOL_VERSION:
            raise ValueError(
                f"unsupported protocol version {report.version} "
                f"(this library speaks {PROTOCOL_VERSION})"
            )
        if not np.isfinite(report.value):
            raise ValueError("report value must be finite")
        return report


def encode_batch(round_id: str, values: np.ndarray) -> str:
    """Encode randomized values as JSON lines (one report per line)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("values must be 1-dimensional")
    return "\n".join(SWReport(round_id, float(v)).to_json() for v in arr)


def decode_batch(payload: str, expected_round: str | None = None) -> np.ndarray:
    """Decode JSON lines into a report array, checking round consistency."""
    values = []
    for line in payload.splitlines():
        if not line.strip():
            continue
        report = SWReport.from_json(line)
        if expected_round is not None and report.round_id != expected_round:
            raise ValueError(
                f"report for round {report.round_id!r} mixed into "
                f"round {expected_round!r}"
            )
        values.append(report.value)
    if not values:
        raise ValueError("payload contained no reports")
    return np.asarray(values, dtype=np.float64)
