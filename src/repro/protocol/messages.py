"""Wire format for SW collection rounds.

A deployment sends one small message per user. ``SWReport`` is that message:
the protocol version, the collection round it belongs to, the attribute the
report is for (multi-attribute sessions share one feed), and the randomized
float. JSON-lines encoding keeps the format greppable and language-neutral;
``encode_batch``/``decode_batch`` handle whole files and
``decode_batch_grouped`` splits a mixed feed per attribute.

Nothing privacy-relevant lives here — by the time a value reaches a report
it is already randomized — but decoding *validates* that reports fall inside
the advertised output domain, so a corrupted or mismatched feed fails loudly
instead of silently biasing the estimate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_ATTR",
    "SWReport",
    "encode_batch",
    "decode_batch",
    "decode_batch_grouped",
]

PROTOCOL_VERSION = 1

#: Attribute id single-attribute rounds implicitly report under. Lines
#: written before the field existed decode to this, so old feeds stay valid.
DEFAULT_ATTR = "value"


@dataclass(frozen=True)
class SWReport:
    """One user's randomized report for one collection round.

    ``attr`` identifies which attribute of a multi-attribute session the
    report belongs to; single-attribute rounds leave it at
    :data:`DEFAULT_ATTR` and the wire line omits it entirely, so the format
    is byte-identical to the pre-``attr`` protocol in that case.
    """

    round_id: str
    value: float
    version: int = PROTOCOL_VERSION
    attr: str = DEFAULT_ATTR

    def to_json(self) -> str:
        data = {"round_id": self.round_id, "value": self.value, "version": self.version}
        if self.attr != DEFAULT_ATTR:
            data["attr"] = self.attr
        return json.dumps(data, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "SWReport":
        data = json.loads(line)
        try:
            report = cls(
                round_id=str(data["round_id"]),
                value=float(data["value"]),
                version=int(data.get("version", PROTOCOL_VERSION)),
                attr=str(data.get("attr", DEFAULT_ATTR)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed SW report line: {line!r}") from exc
        if report.version != PROTOCOL_VERSION:
            raise ValueError(
                f"unsupported protocol version {report.version} "
                f"(this library speaks {PROTOCOL_VERSION})"
            )
        if not np.isfinite(report.value):
            raise ValueError("report value must be finite")
        return report


def encode_batch(round_id: str, values: np.ndarray, attr: str = DEFAULT_ATTR) -> str:
    """Encode randomized values as JSON lines (one report per line)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("values must be 1-dimensional")
    return "\n".join(SWReport(round_id, float(v), attr=attr).to_json() for v in arr)


def _iter_reports(payload: str, expected_round: str | None):
    for line in payload.splitlines():
        if not line.strip():
            continue
        report = SWReport.from_json(line)
        if expected_round is not None and report.round_id != expected_round:
            raise ValueError(
                f"report for round {report.round_id!r} mixed into "
                f"round {expected_round!r}"
            )
        yield report


def decode_batch(
    payload: str,
    expected_round: str | None = None,
    expected_attr: str | None = None,
) -> np.ndarray:
    """Decode JSON lines into a report array, checking feed consistency.

    ``expected_attr`` (when given) rejects reports for any other attribute —
    the guard a single-attribute server uses against a mixed
    multi-attribute feed. The default accepts everything, preserving the
    pre-``attr`` behaviour.
    """
    values = []
    for report in _iter_reports(payload, expected_round):
        if expected_attr is not None and report.attr != expected_attr:
            raise ValueError(
                f"report for attribute {report.attr!r} mixed into "
                f"attribute {expected_attr!r}"
            )
        values.append(report.value)
    if not values:
        raise ValueError("payload contained no reports")
    return np.asarray(values, dtype=np.float64)


def decode_batch_grouped(
    payload: str, expected_round: str | None = None
) -> dict[str, np.ndarray]:
    """Decode a mixed multi-attribute feed into per-attribute report arrays."""
    groups: dict[str, list[float]] = {}
    for report in _iter_reports(payload, expected_round):
        groups.setdefault(report.attr, []).append(report.value)
    if not groups:
        raise ValueError("payload contained no reports")
    return {
        attr: np.asarray(values, dtype=np.float64)
        for attr, values in groups.items()
    }
