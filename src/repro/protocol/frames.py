"""Columnar binary frames: the bulk-transport form of protocol v2.

JSON lines are greppable but cost a Python-level parse per report — at
collection scale (millions of reports per round) that dominates the server's
ingest path. A *frame* carries the same information as a v2 JSON-lines feed
in a columnar binary layout, so encoding and decoding are a handful of
``ndarray`` buffer operations:

.. code-block:: text

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       4     magic  b"RPF2"
    4       4     header length H (uint32, little-endian)
    8       H     UTF-8 JSON header:
                  {"version": 2, "round_id": "...", "blocks": [
                     {"attr": "...", "mech": "<codec>", "n": <reports>,
                      "columns": [["<name>", "<f8"|"<i8"], ...]}, ...]}
    8+H     ...   for each block, for each column in declared order:
                  the raw little-endian buffer (n * itemsize bytes)

One frame holds one collection round and any number of attribute *blocks*
(a multi-attribute session round fits in a single frame); each block's
column layout is its payload codec's (:mod:`repro.protocol.codecs`), so a
frame and the equivalent JSON-lines feed decode to identical report
batches. Buffers are validated against the header before any array is
built — a truncated or padded frame fails loudly.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Protocol

import numpy as np
from numpy.typing import NDArray

from repro.engine.backend import backend
from repro.protocol.codecs import PayloadCodec, get_codec
from repro.protocol.messages import (
    DEFAULT_ATTR,
    PROTOCOL_V2,
    FeedGroup,
    decode_feed_grouped,
)

__all__ = [
    "FRAME_MAGIC",
    "FrameBlock",
    "is_frame",
    "encode_frame",
    "encode_frame_block",
    "encode_frame_blocks",
    "decode_frame",
    "decode_frame_grouped",
    "decode_any_feed",
    "frame_digest",
    "iter_frame_blocks",
]

#: First four bytes of every frame ("Repro Protocol Frame", version 2).
FRAME_MAGIC = b"RPF2"

_HEADER_LEN = struct.Struct("<I")

#: Ceiling on the JSON header size; real headers are a few hundred bytes,
#: so anything larger is a corrupted length field, not a bigger round.
_MAX_HEADER_BYTES = 1 << 20


def is_frame(data: bytes) -> bool:
    """Whether a byte string starts like a protocol v2 frame."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return False
    return bytes(data[:4]) == FRAME_MAGIC


@dataclass(frozen=True)
class _Block:
    attr: str
    codec: PayloadCodec
    columns: dict[str, NDArray[Any]]
    n: int


def _prepare_block(attr: str, codec: str | PayloadCodec, reports: Any) -> _Block:
    if isinstance(codec, str):
        codec = get_codec(codec)
    columns = codec.to_columns(reports)
    lengths = {arr.size for arr in columns.values()}
    if len(lengths) != 1:
        raise ValueError(
            f"codec {codec.name!r} produced mismatched column lengths"
        )
    return _Block(attr=str(attr), codec=codec, columns=columns, n=lengths.pop())


def encode_frame_blocks(
    round_id: str, blocks: Sequence[tuple[str, str | PayloadCodec, Any]]
) -> bytes:
    """Encode ``(attr, codec, reports)`` blocks into one binary frame.

    Attributes must be unique within a frame (one block per attribute);
    shard a round across frames, not across duplicate blocks.
    """
    prepared = [_prepare_block(attr, codec, reports) for attr, codec, reports in blocks]
    if not prepared:
        raise ValueError("frame must contain at least one block")
    attrs = [block.attr for block in prepared]
    if len(set(attrs)) != len(attrs):
        raise ValueError(f"frame repeats attributes: {sorted(attrs)}")
    header = {
        "version": PROTOCOL_V2,
        "round_id": str(round_id),
        "blocks": [
            {
                "attr": block.attr,
                "mech": block.codec.name,
                "n": int(block.n),
                "columns": [[name, dtype] for name, dtype in block.codec.columns],
            }
            for block in prepared
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [FRAME_MAGIC, _HEADER_LEN.pack(len(header_bytes)), header_bytes]
    for block in prepared:
        for name, dtype in block.codec.columns:
            parts.append(
                np.ascontiguousarray(block.columns[name], dtype=np.dtype(dtype)).tobytes()
            )
    return b"".join(parts)


def encode_frame(
    round_id: str,
    reports: Any,
    codec: str | PayloadCodec,
    attr: str = DEFAULT_ATTR,
) -> bytes:
    """Encode one attribute's report batch as a single-block frame."""
    return encode_frame_blocks(round_id, [(attr, codec, reports)])


def frame_digest(data: bytes | str) -> str:
    """Stable BLAKE2b-128 hex digest of one upload's wire bytes.

    The content-addressed identity of an upload: the service's durable
    ingest journal stamps every appended segment with it, and the
    idempotency layer uses it both as the default idempotency key and to
    detect key reuse across *different* payloads (a 409, not a replay).
    JSON-lines feeds digest their UTF-8 encoding, so the same feed hashes
    identically whichever transport carried it.
    """
    raw = data.encode("utf-8") if isinstance(data, str) else bytes(data)
    return blake2b(raw, digest_size=16).hexdigest()


def encode_frame_block(block: FrameBlock) -> bytes:
    """Re-encode one decoded block as a standalone single-block frame.

    The durable-journal path: an upload is validated and split into
    per-shard blocks, and each block must be persisted as a
    self-describing RPF2 segment *without* paying the codec's
    ``from_columns`` materialization (the raw wire columns are already in
    hand). Round-trips bit-exactly: ``iter_frame_blocks`` over the result
    yields a block with identical columns.
    """
    header = {
        "version": PROTOCOL_V2,
        "round_id": block.round_id,
        "blocks": [
            {
                "attr": block.attr,
                "mech": block.codec.name,
                "n": int(block.n),
                "columns": [[name, dtype] for name, dtype in block.codec.columns],
            }
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [FRAME_MAGIC, _HEADER_LEN.pack(len(header_bytes)), header_bytes]
    for name, dtype in block.codec.columns:
        parts.append(
            np.ascontiguousarray(
                block.columns[name], dtype=np.dtype(dtype)
            ).tobytes()
        )
    return b"".join(parts)


class _SupportsRead(Protocol):
    """Anything with a ``read(n)`` returning at most ``n`` bytes."""

    def read(self, n: int, /) -> bytes: ...


class _ByteSource:
    """Exact-read cursor over either a byte string or a binary stream.

    Byte-string sources hand out zero-copy ``memoryview`` slices; stream
    sources read exactly the requested span (looping over short reads).
    Either way a short span surfaces as ``None`` so the caller can raise
    with block/column context, and :meth:`leftover` reports undeclared
    trailing bytes after the last declared buffer.
    """

    def __init__(self, source: bytes | bytearray | memoryview | _SupportsRead) -> None:
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._buf: memoryview | None = memoryview(bytes(source))
            self._offset = 0
            self._stream: _SupportsRead | None = None
        else:
            self._buf = None
            self._offset = 0
            self._stream = source

    def take(self, nbytes: int) -> memoryview | bytes | None:
        """The next ``nbytes`` exactly, or ``None`` if the source runs dry."""
        if self._buf is not None:
            end = self._offset + nbytes
            if end > len(self._buf):
                return None
            view = self._buf[self._offset : end]
            self._offset = end
            return view
        assert self._stream is not None
        parts: list[bytes] = []
        remaining = nbytes
        while remaining > 0:
            chunk = self._stream.read(remaining)
            if not chunk:
                return None
            parts.append(chunk)
            remaining -= len(chunk)
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def leftover(self) -> int:
        """Bytes remaining after the declared buffers (0 for a clean frame).

        For streams only *whether* bytes remain is knowable without
        draining; one trailing byte is reported as 1.
        """
        if self._buf is not None:
            return len(self._buf) - self._offset
        assert self._stream is not None
        return 1 if self._stream.read(1) else 0


@dataclass(frozen=True)
class FrameBlock:
    """One attribute's column block, decoded lazily from a frame.

    ``columns`` holds the raw wire arrays (zero-copy views for byte-string
    sources); :meth:`materialize` runs the codec's ``from_columns``
    validation — the cost that scales with report count — and returns the
    :class:`~repro.protocol.messages.FeedGroup` servers ingest. Streaming
    consumers (the service ingest tier) materialize and drop one block at a
    time, so peak memory stays bounded by the largest block rather than the
    whole feed.
    """

    round_id: str
    attr: str
    codec: PayloadCodec
    columns: dict[str, NDArray[Any]]
    n: int

    @property
    def mechanism(self) -> str:
        """The payload codec name this block's reports travel under."""
        return self.codec.name

    def materialize(self) -> FeedGroup:
        """Validate the columns and build the ingestable report batch."""
        return FeedGroup(
            attr=self.attr,
            mechanism=self.codec.name,
            reports=self.codec.from_columns(self.columns),
            n=self.n,
        )


def _read_header_from(src: _ByteSource) -> dict[str, Any]:
    prefix = src.take(8)
    if prefix is None or bytes(prefix[:4]) != FRAME_MAGIC:
        raise ValueError("not a protocol v2 frame (bad magic)")
    (header_len,) = _HEADER_LEN.unpack_from(bytes(prefix), 4)
    if header_len > _MAX_HEADER_BYTES:
        raise ValueError("frame header length exceeds the payload (truncated?)")
    header_bytes = src.take(header_len)
    if header_bytes is None:
        raise ValueError("frame header length exceeds the payload (truncated?)")
    try:
        header = json.loads(bytes(header_bytes).decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValueError("frame header is not valid JSON") from exc
    if not isinstance(header, dict) or header.get("version") != PROTOCOL_V2:
        version = header.get("version") if isinstance(header, dict) else header
        raise ValueError(
            f"unsupported frame version {version!r} "
            f"(this decoder speaks {PROTOCOL_V2})"
        )
    return header


def iter_frame_blocks(
    source: bytes | bytearray | memoryview | _SupportsRead,
    expected_round: str | None = None,
) -> Iterator[FrameBlock]:
    """Stream a frame's column blocks without materializing the whole feed.

    Accepts either a complete byte string or a binary stream (anything with
    ``read(n)``, e.g. an open file or a socket wrapper) and yields one
    :class:`FrameBlock` per declared block, in wire order. Header and
    per-block structure are validated eagerly as the cursor reaches them —
    duplicate attributes, bad counts, codec/column mismatches, and
    truncated buffers fail loudly at the offending block — and undeclared
    trailing bytes after the last block raise once the iterator is
    exhausted, so a fully-drained iterator certifies the same structural
    contract as :func:`decode_frame_grouped`.

    The generator never calls ``codec.from_columns``; callers choose when
    (and whether) to pay per-block materialization via
    :meth:`FrameBlock.materialize`. This is the bounded-memory ingest path:
    the service drains a frame block by block, folding each into O(state)
    aggregation before touching the next.
    """
    src = _ByteSource(source)
    header = _read_header_from(src)
    round_id = str(header.get("round_id", ""))
    if expected_round is not None and round_id != expected_round:
        raise ValueError(
            f"frame for round {round_id!r} sent to round {expected_round!r}"
        )
    blocks = header.get("blocks")
    if not isinstance(blocks, list) or not blocks:
        raise ValueError("frame header declares no blocks")
    seen: set[str] = set()
    for block in blocks:
        if not isinstance(block, dict):
            raise ValueError("frame header block entries must be objects")
        attr = str(block.get("attr", DEFAULT_ATTR))
        if attr in seen:
            raise ValueError(f"frame repeats attribute {attr!r}")
        seen.add(attr)
        codec = get_codec(str(block.get("mech", "")))
        n = block.get("n")
        if not isinstance(n, int) or n < 1:
            raise ValueError(
                f"frame block {attr!r} declares invalid report count {n!r}"
            )
        declared = [tuple(col) for col in block.get("columns", [])]
        if declared != [tuple(col) for col in codec.columns]:
            raise ValueError(
                f"frame block {attr!r} columns {declared} do not match "
                f"codec {codec.name!r} layout {list(codec.columns)}"
            )
        columns: dict[str, NDArray[Any]] = {}
        for name, dtype in codec.columns:
            nbytes = n * np.dtype(dtype).itemsize
            raw = src.take(nbytes)
            if raw is None:
                raise ValueError(
                    f"frame block {attr!r} column {name!r} is truncated"
                )
            columns[name] = np.frombuffer(raw, dtype=np.dtype(dtype), count=n)
        yield FrameBlock(
            round_id=round_id, attr=attr, codec=codec, columns=columns, n=n
        )
    trailing = src.leftover()
    if trailing:
        raise ValueError(
            f"frame carries {trailing} undeclared trailing bytes"
        )


def decode_frame_grouped(
    data: bytes, expected_round: str | None = None
) -> tuple[str, dict[str, FeedGroup]]:
    """Decode a frame into per-attribute report batches.

    Returns ``(round_id, {attr: FeedGroup})`` — the same shape as
    :func:`repro.protocol.messages.decode_feed_grouped`, so servers route
    both transports through one code path. The blocks partition the frame
    exactly; leftover bytes after the declared buffers are an error.

    Header validation and buffer slicing run sequentially through
    :func:`iter_frame_blocks` (zero-copy ``frombuffer`` views, declared
    order, so structural errors surface deterministically); the per-block
    ``codec.from_columns`` materialization — the astype/validation cost
    that actually scales with report count — fans out across the active
    compute backend's workers (:func:`repro.engine.backend.backend`), one
    task per block.
    """
    parsed = list(iter_frame_blocks(bytes(data), expected_round=expected_round))
    decoded = backend().map_ordered(FrameBlock.materialize, parsed)
    return parsed[0].round_id, {group.attr: group for group in decoded}


def decode_any_feed(
    data: bytes | str, expected_round: str | None = None
) -> tuple[str, dict[str, FeedGroup]]:
    """Decode either transport into per-attribute report batches.

    ``bytes`` must be a binary frame; ``str`` is a v1/v2 JSON-lines feed.
    The single dispatch point every server and session ingest path routes
    through, so transport detection cannot drift between them.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        if not is_frame(data):
            raise ValueError("byte feed does not start with a frame magic")
        return decode_frame_grouped(bytes(data), expected_round=expected_round)
    return decode_feed_grouped(data, expected_round=expected_round)


def decode_frame(
    data: bytes,
    expected_round: str | None = None,
    expected_attr: str | None = None,
) -> FeedGroup:
    """Decode a single-attribute frame into one report batch.

    A frame carrying any other attribute fails loudly (against
    ``expected_attr`` when given, or against homogeneity otherwise).
    """
    _, groups = decode_frame_grouped(data, expected_round=expected_round)
    if expected_attr is not None:
        foreign = set(groups) - {expected_attr}
        if foreign:
            raise ValueError(
                f"frame for attribute {sorted(foreign)[0]!r} sent to "
                f"attribute {expected_attr!r}"
            )
        return groups[expected_attr]
    if len(groups) != 1:
        raise ValueError(
            f"frame mixes attributes {sorted(groups)}; use decode_frame_grouped"
        )
    return next(iter(groups.values()))
