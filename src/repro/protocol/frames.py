"""Columnar binary frames: the bulk-transport form of protocol v2.

JSON lines are greppable but cost a Python-level parse per report — at
collection scale (millions of reports per round) that dominates the server's
ingest path. A *frame* carries the same information as a v2 JSON-lines feed
in a columnar binary layout, so encoding and decoding are a handful of
``ndarray`` buffer operations:

.. code-block:: text

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       4     magic  b"RPF2"
    4       4     header length H (uint32, little-endian)
    8       H     UTF-8 JSON header:
                  {"version": 2, "round_id": "...", "blocks": [
                     {"attr": "...", "mech": "<codec>", "n": <reports>,
                      "columns": [["<name>", "<f8"|"<i8"], ...]}, ...]}
    8+H     ...   for each block, for each column in declared order:
                  the raw little-endian buffer (n * itemsize bytes)

One frame holds one collection round and any number of attribute *blocks*
(a multi-attribute session round fits in a single frame); each block's
column layout is its payload codec's (:mod:`repro.protocol.codecs`), so a
frame and the equivalent JSON-lines feed decode to identical report
batches. Buffers are validated against the header before any array is
built — a truncated or padded frame fails loudly.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.engine.backend import backend
from repro.protocol.codecs import PayloadCodec, get_codec
from repro.protocol.messages import (
    DEFAULT_ATTR,
    PROTOCOL_V2,
    FeedGroup,
    decode_feed_grouped,
)

__all__ = [
    "FRAME_MAGIC",
    "is_frame",
    "encode_frame",
    "encode_frame_blocks",
    "decode_frame",
    "decode_frame_grouped",
    "decode_any_feed",
]

#: First four bytes of every frame ("Repro Protocol Frame", version 2).
FRAME_MAGIC = b"RPF2"

_HEADER_LEN = struct.Struct("<I")

#: Ceiling on the JSON header size; real headers are a few hundred bytes,
#: so anything larger is a corrupted length field, not a bigger round.
_MAX_HEADER_BYTES = 1 << 20


def is_frame(data: bytes) -> bool:
    """Whether a byte string starts like a protocol v2 frame."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return False
    return bytes(data[:4]) == FRAME_MAGIC


@dataclass(frozen=True)
class _Block:
    attr: str
    codec: PayloadCodec
    columns: dict[str, NDArray[Any]]
    n: int


def _prepare_block(attr: str, codec: str | PayloadCodec, reports: Any) -> _Block:
    if isinstance(codec, str):
        codec = get_codec(codec)
    columns = codec.to_columns(reports)
    lengths = {arr.size for arr in columns.values()}
    if len(lengths) != 1:
        raise ValueError(
            f"codec {codec.name!r} produced mismatched column lengths"
        )
    return _Block(attr=str(attr), codec=codec, columns=columns, n=lengths.pop())


def encode_frame_blocks(
    round_id: str, blocks: Sequence[tuple[str, str | PayloadCodec, Any]]
) -> bytes:
    """Encode ``(attr, codec, reports)`` blocks into one binary frame.

    Attributes must be unique within a frame (one block per attribute);
    shard a round across frames, not across duplicate blocks.
    """
    prepared = [_prepare_block(attr, codec, reports) for attr, codec, reports in blocks]
    if not prepared:
        raise ValueError("frame must contain at least one block")
    attrs = [block.attr for block in prepared]
    if len(set(attrs)) != len(attrs):
        raise ValueError(f"frame repeats attributes: {sorted(attrs)}")
    header = {
        "version": PROTOCOL_V2,
        "round_id": str(round_id),
        "blocks": [
            {
                "attr": block.attr,
                "mech": block.codec.name,
                "n": int(block.n),
                "columns": [[name, dtype] for name, dtype in block.codec.columns],
            }
            for block in prepared
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [FRAME_MAGIC, _HEADER_LEN.pack(len(header_bytes)), header_bytes]
    for block in prepared:
        for name, dtype in block.codec.columns:
            parts.append(
                np.ascontiguousarray(block.columns[name], dtype=np.dtype(dtype)).tobytes()
            )
    return b"".join(parts)


def encode_frame(
    round_id: str,
    reports: Any,
    codec: str | PayloadCodec,
    attr: str = DEFAULT_ATTR,
) -> bytes:
    """Encode one attribute's report batch as a single-block frame."""
    return encode_frame_blocks(round_id, [(attr, codec, reports)])


def _read_header(data: bytes) -> tuple[dict[str, Any], int]:
    buf = bytes(data)
    if len(buf) < 8 or buf[:4] != FRAME_MAGIC:
        raise ValueError("not a protocol v2 frame (bad magic)")
    (header_len,) = _HEADER_LEN.unpack_from(buf, 4)
    if header_len > _MAX_HEADER_BYTES or 8 + header_len > len(buf):
        raise ValueError("frame header length exceeds the payload (truncated?)")
    try:
        header = json.loads(buf[8 : 8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValueError("frame header is not valid JSON") from exc
    if not isinstance(header, dict) or header.get("version") != PROTOCOL_V2:
        version = header.get("version") if isinstance(header, dict) else header
        raise ValueError(
            f"unsupported frame version {version!r} "
            f"(this decoder speaks {PROTOCOL_V2})"
        )
    return header, 8 + header_len


def decode_frame_grouped(
    data: bytes, expected_round: str | None = None
) -> tuple[str, dict[str, FeedGroup]]:
    """Decode a frame into per-attribute report batches.

    Returns ``(round_id, {attr: FeedGroup})`` — the same shape as
    :func:`repro.protocol.messages.decode_feed_grouped`, so servers route
    both transports through one code path. The blocks partition the frame
    exactly; leftover bytes after the declared buffers are an error.

    Header validation and buffer slicing run sequentially (zero-copy
    ``frombuffer`` views, declared order, so structural errors surface
    deterministically); the per-block ``codec.from_columns``
    materialization — the astype/validation cost that actually scales with
    report count — fans out across the active compute backend's workers
    (:func:`repro.engine.backend.backend`), one task per block.
    """
    buf = bytes(data)
    header, offset = _read_header(buf)
    round_id = str(header.get("round_id", ""))
    if expected_round is not None and round_id != expected_round:
        raise ValueError(
            f"frame for round {round_id!r} sent to round {expected_round!r}"
        )
    blocks = header.get("blocks")
    if not isinstance(blocks, list) or not blocks:
        raise ValueError("frame header declares no blocks")
    parsed: list[tuple[str, PayloadCodec, dict[str, NDArray[Any]], int]] = []
    seen: set[str] = set()
    for block in blocks:
        attr = str(block.get("attr", DEFAULT_ATTR))
        if attr in seen:
            raise ValueError(f"frame repeats attribute {attr!r}")
        seen.add(attr)
        codec = get_codec(str(block.get("mech", "")))
        n = block.get("n")
        if not isinstance(n, int) or n < 1:
            raise ValueError(
                f"frame block {attr!r} declares invalid report count {n!r}"
            )
        declared = [tuple(col) for col in block.get("columns", [])]
        if declared != [tuple(col) for col in codec.columns]:
            raise ValueError(
                f"frame block {attr!r} columns {declared} do not match "
                f"codec {codec.name!r} layout {list(codec.columns)}"
            )
        columns: dict[str, NDArray[Any]] = {}
        for name, dtype in codec.columns:
            nbytes = n * np.dtype(dtype).itemsize
            if offset + nbytes > len(buf):
                raise ValueError(
                    f"frame block {attr!r} column {name!r} is truncated"
                )
            columns[name] = np.frombuffer(
                buf, dtype=np.dtype(dtype), count=n, offset=offset
            )
            offset += nbytes
        parsed.append((attr, codec, columns, n))
    if offset != len(buf):
        raise ValueError(
            f"frame carries {len(buf) - offset} undeclared trailing bytes"
        )

    def materialize(
        item: tuple[str, PayloadCodec, dict[str, NDArray[Any]], int],
    ) -> FeedGroup:
        attr, codec, columns, n = item
        return FeedGroup(
            attr=attr, mechanism=codec.name, reports=codec.from_columns(columns), n=n
        )

    decoded = backend().map_ordered(materialize, parsed)
    return round_id, {group.attr: group for group in decoded}


def decode_any_feed(
    data: bytes | str, expected_round: str | None = None
) -> tuple[str, dict[str, FeedGroup]]:
    """Decode either transport into per-attribute report batches.

    ``bytes`` must be a binary frame; ``str`` is a v1/v2 JSON-lines feed.
    The single dispatch point every server and session ingest path routes
    through, so transport detection cannot drift between them.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        if not is_frame(data):
            raise ValueError("byte feed does not start with a frame magic")
        return decode_frame_grouped(bytes(data), expected_round=expected_round)
    return decode_feed_grouped(data, expected_round=expected_round)


def decode_frame(
    data: bytes,
    expected_round: str | None = None,
    expected_attr: str | None = None,
) -> FeedGroup:
    """Decode a single-attribute frame into one report batch.

    A frame carrying any other attribute fails loudly (against
    ``expected_attr`` when given, or against homogeneity otherwise).
    """
    _, groups = decode_frame_grouped(data, expected_round=expected_round)
    if expected_attr is not None:
        foreign = set(groups) - {expected_attr}
        if foreign:
            raise ValueError(
                f"frame for attribute {sorted(foreign)[0]!r} sent to "
                f"attribute {expected_attr!r}"
            )
        return groups[expected_attr]
    if len(groups) != 1:
        raise ValueError(
            f"frame mixes attributes {sorted(groups)}; use decode_frame_grouped"
        )
    return next(iter(groups.values()))
